"""Setup shim: enables legacy editable installs (`pip install -e .
--no-use-pep517`) on machines without the `wheel` package (PEP 517
editable builds require it).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
