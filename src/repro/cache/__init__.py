"""Query result caching.

Web search front-ends cache result pages: query popularity is Zipfian,
so a small cache absorbs a large traffic share.  The characterization
covers this benchmark functionality with:

- :mod:`lru` — a generic LRU cache with hit/miss/eviction statistics;
- :mod:`querycache` — the result-page cache keyed by normalized query,
  pluggable into the native index serving node.

For the simulated studies, :class:`repro.workload.cached.CachedDemand`
models the same cache over the query stream's demands.
"""

from repro.cache.lru import CacheStats, LRUCache
from repro.cache.querycache import QueryResultCache, make_cache_key

__all__ = ["LRUCache", "CacheStats", "QueryResultCache", "make_cache_key"]
