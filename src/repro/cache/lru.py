"""A least-recently-used cache with statistics."""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Sentinel distinguishing "missing" from a cached None.
_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 with no lookups)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class LRUCache(Generic[K, V]):
    """Bounded mapping evicting the least-recently-used entry.

    Both :meth:`get` and :meth:`put` refresh recency, matching the
    result-cache semantics of search front-ends.

    The cache is thread-safe: the index serving node calls it from its
    worker pool, and ``OrderedDict``'s ``move_to_end``/``popitem`` pair
    is not atomic — unsynchronized concurrent puts could evict past the
    capacity bound, corrupt the recency order, or raise ``KeyError``
    out of ``move_to_end`` when a racing eviction removes the key mid-
    refresh.  Every public operation therefore takes an internal lock;
    the critical sections are tiny (dict bookkeeping only, never a
    search), so contention stays negligible.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: K) -> bool:
        # Membership test does not count as a lookup or refresh recency.
        with self._lock:
            return key in self._entries

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Look up ``key``; refreshes recency and counts hit/miss."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: K, value: V) -> int:
        """Insert/overwrite ``key``; evicts the LRU entry when full.

        Returns the number of entries evicted by this call (0 or 1), so
        callers can account for evictions atomically instead of diffing
        ``stats.evictions`` around the call — a before/after diff
        misattributes evictions under concurrency.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return 0
            evicted = 0
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                evicted = 1
            self._entries[key] = value
            return evicted

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def keys(self):
        """Keys from least- to most-recently used."""
        with self._lock:
            return list(self._entries.keys())
