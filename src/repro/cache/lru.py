"""A least-recently-used cache with statistics."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Sentinel distinguishing "missing" from a cached None.
_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 with no lookups)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class LRUCache(Generic[K, V]):
    """Bounded mapping evicting the least-recently-used entry.

    Both :meth:`get` and :meth:`put` refresh recency, matching the
    result-cache semantics of search front-ends.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        # Membership test does not count as a lookup or refresh recency.
        return key in self._entries

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Look up ``key``; refreshes recency and counts hit/miss."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.stats.misses += 1
            return default
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: K, value: V) -> None:
        """Insert/overwrite ``key``; evicts the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = value

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        self._entries.clear()

    def keys(self):
        """Keys from least- to most-recently used."""
        return list(self._entries.keys())
