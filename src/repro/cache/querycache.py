"""The result-page cache for the index serving node.

Keys are built from the *analyzed* query (terms after the full
analyzer chain) plus the page size and boolean mode, so textual
variants that normalize identically ("Web Search" / "web searching")
share one entry — exactly how search front-ends key their caches.
The index is immutable in this benchmark, so entries never go stale
and no invalidation protocol is needed.

Cached pages carry the matched postings volume observed when the page
was computed, so a cache hit can replay the work proxy instead of
reporting zero (the characterization's per-query work accounting would
otherwise under-count every hit).

When constructed with a :class:`~repro.obs.registry.MetricsRegistry`,
every lookup and eviction updates the run-level ``cache.hits`` /
``cache.misses`` / ``cache.evictions`` counters in addition to the
cache's own :class:`CacheStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cache.lru import CacheStats, LRUCache
from repro.obs.registry import MetricsRegistry
from repro.search.query import ParsedQuery
from repro.search.topk import SearchHit

CacheKey = Tuple[Tuple[str, ...], int, str]


def make_cache_key(query: ParsedQuery) -> CacheKey:
    """Build the canonical cache key for a parsed query."""
    return (query.terms, query.k, query.mode.value)


@dataclass(frozen=True)
class CachedPage:
    """A cached result page plus the statistics it was computed with.

    Attributes
    ----------
    hits:
        The ranked result page, best first.
    matched_volume:
        The matched postings volume of the original (uncached)
        evaluation — replayed on every hit so cached responses report
        the same work proxy as the evaluation they short-circuit.
    """

    hits: Tuple[SearchHit, ...]
    matched_volume: int


class QueryResultCache:
    """LRU cache of result pages, keyed by normalized query.

    Thread safety is inherited from :class:`LRUCache`; the eviction
    metric uses the eviction count :meth:`LRUCache.put` returns, which
    is attributed atomically to the call that evicted (a before/after
    stats diff would race under the ISN's worker pool).
    """

    def __init__(
        self, capacity: int, metrics: Optional[MetricsRegistry] = None
    ):
        self._cache: LRUCache[CacheKey, CachedPage] = LRUCache(capacity)
        self._metrics = metrics

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def stats(self) -> CacheStats:
        """Hit/miss/eviction counters."""
        return self._cache.stats

    def lookup(self, query: ParsedQuery) -> Optional[Tuple[SearchHit, ...]]:
        """Return the cached page for ``query`` or None on miss."""
        entry = self.lookup_entry(query)
        if entry is None:
            return None
        return entry.hits

    def lookup_entry(self, query: ParsedQuery) -> Optional[CachedPage]:
        """Return the full cached entry (hits + stats) or None on miss."""
        entry = self._cache.get(make_cache_key(query))
        if self._metrics is not None:
            name = "cache.hits" if entry is not None else "cache.misses"
            self._metrics.counter(name).add()
        return entry

    def store(
        self,
        query: ParsedQuery,
        hits: Tuple[SearchHit, ...],
        matched_volume: int = 0,
    ) -> None:
        """Cache the result page for ``query``."""
        entry = CachedPage(hits=tuple(hits), matched_volume=matched_volume)
        evicted = self._cache.put(make_cache_key(query), entry)
        if self._metrics is not None and evicted:
            self._metrics.counter("cache.evictions").add(evicted)

    def clear(self) -> None:
        """Drop every cached page."""
        self._cache.clear()
