"""The result-page cache for the index serving node.

Keys are built from the *analyzed* query (terms after the full
analyzer chain) plus the page size and boolean mode, so textual
variants that normalize identically ("Web Search" / "web searching")
share one entry — exactly how search front-ends key their caches.
The index is immutable in this benchmark, so entries never go stale
and no invalidation protocol is needed.

When constructed with a :class:`~repro.obs.registry.MetricsRegistry`,
every lookup and eviction updates the run-level ``cache.hits`` /
``cache.misses`` / ``cache.evictions`` counters in addition to the
cache's own :class:`CacheStats`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cache.lru import CacheStats, LRUCache
from repro.obs.registry import MetricsRegistry
from repro.search.query import ParsedQuery
from repro.search.topk import SearchHit

CacheKey = Tuple[Tuple[str, ...], int, str]


def make_cache_key(query: ParsedQuery) -> CacheKey:
    """Build the canonical cache key for a parsed query."""
    return (query.terms, query.k, query.mode.value)


class QueryResultCache:
    """LRU cache of result pages, keyed by normalized query."""

    def __init__(
        self, capacity: int, metrics: Optional[MetricsRegistry] = None
    ):
        self._cache: LRUCache[CacheKey, Tuple[SearchHit, ...]] = LRUCache(
            capacity
        )
        self._metrics = metrics

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def stats(self) -> CacheStats:
        """Hit/miss/eviction counters."""
        return self._cache.stats

    def lookup(self, query: ParsedQuery) -> Optional[Tuple[SearchHit, ...]]:
        """Return the cached page for ``query`` or None on miss."""
        page = self._cache.get(make_cache_key(query))
        if self._metrics is not None:
            name = "cache.hits" if page is not None else "cache.misses"
            self._metrics.counter(name).add()
        return page

    def store(self, query: ParsedQuery, hits: Tuple[SearchHit, ...]) -> None:
        """Cache the result page for ``query``."""
        evictions_before = self._cache.stats.evictions
        self._cache.put(make_cache_key(query), tuple(hits))
        if self._metrics is not None:
            evicted = self._cache.stats.evictions - evictions_before
            if evicted:
                self._metrics.counter("cache.evictions").add(evicted)

    def clear(self) -> None:
        """Drop every cached page."""
        self._cache.clear()
