"""Command-line interface: run the paper's studies from a shell.

``python -m repro <command>`` exposes the main studies with small,
fast default configurations:

- ``quickstart`` — build the benchmark and answer a few queries;
- ``characterize`` — service-time distribution (F1);
- ``partition-sweep`` — tail latency vs. partition count (F4);
- ``lowpower`` — big vs. low-power server comparison (F6);
- ``capacity`` — QoS-bounded max throughput vs. partitions (F5), or
  analytic replica sizing via ``--target-qps``/``--slo-ms`` (F27);
- ``cache`` — result-cache hit rates (F11a);
- ``profile-log`` — workload-side characterization of the query log;
- ``report`` — full Markdown characterization report;
- ``trace`` — run one query with tracing on and print its span tree;
- ``chaos`` — fault-injected simulated run under overload protection
  (``--dry-run`` prints the fault schedule without running);
- ``health`` — build a serving node, answer warm-up queries, and print
  its liveness snapshot (worker probes, respawns, breaker states);
- ``predict`` — calibrate the service-time predictor and demo
  prediction-aware big/little routing (F29).

Every command accepts ``--docs``/``--seed`` to scale and reseed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import (
    BIG_SERVER,
    EXECUTION_BACKENDS,
    SMALL_SERVER,
    CorpusConfig,
    EngineConfig,
    ExecutionConfig,
    HedgingPolicy,
    QueryLogConfig,
    SearchEngine,
    TraversalStrategy,
    VocabularyConfig,
    format_series,
    format_table,
)
from repro.core.calibration import (
    calibrate_isn,
    cost_model_from_calibration,
    demand_model_from_calibration,
)
from repro.core.capacity import capacity_vs_partitions
from repro.core.caching import hit_rate_vs_capacity
from repro.core.characterization import characterize_service_times
from repro.core.lowpower import compare_servers_vs_partitions
from repro.core.partitioning import run_partitioning_sweep

DEFAULT_PARTITIONS = (1, 2, 4, 8)


def _engine_config(
    args: argparse.Namespace,
    num_partitions: int = 1,
    hedging: Optional[HedgingPolicy] = None,
) -> EngineConfig:
    traversal = TraversalStrategy.coerce(
        getattr(args, "traversal", "exhaustive")
    )
    tiered = None
    tiered_cache_kib = getattr(args, "tiered_cache_kib", None)
    if tiered_cache_kib is not None:
        from repro.api import TieredStorageConfig

        tiered = TieredStorageConfig(
            cache_budget_bytes=int(tiered_cache_kib * 1024)
        )
    execution = None
    backend = getattr(args, "backend", None)
    workers = getattr(args, "workers", None)
    if backend is not None or workers is not None:
        execution = ExecutionConfig(
            backend=backend if backend is not None else "threads",
            workers=workers,
        )
    return EngineConfig(
        corpus=CorpusConfig(
            num_documents=args.docs,
            vocabulary=VocabularyConfig(size=max(2_000, args.docs * 5)),
            mean_length=150,
            seed=args.seed,
        ),
        query_log=QueryLogConfig(
            num_unique_queries=min(500, max(50, args.docs // 10)),
            seed=args.seed + 1,
        ),
        num_partitions=num_partitions,
        algorithm=traversal,
        execution=execution,
        hedging=hedging,
        tiered=tiered,
    )


def _build_engine(
    args: argparse.Namespace, num_partitions: int = 1
) -> SearchEngine:
    return SearchEngine(_engine_config(args, num_partitions))


def _calibrated_models(args: argparse.Namespace):
    with _build_engine(args) as engine:
        service = engine.service
        calibration = calibrate_isn(
            service.isn, service.query_log, num_queries=80, repeats=2,
            seed=args.seed,
        )
        demand = demand_model_from_calibration(
            calibration, service.partitioned[0].index, service.query_log
        )
    return demand, cost_model_from_calibration(calibration)


def cmd_quickstart(args: argparse.Namespace) -> int:
    with _build_engine(args, num_partitions=4) as engine:
        print(
            f"indexed {len(engine.service.collection)} documents "
            f"into 4 partitions"
        )
        for query in list(engine.query_log)[: args.queries]:
            response = engine.search(query.text, k=3)
            print(
                f"  {query.text!r}: {len(response.hits)} hits in "
                f"{response.latency_s * 1000:.2f} ms"
            )
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    with _build_engine(args) as engine:
        result = characterize_service_times(
            engine.service.isn, engine.query_log, num_queries=args.queries,
            seed=args.seed,
        )
    summary = result.summary.scaled(1000.0)
    print(
        format_table(
            ["statistic", "value"],
            [
                ["queries", summary.count],
                ["mean (ms)", summary.mean],
                ["p50 (ms)", summary.p50],
                ["p99 (ms)", summary.p99],
                ["p99/p50", result.tail_ratio],
                ["lognormal KS", result.lognormal.ks_distance],
                ["exponential KS", result.exponential.ks_distance],
            ],
            title="Service-time characterization",
        )
    )
    return 0


def cmd_partition_sweep(args: argparse.Namespace) -> int:
    demand, cost_model = _calibrated_models(args)
    capacity = BIG_SERVER.compute_capacity / cost_model.total_work(
        demand.mean_demand()
    )
    rate = args.load_fraction * capacity
    points = run_partitioning_sweep(
        BIG_SERVER, demand, list(args.partitions), rate,
        cost_model=cost_model, num_queries=args.sim_queries, seed=args.seed,
    )
    print(
        format_series(
            f"Latency vs partitions ({rate:.0f} qps)",
            "partitions",
            list(args.partitions),
            [
                ("p50_ms", [p.summary.p50 * 1000 for p in points]),
                ("p99_ms", [p.summary.p99 * 1000 for p in points]),
                ("util", [p.utilization for p in points]),
            ],
        )
    )
    return 0


def cmd_lowpower(args: argparse.Namespace) -> int:
    demand, cost_model = _calibrated_models(args)
    small_capacity = SMALL_SERVER.compute_capacity / cost_model.total_work(
        demand.mean_demand()
    )
    rate = args.load_fraction * small_capacity
    points = compare_servers_vs_partitions(
        [BIG_SERVER, SMALL_SERVER], demand, list(args.partitions), rate,
        cost_model=cost_model, num_queries=args.sim_queries, seed=args.seed,
    )
    series: dict = {}
    for point in points:
        series.setdefault(point.server_name, {})[point.num_partitions] = point
    print(
        format_series(
            f"p99 (ms) vs partitions at {rate:.0f} qps",
            "partitions",
            list(args.partitions),
            [
                (
                    name,
                    [
                        series[name][p].summary.p99 * 1000
                        for p in args.partitions
                    ],
                )
                for name in series
            ],
        )
    )
    return 0


def cmd_capacity(args: argparse.Namespace) -> int:
    if args.target_qps is not None:
        return _cmd_capacity_plan(args)
    demand, cost_model = _calibrated_models(args)
    qos = args.qos_ms / 1000.0
    points = capacity_vs_partitions(
        BIG_SERVER, demand, list(args.partitions), qos,
        cost_model=cost_model, num_queries=args.sim_queries,
        tolerance_qps=max(
            2.0, 0.02 * BIG_SERVER.compute_capacity / demand.mean_demand()
        ),
        seed=args.seed,
    )
    print(
        format_table(
            ["partitions", "max_qps", "p99_at_max_ms"],
            [
                [p.num_partitions, p.max_qps, p.p99_at_max * 1000]
                for p in points
            ],
            title=f"Max throughput under p99 <= {args.qos_ms:.1f} ms",
        )
    )
    return 0


def _cmd_capacity_plan(args: argparse.Namespace) -> int:
    """Analytic sizing: replicas needed for a QPS target under an SLO."""
    from repro.api import CapacityModel, ServiceTimeProfile

    demand, cost_model = _calibrated_models(args)
    model = CapacityModel(
        profile=ServiceTimeProfile.from_demand_model(demand),
        spec=BIG_SERVER,
        partitioning=cost_model,
    )
    slo_s = args.slo_ms / 1000.0
    needed = model.replicas_for_slo(
        args.target_qps, slo_s, shards=args.shards
    )
    rows = []
    for replicas in range(1, needed + 1):
        p = model.predict(args.target_qps, shards=args.shards,
                          replicas=replicas)
        rows.append([
            replicas,
            round(p.utilization, 3),
            "yes" if p.stable else "no",
            round(p.p50_s * 1000, 1) if p.stable else "inf",
            round(p.p99_s * 1000, 1) if p.stable else "inf",
            "yes" if p.stable and p.p99_s <= slo_s else "no",
        ])
    print(
        format_table(
            ["replicas", "utilization", "stable", "p50_ms", "p99_ms",
             "meets_slo"],
            rows,
            title=(
                f"Capacity plan: {args.target_qps:.0f} qps across "
                f"{args.shards} shard(s) under p99 <= {args.slo_ms:.0f} ms "
                f"({BIG_SERVER.name})"
            ),
        )
    )
    print(f"provision {needed} replica(s) per shard")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    with _build_engine(args) as engine:
        log = engine.query_log
    capacities = [c for c in (10, 30, 100, 300) if c <= len(log)] or [10]
    rates = hit_rate_vs_capacity(log, capacities, seed=args.seed)
    print(
        format_series(
            f"LRU hit rate ({len(log)} unique queries)",
            "capacity",
            capacities,
            [("hit_rate", rates)],
        )
    )
    return 0


def cmd_profile_log(args: argparse.Namespace) -> int:
    from repro.corpus.loganalysis import profile_query_log

    with _build_engine(args) as engine:
        profile = profile_query_log(engine.query_log, stream_length=30_000,
                                    seed=args.seed)
    mix_rows = [
        [terms, round(share, 3)]
        for terms, share in sorted(profile.term_count_mix.items())
    ]
    print(
        format_table(
            ["property", "value"],
            [
                ["unique queries", profile.num_unique_queries],
                ["mean terms/query", round(profile.mean_terms_per_query, 2)],
                [
                    "popularity Zipf exponent (measured)",
                    round(profile.estimated_popularity_exponent, 3),
                ],
                ["fit R^2", round(profile.popularity_fit_r_squared, 3)],
                [
                    "top 1% traffic share",
                    round(profile.top_1pct_traffic_share, 3),
                ],
                [
                    "top 10% traffic share",
                    round(profile.top_10pct_traffic_share, 3),
                ],
            ],
            title="Query-log profile",
        )
    )
    print()
    print(format_table(["terms", "share"], mix_rows, title="Term-count mix"))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.metrics.export import export_registry_csv
    from repro.obs.export import export_trace_jsonl, format_span_tree
    from repro.obs.registry import MetricsRegistry
    from repro.obs.tracing import Tracer

    tracer = Tracer(enabled=True)
    registry = MetricsRegistry()
    hedging = None
    if args.hedge_delay_ms is not None or args.deadline_ms is not None:
        hedging = HedgingPolicy(
            hedge_delay_s=(
                args.hedge_delay_ms / 1000.0
                if args.hedge_delay_ms is not None
                else None
            ),
            deadline_s=(
                args.deadline_ms / 1000.0
                if args.deadline_ms is not None
                else None
            ),
        )
    config = _engine_config(args, args.partitions, hedging=hedging)
    with SearchEngine(config, tracer=tracer, metrics=registry) as engine:
        query = args.query or next(iter(engine.query_log)).text
        response = engine.search(query, k=args.k)
    print(
        f"query: {query!r} -> {len(response.hits)} hits, "
        f"coverage {response.coverage:.2f}"
    )
    if hedging is not None:
        print(
            f"hedges issued {response.hedges_issued}, "
            f"won {response.hedges_won}, "
            f"deadline misses {response.deadline_misses}"
        )
    print()
    print(format_span_tree(response.trace))
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                [name, entry["value"]]
                for name, entry in registry.snapshot().items()
                if entry["type"] == "counter"
            ],
            title="Serving-path counters",
        )
    )
    if args.jsonl:
        lines = export_trace_jsonl(tracer.traces, args.jsonl)
        print(f"\n{lines} spans written to {args.jsonl}")
    if args.metrics_csv:
        rows = export_registry_csv(registry, args.metrics_csv)
        print(f"{rows} metric rows written to {args.metrics_csv}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.api import (
        BreakerConfig,
        ClusterModel,
        FaultPlan,
        OverloadPolicy,
    )

    horizon = args.sim_queries / args.rate
    plan = FaultPlan.flapping_shard(
        args.flap_shard,
        period_s=args.flap_period,
        duty=args.flap_duty,
        horizon_s=horizon,
        seed=args.seed,
    )
    if args.dry_run:
        print(
            f"chaos plan: {args.servers} servers at {args.rate:g} qps, "
            f"~{horizon:.1f}s simulated horizon"
        )
        for line in plan.describe():
            print(f"  {line}")
        print("(dry run: nothing executed)")
        return 0

    protected = not args.unprotected
    model = ClusterModel(
        num_servers=args.servers,
        replicas_per_shard=args.replicas,
        hedging=HedgingPolicy(deadline_s=args.deadline_ms / 1000.0),
        breakers=(
            BreakerConfig(
                failure_threshold=args.breaker_failures,
                recovery_time_s=args.breaker_recovery_s,
            )
            if protected
            else None
        ),
        overload=(
            OverloadPolicy(max_concurrency=args.max_concurrency)
            if protected
            else None
        ),
        faults=plan,
    )
    result = model.run(
        rate_qps=args.rate, num_queries=args.sim_queries, seed=args.seed
    )
    summary = result.summary()
    print(
        format_table(
            ["statistic", "value"],
            [
                ["mode", "protected" if protected else "unprotected"],
                ["queries", len(result)],
                ["served", len(result) - result.shed_count],
                ["shed", result.shed_count],
                ["goodput (qps)", round(result.goodput_qps(), 1)],
                ["mean coverage", round(result.mean_coverage(), 3)],
                ["p50 (ms)", round(summary.p50 * 1000, 2)],
                ["p99 (ms)", round(summary.p99 * 1000, 2)],
                ["shard failures", list(result.shard_failures)],
                ["breaker skips", result.breaker_skips],
            ],
            title=f"Chaos run: flapping shard {args.flap_shard}",
        )
    )
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    """Build a node, serve warm-up queries, print the health snapshot."""
    from repro.api import BreakerConfig

    config = _engine_config(args, args.partitions)
    if args.breakers:
        from dataclasses import replace

        config = replace(config, breakers=BreakerConfig())
    with SearchEngine(config) as engine:
        for query in list(engine.query_log)[: args.queries]:
            engine.search(query.text, k=3)
        snapshot = engine.health()
    rows = [
        ["backend", snapshot["backend"]],
        ["partitions", snapshot["partitions"]],
        ["healthy", "yes" if snapshot["healthy"] else "no"],
    ]
    pool = snapshot.get("pool")
    if pool is not None:
        rows.extend(
            [
                [
                    "live workers",
                    f"{pool['live_workers']}/{len(pool['workers'])}",
                ],
                ["probe interval (s)", pool["probe_interval_s"]],
                ["probes", pool["probes"]],
                ["deaths detected", pool["deaths_detected"]],
                ["respawns", pool["respawns"]],
            ]
        )
        for worker in pool["workers"]:
            rows.append(
                [
                    f"worker {worker['slot']}",
                    f"pid {worker['pid']} "
                    f"{'alive' if worker['alive'] else 'dead'}",
                ]
            )
    for shard, state in snapshot.get("breakers", {}).items():
        rows.append([f"breaker shard {shard}", state])
    print(format_table(["property", "value"], rows, title="Node health"))
    return 0 if snapshot["healthy"] else 1


def cmd_report(args: argparse.Namespace) -> int:
    from repro.core.report import ReportOptions, characterization_report

    with _build_engine(args) as engine:
        report = characterization_report(
            engine.service,
            ReportOptions(num_queries=args.queries, seed=args.seed),
            path=args.output,
        )
    if args.output:
        print(f"report written to {args.output}")
    else:
        print(report)
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    from repro.api import DeadlineScheduler, calibrate_predictor, extract_features

    with _build_engine(args) as engine:
        service = engine.service
        calibration = calibrate_predictor(
            service.isn,
            service.query_log,
            num_queries=args.queries,
            repeats=2,
            seed=args.seed,
        )
        predictor = calibration.predictor
        print(
            format_table(
                ["coefficient", "value"],
                [
                    ["base (ms)", predictor.base_seconds * 1000],
                    ["per term (ms)", predictor.per_term_seconds * 1000],
                    ["per posting (ns)", predictor.per_posting_seconds * 1e9],
                    ["residual log-sigma", predictor.residual_log_sigma],
                    ["train MAPE (%)", calibration.train_mape * 100],
                    ["holdout MAPE (%)", calibration.holdout_mape * 100],
                    ["train / holdout n",
                     f"{calibration.num_train} / {calibration.num_holdout}"],
                ],
                title="Service-time predictor calibration",
            )
        )
        # Routing demo: classify the log's head queries against a
        # threshold at the predictor's median holdout prediction.
        median = sorted(
            predictor.predict(f) for f in calibration.holdout_features
        )[len(calibration.holdout_features) // 2]
        scheduler = DeadlineScheduler(
            predictor=predictor, long_query_threshold_s=max(median, 1e-9)
        )
        rows = []
        for query in list(engine.query_log)[: args.demo_queries]:
            features = extract_features(
                service.partitioned, service.isn.parser.parse(query.text)
            )
            rows.append(
                [
                    query.text[:40],
                    features.term_count,
                    features.total_postings,
                    f"{scheduler.predicted_seconds(features) * 1000:.3f}",
                    "big" if scheduler.is_long(features) else "little",
                ]
            )
        print(
            format_table(
                ["query", "terms", "postings", "predicted (ms)", "route"],
                rows,
                title=f"Routing demo (threshold {median * 1000:.3f} ms)",
            )
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Web search benchmark characterization (ISPASS 2015 reproduction)",
    )
    parser.add_argument("--docs", type=int, default=1_500,
                        help="corpus size (documents)")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--backend",
        choices=list(EXECUTION_BACKENDS),
        default=None,
        help="execution backend for the native engine's partition "
             "fan-out: 'threads' (default) or 'processes' (GIL-free "
             "worker pool over a shared-memory index; bit-identical "
             "results)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker count for the selected backend (default: one per "
             "partition)",
    )
    parser.add_argument(
        "--traversal",
        choices=["exhaustive", "wand", "block-max-wand"],
        default="exhaustive",
        help="postings traversal strategy for the native engine "
             "(exhaustive DAAT is the benchmark-faithful default; the "
             "WAND variants prune documents that cannot reach the top-k)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    quickstart = subparsers.add_parser(
        "quickstart", help="build the benchmark and answer queries"
    )
    quickstart.add_argument("--queries", type=int, default=5)
    quickstart.set_defaults(handler=cmd_quickstart)

    characterize = subparsers.add_parser(
        "characterize", help="service-time distribution (F1)"
    )
    characterize.add_argument("--queries", type=int, default=150)
    characterize.set_defaults(handler=cmd_characterize)

    def add_sim_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--partitions", type=int, nargs="+", default=list(DEFAULT_PARTITIONS)
        )
        sub.add_argument("--sim-queries", type=int, default=4_000)
        sub.add_argument("--load-fraction", type=float, default=0.35)

    sweep = subparsers.add_parser(
        "partition-sweep", help="tail latency vs partition count (F4)"
    )
    add_sim_args(sweep)
    sweep.set_defaults(handler=cmd_partition_sweep)

    lowpower = subparsers.add_parser(
        "lowpower", help="big vs low-power server (F6)"
    )
    add_sim_args(lowpower)
    lowpower.set_defaults(handler=cmd_lowpower)

    capacity = subparsers.add_parser(
        "capacity",
        help="QoS-bounded max throughput (F5), or analytic replica "
        "sizing with --target-qps/--slo-ms (F27)",
    )
    add_sim_args(capacity)
    capacity.add_argument("--qos-ms", type=float, default=30.0)
    capacity.add_argument(
        "--target-qps",
        type=float,
        default=None,
        help="plan replicas for this offered load instead of sweeping "
        "partitions (switches to the analytical capacity model)",
    )
    capacity.add_argument(
        "--slo-ms",
        type=float,
        default=250.0,
        help="p99 SLO for --target-qps planning (default 250 ms)",
    )
    capacity.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard groups the plan fans out over (default 1)",
    )
    capacity.set_defaults(handler=cmd_capacity)

    cache = subparsers.add_parser(
        "cache", help="result-cache hit rates (F11a)"
    )
    cache.set_defaults(handler=cmd_cache)

    profile = subparsers.add_parser(
        "profile-log", help="workload characterization of the query log"
    )
    profile.set_defaults(handler=cmd_profile_log)

    trace = subparsers.add_parser(
        "trace", help="trace one query end-to-end and print its span tree"
    )
    trace.add_argument(
        "query", nargs="?", default=None,
        help="query text (default: the generated log's first query)",
    )
    trace.add_argument("--partitions", type=int, default=4)
    trace.add_argument("--k", type=int, default=10)
    trace.add_argument(
        "--hedge-delay-ms", type=float, default=None,
        help="enable hedged shard requests after this many milliseconds",
    )
    trace.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-shard deadline budget in milliseconds (partial results)",
    )
    trace.add_argument(
        "--tiered-cache-kib", type=float, default=None,
        help="serve the index from tiered block storage with this "
        "block-cache budget (KiB, split across shards); the span tree "
        "then carries blocks_fetched/bytes_read per shard",
    )
    trace.add_argument("--jsonl", default=None,
                       help="also export the trace as JSON-lines")
    trace.add_argument("--metrics-csv", default=None,
                       help="also export the metrics registry as CSV")
    trace.set_defaults(handler=cmd_trace)

    chaos = subparsers.add_parser(
        "chaos",
        help="fault-injected simulated run with overload protection",
    )
    chaos.add_argument("--servers", type=int, default=4)
    chaos.add_argument("--replicas", type=int, default=1)
    chaos.add_argument("--rate", type=float, default=300.0,
                       help="offered load (queries/second)")
    chaos.add_argument("--sim-queries", type=int, default=2_000)
    chaos.add_argument("--flap-shard", type=int, default=1,
                       help="index of the shard that flaps")
    chaos.add_argument("--flap-period", type=float, default=0.5,
                       help="seconds between crashes of the flapping shard")
    chaos.add_argument("--flap-duty", type=float, default=0.6,
                       help="fraction of each period the shard is down")
    chaos.add_argument("--deadline-ms", type=float, default=50.0,
                       help="per-query deadline (graceful degradation)")
    chaos.add_argument("--breaker-failures", type=int, default=3,
                       help="consecutive failures before a breaker opens")
    chaos.add_argument("--breaker-recovery-s", type=float, default=0.25,
                       help="open time before a breaker probes again")
    chaos.add_argument("--max-concurrency", type=int, default=64,
                       help="admission-control concurrency limit")
    chaos.add_argument("--unprotected", action="store_true",
                       help="disable breakers and admission control")
    chaos.add_argument("--dry-run", action="store_true",
                       help="print the fault schedule and exit")
    chaos.set_defaults(handler=cmd_chaos)

    health = subparsers.add_parser(
        "health",
        help="serve warm-up queries and print the node's liveness "
        "snapshot (worker probes, respawns, breaker states)",
    )
    health.add_argument("--partitions", type=int, default=2)
    health.add_argument("--queries", type=int, default=3,
                        help="warm-up queries before the snapshot")
    health.add_argument("--breakers", action="store_true",
                        help="configure circuit breakers so per-shard "
                        "states appear in the snapshot")
    health.set_defaults(handler=cmd_health)

    report = subparsers.add_parser(
        "report", help="full Markdown characterization report"
    )
    report.add_argument("--queries", type=int, default=150)
    report.add_argument("--output", default=None,
                        help="write to a file instead of stdout")
    report.set_defaults(handler=cmd_report)

    predict = subparsers.add_parser(
        "predict",
        help="calibrate the service-time predictor and demo "
        "prediction-aware big/little routing (F29)",
    )
    predict.add_argument("--queries", type=int, default=120,
                        help="queries replayed for calibration")
    predict.add_argument("--demo-queries", type=int, default=8,
                        help="log-head queries shown in the routing demo")
    predict.set_defaults(handler=cmd_predict)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
