"""Tokenization of raw document and query text.

The benchmark's index serving node tokenizes text into maximal runs of
alphanumeric characters, which is what ``Tokenizer`` implements.  Tokens
longer than ``max_token_length`` are discarded rather than truncated,
matching Lucene's ``StandardTokenizer`` default behaviour of dropping
pathological tokens (e.g. base64 blobs in crawled pages).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

_TOKEN_PATTERN = re.compile(r"[0-9A-Za-z]+")

#: Default maximum token length, matching Lucene's ``maxTokenLength``.
DEFAULT_MAX_TOKEN_LENGTH = 255


@dataclass(frozen=True)
class Tokenizer:
    """Splits text into alphanumeric tokens.

    Parameters
    ----------
    max_token_length:
        Tokens strictly longer than this are dropped.  Must be positive.
    """

    max_token_length: int = DEFAULT_MAX_TOKEN_LENGTH

    def __post_init__(self) -> None:
        if self.max_token_length <= 0:
            raise ValueError(
                f"max_token_length must be positive, got {self.max_token_length}"
            )

    def tokenize(self, text: str) -> List[str]:
        """Return the list of tokens in ``text``, in order of appearance."""
        return list(self.iter_tokens(text))

    def iter_tokens(self, text: str) -> Iterator[str]:
        """Yield tokens lazily; useful for very large documents."""
        for match in _TOKEN_PATTERN.finditer(text):
            token = match.group(0)
            if len(token) <= self.max_token_length:
                yield token


def tokenize(text: str) -> List[str]:
    """Tokenize ``text`` with default settings (module-level convenience)."""
    return Tokenizer().tokenize(text)
