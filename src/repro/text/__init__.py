"""Text analysis pipeline: tokenization, filtering, and stemming.

This package implements the analyzer chain that the web search benchmark's
index serving node applies to both documents (at index-build time) and
queries (at search time).  The chain mirrors the default Lucene/Solr
analyzer used by the CloudSuite Web Search benchmark: a letter tokenizer,
lowercase filter, stopword filter, and a light suffix-stripping stemmer.
"""

from repro.text.analyzer import Analyzer, AnalyzerConfig, default_analyzer
from repro.text.stemmer import SuffixStemmer
from repro.text.stopwords import DEFAULT_STOPWORDS
from repro.text.tokenizer import Tokenizer, tokenize

__all__ = [
    "Analyzer",
    "AnalyzerConfig",
    "default_analyzer",
    "SuffixStemmer",
    "DEFAULT_STOPWORDS",
    "Tokenizer",
    "tokenize",
]
