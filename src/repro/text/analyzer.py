"""The analyzer chain applied to documents and queries.

``Analyzer`` composes the tokenizer, lowercase filter, stopword filter,
and stemmer into the single normalization pipeline used everywhere in
the reproduction: the index builder, the query parser, and the corpus
statistics tools.  Using one shared pipeline guarantees that query terms
and document terms land in the same index dictionary entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from repro.text.stemmer import SuffixStemmer
from repro.text.stopwords import DEFAULT_STOPWORDS
from repro.text.tokenizer import Tokenizer


@dataclass(frozen=True)
class AnalyzerConfig:
    """Configuration of the analyzer chain.

    Attributes
    ----------
    lowercase:
        Whether to lowercase tokens.
    remove_stopwords:
        Whether to drop stopwords (after lowercasing).
    stem:
        Whether to apply the suffix stemmer.
    stopwords:
        The stopword set; ignored when ``remove_stopwords`` is False.
    max_token_length:
        Tokens longer than this are dropped by the tokenizer.
    """

    lowercase: bool = True
    remove_stopwords: bool = True
    stem: bool = True
    stopwords: FrozenSet[str] = DEFAULT_STOPWORDS
    max_token_length: int = 255


@dataclass(frozen=True)
class Analyzer:
    """Normalizes raw text into index terms.

    The same ``Analyzer`` instance must be used for indexing and for
    query parsing; :class:`repro.index.builder.IndexBuilder` stores the
    analyzer it was built with so searchers can reuse it.
    """

    config: AnalyzerConfig = field(default_factory=AnalyzerConfig)

    def analyze(self, text: str) -> List[str]:
        """Return the sequence of index terms for ``text``."""
        tokenizer = Tokenizer(max_token_length=self.config.max_token_length)
        stemmer = SuffixStemmer() if self.config.stem else None
        terms: List[str] = []
        for token in tokenizer.iter_tokens(text):
            if self.config.lowercase:
                token = token.lower()
            if self.config.remove_stopwords and token in self.config.stopwords:
                continue
            if stemmer is not None:
                token = stemmer.stem(token)
            if token:
                terms.append(token)
        return terms


def default_analyzer(config: Optional[AnalyzerConfig] = None) -> Analyzer:
    """Build the benchmark's default analyzer (Lucene-like chain)."""
    return Analyzer(config=config or AnalyzerConfig())
