"""A light suffix-stripping stemmer.

The benchmark uses Lucene's English stemming in its default analyzer.
We implement a small, deterministic "s-stemmer plus common suffixes"
variant: it handles plural forms and the most common derivational
suffixes without the full Porter rule cascade.  For a synthetic corpus
this is sufficient — what matters for the characterization is that
document and query text pass through the *same* normalization so terms
collide correctly, not the linguistic fidelity of the stems.
"""

from __future__ import annotations

from dataclasses import dataclass

_VOWELS = set("aeiou")

# Ordered longest-first so that e.g. "ements" wins over "s".
_SUFFIX_RULES = (
    ("ations", "ate"),
    ("ements", "e"),
    ("ization", "ize"),
    ("fulness", "ful"),
    ("ousness", "ous"),
    ("ation", "ate"),
    ("ement", "e"),
    ("ness", ""),
    ("ible", ""),
    ("able", ""),
    ("ment", ""),
    ("ings", ""),
    ("ies", "y"),
    ("ied", "y"),
    ("ing", ""),
    ("ed", ""),
    ("es", "e"),
    ("ly", ""),
    ("s", ""),
)

#: Words shorter than this are never stemmed (they are likely already roots).
MIN_STEM_LENGTH = 3


def _has_vowel(word: str) -> bool:
    return any(ch in _VOWELS for ch in word)


@dataclass(frozen=True)
class SuffixStemmer:
    """Deterministic light stemmer.

    The stemmer applies at most one suffix rule (longest match first) and
    refuses to produce stems shorter than ``min_stem_length`` or stems
    with no vowel, which keeps it from mangling identifiers and short
    function words.
    """

    min_stem_length: int = MIN_STEM_LENGTH

    def stem(self, token: str) -> str:
        """Return the stem of ``token`` (assumed lowercased)."""
        if len(token) <= self.min_stem_length:
            return token
        for suffix, replacement in _SUFFIX_RULES:
            if not token.endswith(suffix):
                continue
            candidate = token[: len(token) - len(suffix)] + replacement
            if len(candidate) >= self.min_stem_length and _has_vowel(candidate):
                return candidate
            # A rule matched but produced a bad stem: stop, do not try
            # shorter suffixes (they would be substrings of this one).
            return token
        return token
