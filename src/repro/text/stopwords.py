"""English stopword list used by the default analyzer.

This is the classic Lucene/Solr English stopword set, which is what the
web search benchmark's index serving node ships with.  Stopwords matter
for the characterization study: they are the most frequent terms in a
Zipfian vocabulary, so removing them truncates the extreme head of the
posting-list length distribution.
"""

from __future__ import annotations

from typing import FrozenSet

#: The Lucene ``EnglishAnalyzer`` default stopword set.
DEFAULT_STOPWORDS: FrozenSet[str] = frozenset(
    {
        "a", "an", "and", "are", "as", "at", "be", "but", "by",
        "for", "if", "in", "into", "is", "it", "no", "not", "of",
        "on", "or", "such", "that", "the", "their", "then", "there",
        "these", "they", "this", "to", "was", "will", "with",
    }
)


def is_stopword(token: str, stopwords: FrozenSet[str] = DEFAULT_STOPWORDS) -> bool:
    """Return True if ``token`` (already lowercased) is a stopword."""
    return token in stopwords
