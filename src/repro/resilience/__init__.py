"""Overload control and chaos engineering for the benchmark cluster.

The paper's tail-latency results hold only *below* saturation: past the
knee, an open-loop arrival process drives queueing delay — and with it
every percentile — to infinity, and a single sick shard can do the same
to an otherwise healthy cluster.  This package adds the protection
layer a production search tier runs with, and the fault-injection
harness that proves it works:

- **Admission control** (:mod:`repro.resilience.admission`) — a bounded
  admission queue in front of the serving path with pluggable shedding
  policies: a hard concurrency limit, CoDel-style target-delay
  dropping, and an AIMD adaptive concurrency limiter.  Shed queries
  return a typed :class:`ShedResponse` (``coverage == 0.0``) instead of
  raising, so drivers and metrics keep working.
- **Circuit breakers** (:mod:`repro.resilience.breaker`) — per-shard
  closed/open/half-open breakers tripped by consecutive failures or
  deadline misses; while open, the fan-out skips the shard and degrades
  coverage exactly like a deadline miss.
- **Fault injection** (:mod:`repro.resilience.faults`) — a declarative,
  seedable :class:`FaultPlan` of shard slowdowns, crash/restart
  windows, and error bursts, interpreted by both execution paths, plus
  a native wall-clock :class:`FaultInjector`.
- **Fault-space exploration** (:mod:`repro.resilience.explore`) — a
  deterministic enumerator of seeded fault schedules (fault kinds ×
  timing × target shards) driven through either execution path while
  checking the recovery invariants above; ``python -m
  repro.resilience.explore`` runs it from the command line.

Like :class:`~repro.engine.hedging.HedgingPolicy`, every policy object
here is declarative and interpreted by *both* execution paths — the
native thread-pool ISN against the wall clock and the DES cluster
broker against simulated time.  With no policy configured, both paths
are bit-identical to their unprotected behaviour.
"""

from repro.resilience.admission import (
    AdmissionController,
    AimdConfig,
    BlockingAdmissionGate,
    OverloadPolicy,
    ShedResponse,
)
from repro.resilience.breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.faults import (
    ErrorBurst,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    ShardCrash,
    ShardSlowdown,
)

__all__ = [
    "OverloadPolicy",
    "AimdConfig",
    "AdmissionController",
    "BlockingAdmissionGate",
    "ShedResponse",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "BreakerBoard",
    "FaultPlan",
    "ShardSlowdown",
    "ShardCrash",
    "ErrorBurst",
    "FaultInjector",
    "InjectedFault",
    "ExplorationReport",
    "ScheduleResult",
    "enumerate_fault_plans",
    "explore",
    "explore_native",
    "explore_des",
]

#: Explorer names resolved lazily (PEP 562) so ``python -m
#: repro.resilience.explore`` does not import the module twice through
#: the package (runpy's double-import warning).  ``explore`` itself
#: resolves to the submodule; call ``explore.explore(...)`` or use the
#: per-backend entry points re-exported here.
_EXPLORE_EXPORTS = frozenset(
    {
        "ExplorationReport",
        "ScheduleResult",
        "enumerate_fault_plans",
        "explore_native",
        "explore_des",
    }
)


def __getattr__(name):
    if name == "explore" or name in _EXPLORE_EXPORTS:
        import importlib

        module = importlib.import_module("repro.resilience.explore")
        if name == "explore":
            return module
        return getattr(module, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
