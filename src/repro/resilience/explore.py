"""Deterministic fault-space exploration for both execution paths.

Chaos testing that only ever replays one hand-written scenario proves
little: the failures that break a serving tier live in the *product*
space of fault kinds × timing × targets.  This module enumerates that
space deterministically — every schedule is derived from ``(seed,
index)``, so a violating schedule replays exactly — and drives each
schedule through an execution path while checking the recovery
invariants the resilience layer promises:

- **bounded wall-clock** — a schedule finishes within its budget; no
  fault combination may hang the serving path;
- **typed outcomes only** — every query returns an ``IsnResponse`` /
  ``ShedResponse`` (native) or a complete/typed-shed record (DES);
  an escaped exception of any kind is a violation;
- **coverage accounting** — degraded coverage appears only when the
  plan actually injects faults, and (DES) shard-failure counts stay on
  the shards the plan targets;
- **recovery** — once the last fault window closes and breakers have
  had their recovery time, answers return to full coverage and are
  bit-identical (doc ids *and* float scores, native) to the fault-free
  baseline;
- **inert control** — the empty schedule in every combo cycle must be
  indistinguishable from running with no plan at all.

The same :class:`~repro.resilience.faults.FaultPlan` vocabulary drives
both interpreters: the native ISN against the wall clock
(:func:`explore_native`) and the DES cluster broker against simulated
time (:func:`explore_des`).  ``python -m repro.resilience.explore``
runs either or both and exits non-zero on any violation.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.resilience.faults import (
    ErrorBurst,
    FaultPlan,
    ShardCrash,
    ShardSlowdown,
)

__all__ = [
    "FAULT_COMBOS",
    "ScheduleResult",
    "ExplorationReport",
    "enumerate_fault_plans",
    "explore_native",
    "explore_des",
    "explore",
]

#: Fault-kind combinations cycled over the schedule index.  The empty
#: combo is the control: an inert plan that must be indistinguishable
#: from no plan at all.
FAULT_COMBOS: Tuple[Tuple[str, ...], ...] = (
    (),
    ("crash",),
    ("slowdown",),
    ("errors",),
    ("crash", "slowdown"),
    ("crash", "errors"),
    ("slowdown", "errors"),
    ("crash", "slowdown", "errors"),
)

#: Wall-clock budget per schedule; exceeding it is the "no hangs"
#: invariant violation.  Generous: healthy schedules finish in well
#: under a second.
DEFAULT_SCHEDULE_BUDGET_S = 30.0


def _schedule_rng(seed: int, index: int) -> random.Random:
    """The private RNG of schedule ``index`` — replayable in isolation."""
    return random.Random(f"fault-space:{seed}:{index}")


def _window(
    rng: random.Random, horizon_s: float
) -> Tuple[float, float]:
    """A (start, duration) pair fully inside ``[0, horizon_s)``."""
    start = rng.uniform(0.0, 0.4 * horizon_s)
    duration = rng.uniform(0.2 * horizon_s, 0.95 * horizon_s - start)
    return start, duration


def enumerate_fault_plans(
    num_schedules: int,
    *,
    shards: int,
    fault_horizon_s: float,
    seed: int = 0,
) -> List[FaultPlan]:
    """Deterministically enumerate ``num_schedules`` fault schedules.

    Schedule ``index`` cycles through :data:`FAULT_COMBOS` for its
    fault kinds, rotates the targeted shard, and draws window timing
    and severities from a private ``(seed, index)`` RNG — so any
    schedule can be regenerated (and a failure replayed) without
    enumerating its predecessors.  Every window closes before
    ``fault_horizon_s``, which is what makes the post-fault recovery
    invariants checkable.
    """
    if num_schedules <= 0:
        raise ValueError("num_schedules must be positive")
    if shards <= 0:
        raise ValueError("shards must be positive")
    if fault_horizon_s <= 0:
        raise ValueError("fault_horizon_s must be positive")
    plans: List[FaultPlan] = []
    for index in range(num_schedules):
        rng = _schedule_rng(seed, index)
        combo = FAULT_COMBOS[index % len(FAULT_COMBOS)]
        crashes: List[ShardCrash] = []
        slowdowns: List[ShardSlowdown] = []
        bursts: List[ErrorBurst] = []
        for offset, kind in enumerate(combo):
            shard = (index + offset) % shards
            start, duration = _window(rng, fault_horizon_s)
            if kind == "crash":
                crashes.append(
                    ShardCrash(
                        shard=shard, start_s=start, duration_s=duration
                    )
                )
            elif kind == "slowdown":
                slowdowns.append(
                    ShardSlowdown(
                        shard=shard,
                        start_s=start,
                        duration_s=duration,
                        factor=rng.uniform(1.5, 4.0),
                    )
                )
            else:
                bursts.append(
                    ErrorBurst(
                        shard=shard,
                        start_s=start,
                        duration_s=duration,
                        error_rate=rng.uniform(0.3, 0.9),
                    )
                )
        plans.append(
            FaultPlan(
                crashes=tuple(crashes),
                slowdowns=tuple(slowdowns),
                error_bursts=tuple(bursts),
                seed=seed + index,
            )
        )
    return plans


def _plan_shards(plan: FaultPlan) -> frozenset:
    """The shard indices a plan touches."""
    faults = plan.crashes + plan.slowdowns + plan.error_bursts
    return frozenset(fault.shard for fault in faults)


def _plan_end_s(plan: FaultPlan) -> float:
    """When the last fault window closes (0.0 for an inert plan)."""
    faults = plan.crashes + plan.slowdowns + plan.error_bursts
    return max((fault.end_s for fault in faults), default=0.0)


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one schedule on one backend."""

    index: int
    backend: str
    description: Tuple[str, ...]
    violations: Tuple[str, ...]
    elapsed_s: float
    faults_injected: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass(frozen=True)
class ExplorationReport:
    """All schedule outcomes of one exploration run."""

    backend: str
    seed: int
    schedules: Tuple[ScheduleResult, ...]

    @property
    def num_schedules(self) -> int:
        return len(self.schedules)

    @property
    def ok(self) -> bool:
        return all(schedule.ok for schedule in self.schedules)

    def violations(self) -> List[str]:
        """Flat ``schedule N (backend): violation`` lines."""
        lines = []
        for schedule in self.schedules:
            for violation in schedule.violations:
                lines.append(
                    f"schedule {schedule.index} ({schedule.backend}): "
                    f"{violation}"
                )
        return lines

    def summary(self) -> List[str]:
        """Human-readable run summary, one line per headline fact."""
        injected = sum(s.faults_injected for s in self.schedules)
        elapsed = sum(s.elapsed_s for s in self.schedules)
        lines = [
            f"{self.num_schedules} schedules explored on {self.backend} "
            f"(seed {self.seed}) in {elapsed:.1f}s",
            f"faults injected: {injected}",
        ]
        bad = self.violations()
        if bad:
            lines.append(f"VIOLATIONS ({len(bad)}):")
            lines.extend(f"  {line}" for line in bad)
        else:
            lines.append("all recovery invariants held")
        return lines


def _merge_reports(
    reports: Sequence[ExplorationReport],
) -> ExplorationReport:
    schedules: List[ScheduleResult] = []
    for report in reports:
        schedules.extend(report.schedules)
    return ExplorationReport(
        backend="+".join(report.backend for report in reports),
        seed=reports[0].seed,
        schedules=tuple(schedules),
    )


# ---------------------------------------------------------------------------
# native backend


def _hit_pairs(response) -> Tuple[Tuple[int, float], ...]:
    """(doc id, raw float score) pairs — the bit-identity currency."""
    return tuple((hit.doc_id, hit.score) for hit in response.hits)


def explore_native(
    num_schedules: int = 16,
    *,
    shards: int = 3,
    seed: int = 0,
    fault_horizon_s: float = 0.12,
    num_documents: int = 120,
    num_queries: int = 5,
    schedule_budget_s: float = DEFAULT_SCHEDULE_BUDGET_S,
) -> ExplorationReport:
    """Explore the fault space against the native (wall-clock) engine.

    One tiny corpus and partitioned index are built once; each schedule
    gets a fresh :class:`~repro.engine.isn.IndexServingNode` with the
    schedule's plan plus circuit breakers, is queried repeatedly while
    the fault windows are live, then — after the windows close and the
    breakers' recovery time passes — must answer the probe queries
    bit-identically to the fault-free baseline.
    """
    from repro.corpus.generator import CorpusConfig, CorpusGenerator
    from repro.corpus.querylog import QueryLogConfig, QueryLogGenerator
    from repro.engine.isn import IndexServingNode
    from repro.index.partitioner import partition_index
    from repro.resilience.breaker import BreakerConfig

    recovery_s = max(0.02, fault_horizon_s / 3.0)
    breakers = BreakerConfig(
        failure_threshold=2, recovery_time_s=recovery_s
    )
    generator = CorpusGenerator(
        CorpusConfig(num_documents=num_documents, seed=seed)
    )
    collection = generator.generate()
    partitioned = partition_index(collection, shards)
    log = QueryLogGenerator(
        generator.vocabulary,
        QueryLogConfig(num_unique_queries=max(10, num_queries), seed=seed + 1),
    ).generate()
    texts = [query.text for query in list(log)[:num_queries]]

    with IndexServingNode(partitioned) as baseline_node:
        baseline = [
            _hit_pairs(baseline_node.execute(text, k=5)) for text in texts
        ]

    plans = enumerate_fault_plans(
        num_schedules,
        shards=shards,
        fault_horizon_s=fault_horizon_s,
        seed=seed,
    )
    schedules: List[ScheduleResult] = []
    for index, plan in enumerate(plans):
        violations: List[str] = []
        injected = 0
        started = time.perf_counter()
        with IndexServingNode(
            partitioned, breakers=breakers, faults=plan
        ) as node:
            injector = node.fault_injector
            if injector is not None:
                injector.start()
            during = []
            try:
                # Query continuously while any window can be live; cap
                # the passes so a pathological schedule cannot spin.
                for _ in range(400):
                    if (
                        injector is None
                        or injector.elapsed() >= fault_horizon_s
                    ):
                        break
                    for text in texts:
                        during.append(node.execute(text, k=5))
                if injector is None:
                    during.extend(node.execute(text, k=5) for text in texts)
                else:
                    # Let the last window close and every tripped
                    # breaker reach its half-open probe.
                    remaining = (
                        _plan_end_s(plan)
                        + recovery_s
                        + 0.02
                        - injector.elapsed()
                    )
                    if remaining > 0:
                        time.sleep(remaining)
                after = [node.execute(text, k=5) for text in texts]
            except Exception as error:  # noqa: BLE001 — the invariant
                violations.append(
                    "untyped escape: "
                    f"{type(error).__name__}: {error}"
                )
                after = []
            if injector is not None:
                injected = (
                    injector.injected_crashes
                    + injector.injected_errors
                    + injector.injected_slowdowns
                )
        elapsed = time.perf_counter() - started

        if elapsed > schedule_budget_s:
            violations.append(
                f"wall-clock budget exceeded: {elapsed:.1f}s "
                f"> {schedule_budget_s:.1f}s"
            )
        degraded = [r for r in during if r.coverage < 1.0]
        if degraded and not plan.enabled:
            violations.append(
                f"{len(degraded)} degraded answers under an inert plan"
            )
        if degraded and plan.enabled and injected == 0:
            violations.append(
                "degraded coverage without any injected fault"
            )
        for response in during:
            if not 0.0 <= response.coverage <= 1.0:
                violations.append(
                    f"coverage out of range: {response.coverage}"
                )
                break
        if not plan.enabled:
            for response, want in zip(during, baseline * 400):
                if _hit_pairs(response) != want:
                    violations.append(
                        "inert plan not bit-identical to baseline"
                    )
                    break
        for position, response in enumerate(after):
            if response.coverage < 1.0:
                violations.append(
                    f"post-fault coverage {response.coverage:.2f} < 1 "
                    f"(query {position}) — breaker did not recover"
                )
                break
            if _hit_pairs(response) != baseline[position]:
                violations.append(
                    f"post-fault answer differs from baseline "
                    f"(query {position})"
                )
                break
        schedules.append(
            ScheduleResult(
                index=index,
                backend="native",
                description=tuple(plan.describe()),
                violations=tuple(violations),
                elapsed_s=elapsed,
                faults_injected=injected,
            )
        )
    return ExplorationReport(
        backend="native", seed=seed, schedules=tuple(schedules)
    )


# ---------------------------------------------------------------------------
# DES backend


def explore_des(
    num_schedules: int = 100,
    *,
    shards: int = 3,
    seed: int = 0,
    fault_horizon_s: float = 0.6,
    rate_qps: float = 60.0,
    schedule_budget_s: float = DEFAULT_SCHEDULE_BUDGET_S,
) -> ExplorationReport:
    """Explore the fault space against the DES cluster broker.

    Each schedule simulates a ``shards``-server fan-out cluster with
    breakers and a per-query deadline under the schedule's plan, long
    enough that the run extends well past the last fault window; the
    tail of the run must be fault-free.  The inert control schedule
    must be bit-identical (per-query receive times) to the plan-free
    baseline with the same seed.
    """
    from repro.api import BreakerConfig, ClusterModel, HedgingPolicy

    deadline_s = 0.3
    recovery_s = max(0.05, fault_horizon_s / 4.0)
    # Long enough that the post-recovery tail is a meaningful fraction
    # of the run.
    run_s = 3.0 * (fault_horizon_s + recovery_s + deadline_s)
    num_queries = max(50, int(rate_qps * run_s))

    def build(plan: Optional[FaultPlan]) -> ClusterModel:
        return ClusterModel(
            num_servers=shards,
            hedging=HedgingPolicy(deadline_s=deadline_s),
            breakers=BreakerConfig(
                failure_threshold=2, recovery_time_s=recovery_s
            ),
            faults=plan,
        )

    baseline = build(None).run(
        rate_qps=rate_qps, num_queries=num_queries, seed=seed
    )
    if baseline.shed_count or any(
        record.coverage < 1.0 for record in baseline.records
    ):
        raise ValueError(
            "baseline DES run is not clean; lower rate_qps or raise "
            "the deadline before exploring"
        )
    baseline_key = [
        (record.query_id, record.client_receive)
        for record in baseline.records
    ]

    plans = enumerate_fault_plans(
        num_schedules,
        shards=shards,
        fault_horizon_s=fault_horizon_s,
        seed=seed,
    )
    schedules: List[ScheduleResult] = []
    for index, plan in enumerate(plans):
        violations: List[str] = []
        started = time.perf_counter()
        try:
            result = build(plan).run(
                rate_qps=rate_qps, num_queries=num_queries, seed=seed
            )
        except Exception as error:  # noqa: BLE001 — the invariant
            violations.append(
                f"untyped escape: {type(error).__name__}: {error}"
            )
            result = None
        elapsed = time.perf_counter() - started

        injected = 0
        if result is not None:
            injected = sum(result.shard_failures)
            if elapsed > schedule_budget_s:
                violations.append(
                    f"wall-clock budget exceeded: {elapsed:.1f}s "
                    f"> {schedule_budget_s:.1f}s"
                )
            for record in result.records:
                if record.shed and not record.shed_reason:
                    violations.append(
                        f"query {record.query_id} shed without a typed "
                        "reason"
                    )
                    break
                if not record.shed and not record.complete:
                    violations.append(
                        f"query {record.query_id} never completed"
                    )
                    break
            touched = _plan_shards(plan)
            failed = frozenset(
                shard
                for shard, count in enumerate(result.shard_failures)
                if count
            )
            if not failed <= touched:
                violations.append(
                    f"failures on shards {sorted(failed - touched)} "
                    f"outside the plan's targets {sorted(touched)}"
                )
            degraded = [
                record
                for record in result.records
                if record.coverage < 1.0 or record.shed
            ]
            if degraded and not plan.enabled:
                violations.append(
                    f"{len(degraded)} degraded/shed queries under an "
                    "inert plan"
                )
            if not plan.enabled:
                key = [
                    (record.query_id, record.client_receive)
                    for record in result.records
                ]
                if key != baseline_key:
                    violations.append(
                        "inert plan not bit-identical to the seeded "
                        "baseline"
                    )
            # Recovery: once the last window closed, breakers probed,
            # and in-flight deadlines drained, answers are whole again.
            quiet_after = (
                _plan_end_s(plan) + recovery_s + deadline_s + 0.05
            )
            for record in result.records:
                if record.client_send < quiet_after:
                    continue
                if record.shed or record.coverage < 1.0 or record.failures:
                    violations.append(
                        f"query {record.query_id} at "
                        f"{record.client_send:.3f}s degraded after "
                        f"faults closed at {quiet_after:.3f}s"
                    )
                    break
        schedules.append(
            ScheduleResult(
                index=index,
                backend="des",
                description=tuple(plan.describe()),
                violations=tuple(violations),
                elapsed_s=elapsed,
                faults_injected=injected,
            )
        )
    return ExplorationReport(
        backend="des", seed=seed, schedules=tuple(schedules)
    )


def explore(
    num_schedules: int = 100,
    *,
    shards: int = 3,
    seed: int = 0,
    backends: Sequence[str] = ("native", "des"),
) -> ExplorationReport:
    """Run the explorer on the requested backends and merge the reports."""
    reports: List[ExplorationReport] = []
    for backend in backends:
        if backend == "native":
            reports.append(
                explore_native(num_schedules, shards=shards, seed=seed)
            )
        elif backend == "des":
            reports.append(
                explore_des(num_schedules, shards=shards, seed=seed)
            )
        else:
            raise ValueError(
                f"unknown backend {backend!r}; choose 'native' or 'des'"
            )
    if len(reports) == 1:
        return reports[0]
    return _merge_reports(reports)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: explore the fault space, exit non-zero on violations."""
    import argparse

    parser = argparse.ArgumentParser(
        description="deterministic fault-space exploration"
    )
    parser.add_argument("--schedules", type=int, default=100)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend",
        choices=["native", "des", "both"],
        default="both",
    )
    args = parser.parse_args(argv)
    backends = (
        ("native", "des") if args.backend == "both" else (args.backend,)
    )
    report = explore(
        args.schedules,
        shards=args.shards,
        seed=args.seed,
        backends=backends,
    )
    for line in report.summary():
        print(line)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
