"""Per-shard circuit breakers with health tracking.

A shard that is down — crashed, partitioned away, or stuck behind a
multi-second pause — fails every request sent to it, and each failed
request costs the fan-out a deadline's worth of waiting plus a retry's
worth of work.  A circuit breaker converts that repeated discovery
into state: after ``failure_threshold`` consecutive failures the
breaker *opens* and the fan-out skips the shard outright (degrading
coverage exactly like a deadline miss — partial answers are never
cached); after ``recovery_time_s`` it goes *half-open* and lets a
bounded number of probe requests through; ``success_threshold`` probe
successes close it again, while a single probe failure re-opens it.

The breaker is clock-agnostic (every method takes ``now``), so the
native ISN drives it with wall-clock time and the DES broker with
simulated time — one more policy object interpreted identically by
both execution paths.  It is also thread-safe: the native fan-out
records outcomes from pool threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Hashable, Optional

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "BreakerBoard",
]


class BreakerState(Enum):
    """The classic three-state breaker machine."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True, kw_only=True)
class BreakerConfig:
    """Declarative per-shard circuit-breaker policy.

    Attributes
    ----------
    failure_threshold:
        Consecutive failures (errors or deadline misses) that trip a
        closed breaker open.
    recovery_time_s:
        How long an open breaker blocks traffic before allowing
        half-open probes.
    half_open_probes:
        Probe requests allowed in flight at once while half-open.
    success_threshold:
        Probe successes required to close a half-open breaker.
    """

    failure_threshold: int = 5
    recovery_time_s: float = 1.0
    half_open_probes: int = 1
    success_threshold: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if self.recovery_time_s <= 0:
            raise ValueError("recovery_time_s must be positive")
        if self.half_open_probes <= 0:
            raise ValueError("half_open_probes must be positive")
        if self.success_threshold <= 0:
            raise ValueError("success_threshold must be positive")


class CircuitBreaker:
    """One shard's closed/open/half-open health state machine."""

    def __init__(self, config: BreakerConfig):
        self.config = config
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = float("nan")
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.trips = 0  # lifetime open transitions
        self._lock = threading.Lock()

    def state(self, now: float) -> BreakerState:
        """Current state, applying the timed OPEN → HALF_OPEN move."""
        with self._lock:
            return self._sync(now)

    def allow(self, now: float) -> bool:
        """May a request be sent to this shard right now?

        In half-open state a True answer *reserves* one of the bounded
        probe slots; the caller must report the probe's outcome via
        :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            state = self._sync(now)
            if state is BreakerState.CLOSED:
                return True
            if state is BreakerState.OPEN:
                return False
            if self._probes_in_flight < self.config.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False

    def record_success(self, now: float) -> None:
        """A request to this shard answered healthily."""
        with self._lock:
            state = self._sync(now)
            if state is BreakerState.HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.config.success_threshold:
                    self._close()
            else:
                self._consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        """A request to this shard failed or missed its deadline."""
        with self._lock:
            state = self._sync(now)
            if state is BreakerState.HALF_OPEN:
                # A failed probe re-opens immediately: the shard is
                # still sick, restart the recovery clock.
                self._trip(now)
            elif state is BreakerState.CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.config.failure_threshold:
                    self._trip(now)
            # Failures while OPEN (late answers from before the trip)
            # carry no new information.

    # -- internals (lock held) -----------------------------------------

    def _sync(self, now: float) -> BreakerState:
        if (
            self._state is BreakerState.OPEN
            and now - self._opened_at >= self.config.recovery_time_s
        ):
            self._state = BreakerState.HALF_OPEN
            self._probes_in_flight = 0
            self._probe_successes = 0
        return self._state

    def _trip(self, now: float) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = now
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.trips += 1

    def _close(self) -> None:
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0


class BreakerBoard:
    """Lazily-created breakers keyed by shard (or (shard, replica)).

    The native ISN keys by shard index; the DES broker keys by
    ``(shard, replica)`` so one sick replica does not sideline its
    healthy siblings.
    """

    def __init__(self, config: BreakerConfig):
        self.config = config
        self._breakers: Dict[Hashable, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, key: Hashable) -> CircuitBreaker:
        """Get (creating on first use) the breaker for ``key``."""
        with self._lock:
            existing = self._breakers.get(key)
            if existing is None:
                existing = CircuitBreaker(self.config)
                self._breakers[key] = existing
            return existing

    def states(self, now: float) -> Dict[Hashable, BreakerState]:
        """Snapshot of every breaker's state."""
        with self._lock:
            items = list(self._breakers.items())
        return {key: breaker.state(now) for key, breaker in items}

    @property
    def trips(self) -> int:
        """Total open transitions across all breakers."""
        with self._lock:
            return sum(breaker.trips for breaker in self._breakers.values())

    def export_gauges(
        self, metrics, prefix: str, now: float
    ) -> None:
        """Write per-key state gauges into a metrics registry.

        Gauge value encodes the state: 0 closed, 1 half-open, 2 open —
        so dashboards can plot "how much of the cluster is fenced off".
        """
        encoding = {
            BreakerState.CLOSED: 0.0,
            BreakerState.HALF_OPEN: 1.0,
            BreakerState.OPEN: 2.0,
        }
        for key, state in sorted(
            self.states(now).items(), key=lambda item: str(item[0])
        ):
            label = (
                "-".join(str(part) for part in key)
                if isinstance(key, tuple)
                else str(key)
            )
            metrics.gauge(f"{prefix}.{label}.state").set(encoding[state])
