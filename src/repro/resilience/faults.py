"""Deterministic, seedable fault injection for both execution paths.

A resilience layer that has never seen a failure is decoration.  This
module provides the *chaos harness*: a declarative :class:`FaultPlan`
listing shard slowdowns, crash/restart windows, and error bursts on a
shared timeline, interpreted by both execution paths —

- the **DES broker** (:func:`repro.cluster.fanout.run_fanout_open_loop`)
  folds crash windows into each replica's stall schedule, scales
  dispatched work by the slowdown factor, and converts error bursts
  into instantaneous failure responses drawn from a dedicated
  ``"faults"`` random stream;
- the **native ISN** wraps each shard search with a wall-clock
  :class:`FaultInjector` that raises :class:`InjectedFault` for crashes
  and errors (flowing through the existing retry machinery) and pads
  service time for slowdowns.

Faults address a shard and optionally a single replica; the plan is a
frozen value object, so the same plan drives a simulation, a native
run, and a pytest fixture with identical meaning.  Corrupted-postings
detection — the storage-level fault — lives in
:mod:`repro.index.serialization` as checksum verification.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "ShardSlowdown",
    "ShardCrash",
    "ErrorBurst",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
]


class InjectedFault(RuntimeError):
    """Raised by the native injector in place of a real shard failure.

    ``kind`` is ``"crash"`` or ``"error"``; the fan-out's retry/breaker
    machinery treats it like any other shard exception.
    """

    def __init__(self, kind: str, shard: int, message: str):
        super().__init__(message)
        self.kind = kind
        self.shard = shard


def _applies(fault_shard: int, fault_replica: Optional[int],
             shard: int, replica: Optional[int]) -> bool:
    if fault_shard != shard:
        return False
    return fault_replica is None or replica is None or fault_replica == replica


@dataclass(frozen=True, kw_only=True)
class ShardSlowdown:
    """Multiply a shard's service demand by ``factor`` during a window."""

    shard: int
    start_s: float
    duration_s: float
    factor: float
    replica: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("slowdown window must have start>=0, duration>0")
        if self.factor < 1.0:
            raise ValueError("slowdown factor must be >= 1.0")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active(self, now: float) -> bool:
        return self.start_s <= now < self.end_s


@dataclass(frozen=True, kw_only=True)
class ShardCrash:
    """Shard is down (no answers at all) during a window, then restarts."""

    shard: int
    start_s: float
    duration_s: float
    replica: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("crash window must have start>=0, duration>0")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active(self, now: float) -> bool:
        return self.start_s <= now < self.end_s


@dataclass(frozen=True, kw_only=True)
class ErrorBurst:
    """Shard answers a fraction of requests with an error during a window."""

    shard: int
    start_s: float
    duration_s: float
    error_rate: float
    replica: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("error window must have start>=0, duration>0")
        if not 0.0 < self.error_rate <= 1.0:
            raise ValueError("error_rate must be in (0, 1]")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active(self, now: float) -> bool:
        return self.start_s <= now < self.end_s


@dataclass(frozen=True, kw_only=True)
class FaultPlan:
    """A declarative, seedable schedule of injected faults.

    The timeline starts at 0 — simulated time for the DES broker, time
    since :meth:`FaultInjector.start` for the native path — so one plan
    means the same thing in both interpreters.  ``seed`` feeds the
    probabilistic decisions (error bursts); everything else is a fixed
    window, so a plan replays identically run after run.
    """

    slowdowns: Tuple[ShardSlowdown, ...] = ()
    crashes: Tuple[ShardCrash, ...] = ()
    error_bursts: Tuple[ErrorBurst, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Accept lists for ergonomics but store hashable tuples.
        object.__setattr__(self, "slowdowns", tuple(self.slowdowns))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "error_bursts", tuple(self.error_bursts))

    @property
    def enabled(self) -> bool:
        return bool(self.slowdowns or self.crashes or self.error_bursts)

    def crash_windows(
        self, shard: int, replica: Optional[int] = None
    ) -> Tuple[Tuple[float, float], ...]:
        """Sorted (start, end) outage windows for one shard/replica."""
        windows = [
            (crash.start_s, crash.end_s)
            for crash in self.crashes
            if _applies(crash.shard, crash.replica, shard, replica)
        ]
        return tuple(sorted(windows))

    def crashed(self, shard: int, replica: Optional[int], now: float) -> bool:
        return any(
            crash.active(now)
            for crash in self.crashes
            if _applies(crash.shard, crash.replica, shard, replica)
        )

    def slowdown_factor(
        self, shard: int, replica: Optional[int], now: float
    ) -> float:
        """Combined service-demand multiplier at ``now`` (1.0 = healthy)."""
        factor = 1.0
        for slow in self.slowdowns:
            if _applies(slow.shard, slow.replica, shard, replica):
                if slow.active(now):
                    factor *= slow.factor
        return factor

    def error_rate(
        self, shard: int, replica: Optional[int], now: float
    ) -> float:
        """Probability that a request at ``now`` draws an injected error."""
        ok = 1.0
        for burst in self.error_bursts:
            if _applies(burst.shard, burst.replica, shard, replica):
                if burst.active(now):
                    ok *= 1.0 - burst.error_rate
        return 1.0 - ok

    def describe(self) -> List[str]:
        """Human-readable schedule, one line per fault (for ``--dry-run``)."""
        lines: List[str] = []

        def where(shard: int, replica: Optional[int]) -> str:
            if replica is None:
                return f"shard {shard}"
            return f"shard {shard} replica {replica}"

        for crash in sorted(self.crashes, key=lambda c: (c.start_s, c.shard)):
            lines.append(
                f"crash    {where(crash.shard, crash.replica)}: "
                f"[{crash.start_s:.3f}s, {crash.end_s:.3f}s)"
            )
        for slow in sorted(self.slowdowns, key=lambda s: (s.start_s, s.shard)):
            lines.append(
                f"slowdown {where(slow.shard, slow.replica)}: "
                f"[{slow.start_s:.3f}s, {slow.end_s:.3f}s) x{slow.factor:g}"
            )
        for burst in sorted(
            self.error_bursts, key=lambda e: (e.start_s, e.shard)
        ):
            lines.append(
                f"errors   {where(burst.shard, burst.replica)}: "
                f"[{burst.start_s:.3f}s, {burst.end_s:.3f}s) "
                f"p={burst.error_rate:g}"
            )
        if not lines:
            lines.append("(no faults)")
        return lines

    @classmethod
    def flapping_shard(
        cls,
        shard: int,
        *,
        period_s: float,
        duty: float,
        horizon_s: float,
        start_s: float = 0.0,
        replica: Optional[int] = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """Plan where one shard crashes for ``duty`` of every period.

        The canonical bench_fig24 scenario: the shard is down for
        ``duty * period_s`` at the start of each period from ``start_s``
        until ``horizon_s``, coming back up in between — a flapping
        replica that repeatedly poisons the fan-out unless a breaker
        fences it off.
        """
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if not 0.0 < duty < 1.0:
            raise ValueError("duty must be in (0, 1)")
        crashes = []
        begin = start_s
        while begin < horizon_s:
            crashes.append(
                ShardCrash(
                    shard=shard,
                    start_s=begin,
                    duration_s=duty * period_s,
                    replica=replica,
                )
            )
            begin += period_s
        return cls(crashes=tuple(crashes), seed=seed)


class FaultInjector:
    """Wall-clock interpreter of a :class:`FaultPlan` for the native ISN.

    The plan's timeline is anchored at construction (or an explicit
    :meth:`start`); shard searches then consult it with real elapsed
    time.  Error-burst draws use a private seeded RNG behind a lock, so
    concurrent pool threads stay deterministic in aggregate (the set of
    draws depends only on the seed and the number of requests, not on
    thread interleaving of *other* RNGs).
    """

    def __init__(self, plan: FaultPlan, clock=time.perf_counter):
        self.plan = plan
        self._clock = clock
        self._epoch = clock()
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self.injected_crashes = 0
        self.injected_errors = 0
        self.injected_slowdowns = 0

    def start(self) -> None:
        """Re-anchor the plan timeline at 'now'."""
        self._epoch = self._clock()

    def elapsed(self) -> float:
        return self._clock() - self._epoch

    def before_search(self, shard: int) -> None:
        """Raise :class:`InjectedFault` if the shard should fail now."""
        now = self.elapsed()
        if self.plan.crashed(shard, None, now):
            with self._lock:
                self.injected_crashes += 1
            raise InjectedFault(
                "crash", shard, f"injected crash on shard {shard} at {now:.3f}s"
            )
        rate = self.plan.error_rate(shard, None, now)
        if rate > 0.0:
            with self._lock:
                draw = self._rng.random()
                if draw < rate:
                    self.injected_errors += 1
                    raise InjectedFault(
                        "error",
                        shard,
                        f"injected error on shard {shard} at {now:.3f}s",
                    )

    def slowdown_sleep(self, shard: int, service_elapsed_s: float) -> None:
        """Pad a completed shard search to simulate a slowdown.

        With factor ``f`` the search should have taken ``f * elapsed``,
        so sleep the missing ``(f - 1) * elapsed``.
        """
        factor = self.plan.slowdown_factor(shard, None, self.elapsed())
        if factor > 1.0 and service_elapsed_s > 0.0:
            with self._lock:
                self.injected_slowdowns += 1
            time.sleep((factor - 1.0) * service_elapsed_s)
