"""Admission control: bounded queueing and load shedding.

An open-loop arrival process has no mercy: offered load above capacity
makes the queue — and therefore every latency percentile — grow without
bound.  The only way to keep a response-time SLO past the knee is to
*refuse* work: bound the admission queue and shed what does not fit,
so the queries that are served stay fast and the rest fail fast.

Three shedding policies, combinable through one declarative
:class:`OverloadPolicy`:

- **hard concurrency limit** — at most ``max_concurrency`` queries in
  service; up to ``queue_limit`` more may wait; beyond that, shed;
- **CoDel-style target-delay dropping** — a queued query whose wait
  exceeds ``codel_target_delay_s`` continuously for a full
  ``codel_interval_s`` marks the queue as *standing*; entries are then
  dropped at dequeue until the wait falls back under the target;
- **AIMD adaptive limit** — the concurrency limit itself adapts: each
  completion compares observed latency against an EWMA baseline;
  latencies beyond ``latency_factor`` × baseline multiplicatively
  decrease the limit, healthy ones additively increase it (one unit per
  ``limit`` completions) — the gradient limiter converges to the
  concurrency the backend can actually sustain.

The state machine (:class:`AdmissionController`) is clock-agnostic:
every method takes ``now`` so the native gate can feed it wall-clock
time and the DES broker simulated time, mirroring how
:class:`~repro.engine.hedging.HedgingPolicy` is shared.  Shed queries
are answered with a typed :class:`ShedResponse` — a degenerate
query outcome (``coverage == 0.0``, no hits) — rather than an
exception, so drivers, metrics, and analysis code keep working.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

__all__ = [
    "AimdConfig",
    "OverloadPolicy",
    "AdmissionController",
    "BlockingAdmissionGate",
    "ShedResponse",
    "SHED_CAPACITY",
    "SHED_QUEUE_FULL",
    "SHED_CODEL",
]

#: Shed reasons, shared by both interpreters.
SHED_CAPACITY = "capacity"  # concurrency full and no queue configured
SHED_QUEUE_FULL = "queue_full"  # admission queue at its bound
SHED_CODEL = "codel"  # dropped at dequeue by target-delay control


@dataclass(frozen=True)
class ShedResponse:
    """The typed answer to a query the admission layer refused.

    Satisfies the :class:`repro.api.QueryOutcome` protocol — analysis
    code that iterates outcomes sees an answer with ``coverage`` 0.0
    and an empty result list, and can split shed from served via the
    ``shed`` flag (``True`` here, absent/False on real responses).
    """

    reason: str
    latency_s: float = 0.0
    query: str = ""

    #: Class-level marker: ``getattr(outcome, "shed", False)`` is the
    #: idiomatic served/shed test across all outcome types.
    shed = True

    #: No results were computed, so no hits back a rendered page.
    hits: Tuple = ()

    @property
    def coverage(self) -> float:
        """Zero — no shard contributed to this (non-)answer."""
        return 0.0

    def doc_ids(self) -> List[int]:
        """Empty — shed queries carry no results."""
        return []


@dataclass(frozen=True, kw_only=True)
class AimdConfig:
    """Adaptive (AIMD) concurrency limiting parameters.

    Attributes
    ----------
    initial_limit:
        Concurrency limit before any feedback arrives.
    min_limit / max_limit:
        Clamp for the adapted limit.
    increase:
        Additive growth credited per completion, scaled by the current
        limit (``limit += increase / limit``) — i.e. roughly one unit
        of limit per ``limit`` healthy completions.
    decrease_factor:
        Multiplicative cut applied when latency breaches the threshold.
    latency_factor:
        Overload threshold as a multiple of the EWMA latency baseline.
    ewma_alpha:
        Baseline smoothing factor (only healthy samples update it, so
        a congested period cannot drag the baseline up after itself).
    cooldown_s:
        Minimum time between two multiplicative decreases — one queue's
        worth of slow completions must count as one congestion event.
    baseline_latency_s:
        Optional prior for the baseline; None starts from the first
        observed completion.
    """

    initial_limit: float = 32.0
    min_limit: float = 1.0
    max_limit: float = 1024.0
    increase: float = 1.0
    decrease_factor: float = 0.7
    latency_factor: float = 2.0
    ewma_alpha: float = 0.05
    cooldown_s: float = 0.05
    baseline_latency_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.min_limit >= 1:
            raise ValueError("min_limit must be >= 1")
        if self.max_limit < self.min_limit:
            raise ValueError("max_limit must be >= min_limit")
        if not self.min_limit <= self.initial_limit <= self.max_limit:
            raise ValueError("initial_limit must lie in [min, max]")
        if self.increase <= 0:
            raise ValueError("increase must be positive")
        if not 0.0 < self.decrease_factor < 1.0:
            raise ValueError("decrease_factor must be in (0, 1)")
        if self.latency_factor <= 1.0:
            raise ValueError("latency_factor must be > 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        if self.baseline_latency_s is not None and self.baseline_latency_s <= 0:
            raise ValueError("baseline_latency_s must be positive")


@dataclass(frozen=True, kw_only=True)
class OverloadPolicy:
    """Declarative admission-control policy for one serving tier.

    All fields are keyword-only, and — like
    :class:`~repro.engine.hedging.HedgingPolicy` — a default-constructed
    policy is inert: every mechanism must be opted into.

    Attributes
    ----------
    max_concurrency:
        Hard cap on queries in service at once (None: uncapped, unless
        ``aimd`` supplies an adaptive cap).
    queue_limit:
        Bounded admission-queue depth for queries that arrive while the
        concurrency limit is saturated.  0 (the default) sheds
        immediately at the limit.
    codel_target_delay_s:
        Target queueing delay for CoDel-style dropping; None disables
        delay-based dropping (the queue bound alone sheds).
    codel_interval_s:
        How long the queue delay must stay above target before the
        controller starts dropping.
    aimd:
        Optional adaptive concurrency limiter.  Combines with
        ``max_concurrency`` as a minimum (the hard cap is a ceiling the
        adaptive limit cannot exceed).
    """

    max_concurrency: Optional[int] = None
    queue_limit: int = 0
    codel_target_delay_s: Optional[float] = None
    codel_interval_s: float = 0.1
    aimd: Optional[AimdConfig] = None

    def __post_init__(self) -> None:
        if self.max_concurrency is not None and self.max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be non-negative")
        if (
            self.codel_target_delay_s is not None
            and self.codel_target_delay_s <= 0
        ):
            raise ValueError("codel_target_delay_s must be positive")
        if self.codel_interval_s <= 0:
            raise ValueError("codel_interval_s must be positive")

    @property
    def enabled(self) -> bool:
        """True when any admission mechanism is active."""
        return self.max_concurrency is not None or self.aimd is not None


class AdmissionController:
    """The admission state machine, shared by both execution paths.

    Clock-agnostic: callers pass ``now`` (wall-clock seconds for the
    native gate, simulated seconds for the DES broker).  The controller
    tracks in-flight and queued counts and implements the three
    policies; the *actual* queue (blocked threads natively, pending
    query states in the DES) belongs to the interpreter.
    """

    def __init__(self, policy: OverloadPolicy):
        if not policy.enabled:
            raise ValueError(
                "policy enables no admission mechanism; "
                "pass None instead of an inert policy"
            )
        self.policy = policy
        self.in_flight = 0
        self.queue_depth = 0
        self.shed_count = 0
        self.served_count = 0
        aimd = policy.aimd
        self._limit = (
            float(aimd.initial_limit)
            if aimd is not None
            else float(policy.max_concurrency)
        )
        self._ewma = aimd.baseline_latency_s if aimd is not None else None
        self._last_decrease = float("-inf")
        # CoDel sojourn tracking.
        self._above_since: Optional[float] = None
        self._dropping = False

    @property
    def limit(self) -> float:
        """The effective concurrency limit right now."""
        if self.policy.aimd is not None and self.policy.max_concurrency:
            return min(self._limit, float(self.policy.max_concurrency))
        return self._limit

    @property
    def aimd_limit(self) -> float:
        """The raw adaptive limit (equals :attr:`limit` without a cap)."""
        return self._limit

    def can_admit(self) -> bool:
        """True when a query could enter service immediately."""
        return self.in_flight < self.limit

    def decide(self, now: float) -> str:
        """Classify an arrival: ``"admit"``, ``"queue"``, or a shed reason."""
        if self.can_admit():
            return "admit"
        if self.queue_depth < self.policy.queue_limit:
            return "queue"
        return SHED_QUEUE_FULL if self.policy.queue_limit > 0 else SHED_CAPACITY

    def admit(self, now: float) -> None:
        """A query enters service."""
        self.in_flight += 1

    def enqueue(self, now: float) -> None:
        """A query starts waiting in the admission queue."""
        self.queue_depth += 1

    def dequeue(self, now: float, enqueued_at: float) -> bool:
        """A queued query reaches the head with a free slot.

        Returns True when the query is admitted into service, False
        when the CoDel controller drops it (the caller sheds it with
        reason :data:`SHED_CODEL`).
        """
        self.queue_depth -= 1
        target = self.policy.codel_target_delay_s
        if target is not None:
            delay = now - enqueued_at
            if delay <= target:
                # The queue drained under target: leave dropping state.
                self._above_since = None
                self._dropping = False
            else:
                if self._above_since is None:
                    self._above_since = now
                if now - self._above_since >= self.policy.codel_interval_s:
                    self._dropping = True
                if self._dropping:
                    self.shed_count += 1
                    return False
        self.in_flight += 1
        return True

    def shed(self, now: float) -> None:
        """A query was refused at arrival (capacity/queue_full)."""
        self.shed_count += 1

    def complete(self, now: float, latency_s: float) -> None:
        """A served query finished; feeds the AIMD gradient."""
        self.in_flight -= 1
        self.served_count += 1
        aimd = self.policy.aimd
        if aimd is None:
            return
        if self._ewma is None:
            self._ewma = float(latency_s)
            return
        if latency_s > aimd.latency_factor * self._ewma:
            if now - self._last_decrease >= aimd.cooldown_s:
                self._limit = max(
                    aimd.min_limit, self._limit * aimd.decrease_factor
                )
                self._last_decrease = now
        else:
            self._ewma += aimd.ewma_alpha * (float(latency_s) - self._ewma)
            self._limit = min(
                aimd.max_limit, self._limit + aimd.increase / max(1.0, self._limit)
            )


class BlockingAdmissionGate:
    """Wall-clock interpreter of an :class:`OverloadPolicy`.

    Wraps an :class:`AdmissionController` with a condition variable so
    real caller threads form the bounded FIFO admission queue: a caller
    either enters service, waits its turn (and may be CoDel-dropped at
    dequeue), or is shed immediately.
    """

    def __init__(
        self,
        policy: OverloadPolicy,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.controller = AdmissionController(policy)
        self._clock = clock
        self._cond = threading.Condition()
        self._waiters: Deque[int] = deque()
        self._next_ticket = 0

    def acquire(self) -> Optional[str]:
        """Try to enter service; blocks while queued.

        Returns None when admitted, or the shed reason when refused.
        """
        with self._cond:
            controller = self.controller
            now = self._clock()
            decision = controller.decide(now)
            if decision == "admit":
                controller.admit(now)
                return None
            if decision != "queue":
                controller.shed(now)
                return decision
            ticket = self._next_ticket
            self._next_ticket += 1
            self._waiters.append(ticket)
            controller.enqueue(now)
            enqueued_at = now
            while not (
                self._waiters[0] == ticket and controller.can_admit()
            ):
                self._cond.wait()
            self._waiters.popleft()
            admitted = controller.dequeue(self._clock(), enqueued_at)
            # Whether admitted or dropped, a queue slot freed up.
            self._cond.notify_all()
            return None if admitted else SHED_CODEL

    def release(self, latency_s: float) -> None:
        """A served query finished: free its slot and wake waiters."""
        with self._cond:
            self.controller.complete(self._clock(), float(latency_s))
            self._cond.notify_all()
