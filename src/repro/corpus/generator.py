"""Synthetic web-page generation.

``CorpusGenerator`` produces a :class:`~repro.corpus.documents.DocumentCollection`
whose statistics mimic a web crawl:

- term occurrences are Zipf-distributed over the vocabulary;
- document lengths are log-normal (web page bodies have a long tail);
- raw text contains capitalization, stopwords, and sentence punctuation
  so the analyzer chain does real work at index-build time;
- each document mixes a small set of "topic" terms (sampled once per
  document and repeated) with background terms, giving documents the
  term burstiness real pages have — this is what makes conjunctive
  multi-term queries return non-empty results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.corpus.documents import Document, DocumentCollection
from repro.corpus.vocabulary import Vocabulary, VocabularyConfig
from repro.text.stopwords import DEFAULT_STOPWORDS

_STOPWORD_LIST = sorted(DEFAULT_STOPWORDS)


@dataclass(frozen=True)
class CorpusConfig:
    """Parameters of the synthetic corpus.

    Attributes
    ----------
    num_documents:
        Number of pages to generate.
    vocabulary:
        Vocabulary shape (size, Zipf exponent).
    mean_length:
        Mean body length in content terms.  2015-era crawls average a
        few hundred terms per page.
    length_sigma:
        Sigma of the log-normal length distribution (in log space).
    topic_terms:
        Number of topic terms per document.
    topic_fraction:
        Fraction of body terms drawn from the document's topic set
        rather than the background Zipf distribution.
    stopword_fraction:
        Fraction of emitted raw tokens that are stopwords (removed again
        by the analyzer, but they exercise the pipeline).
    title_terms:
        Number of content terms in the title.
    topic_drift:
        Crawl-order vocabulary locality: with drift > 0, document
        ``i``'s content ranks (topics and background alike) are shifted
        by ``drift × i`` vocabulary ranks, so consecutive documents
        share vocabulary and far-apart documents do not — the temporal
        locality of real crawls that makes CONTIGUOUS intra-server
        partitioning produce topically-skewed shards.  0 disables it.
    seed:
        Master RNG seed; the whole corpus is deterministic given it.
    """

    num_documents: int = 10_000
    vocabulary: VocabularyConfig = VocabularyConfig()
    mean_length: int = 250
    length_sigma: float = 0.7
    topic_terms: int = 8
    topic_fraction: float = 0.35
    stopword_fraction: float = 0.25
    title_terms: int = 4
    topic_drift: float = 0.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_documents < 0:
            raise ValueError("num_documents must be non-negative")
        if self.mean_length <= 0:
            raise ValueError("mean_length must be positive")
        if not 0.0 <= self.topic_fraction <= 1.0:
            raise ValueError("topic_fraction must be in [0, 1]")
        if not 0.0 <= self.stopword_fraction < 1.0:
            raise ValueError("stopword_fraction must be in [0, 1)")
        if self.title_terms <= 0:
            raise ValueError("title_terms must be positive")
        if self.topic_drift < 0:
            raise ValueError("topic_drift must be non-negative")


class CorpusGenerator:
    """Generates a deterministic synthetic corpus."""

    def __init__(self, config: CorpusConfig | None = None):
        self.config = config or CorpusConfig()
        self.vocabulary = Vocabulary(self.config.vocabulary)

    def generate(self) -> DocumentCollection:
        """Generate the full collection described by the config."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        sampler = self.vocabulary.sampler(rng)
        collection = DocumentCollection()

        # Log-normal lengths with the requested arithmetic mean:
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2 / 2).
        mu = np.log(config.mean_length) - config.length_sigma**2 / 2.0
        lengths = np.maximum(
            1, rng.lognormal(mu, config.length_sigma, config.num_documents)
        ).astype(np.int64)

        vocabulary_size = len(self.vocabulary)
        for doc_id in range(config.num_documents):
            shift = int(config.topic_drift * doc_id) % vocabulary_size
            topic_ranks = (
                sampler.sample_many(config.topic_terms) + shift
            ) % vocabulary_size
            body = self._make_body(
                rng, sampler, topic_ranks, int(lengths[doc_id]), shift
            )
            title = self._make_title(rng, topic_ranks)
            collection.add(
                Document(
                    doc_id=doc_id,
                    url=f"http://synth.example/{doc_id:08d}.html",
                    title=title,
                    body=body,
                )
            )
        return collection

    def _make_title(self, rng: np.random.Generator, topic_ranks: np.ndarray) -> str:
        count = min(self.config.title_terms, len(topic_ranks))
        picks = rng.choice(topic_ranks, size=count, replace=False)
        words = [self.vocabulary.word(int(rank)).capitalize() for rank in picks]
        return " ".join(words)

    def _make_body(
        self,
        rng: np.random.Generator,
        sampler,
        topic_ranks: np.ndarray,
        length: int,
        shift: int = 0,
    ) -> str:
        config = self.config
        # Choose, per content-term slot, whether it comes from the topic
        # set or the background distribution.  The drift shift applies to
        # background draws too: under drift, the *whole* document's
        # vocabulary window moves with crawl order.
        from_topic = rng.random(length) < config.topic_fraction
        background = (sampler.sample_many(length) + shift) % len(
            self.vocabulary
        )
        topic_picks = rng.integers(0, len(topic_ranks), size=length)
        ranks = np.where(from_topic, topic_ranks[topic_picks], background)

        words: List[str] = []
        sentence_length = 0
        for rank in ranks:
            # Interleave stopwords into the raw text.
            if rng.random() < config.stopword_fraction:
                words.append(_STOPWORD_LIST[int(rng.integers(len(_STOPWORD_LIST)))])
                sentence_length += 1
            word = self.vocabulary.word(int(rank))
            if sentence_length == 0:
                word = word.capitalize()
            words.append(word)
            sentence_length += 1
            if sentence_length >= 12 and rng.random() < 0.3:
                words[-1] = words[-1] + "."
                sentence_length = 0
        return " ".join(words)
