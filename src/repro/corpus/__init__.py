"""Synthetic web corpus and query-log generation.

The paper characterizes a benchmark whose index is built from a web
crawl and whose load generator replays a query log.  Neither artifact
is redistributable, so this package synthesizes statistically faithful
stand-ins:

- a **vocabulary** whose term frequencies follow a Zipf law (the defining
  skew of natural-language corpora and the origin of the posting-list
  length skew that drives service-time tails);
- **documents** with log-normally distributed lengths;
- a **query log** with Zipfian query popularity and a realistic
  query-length (term count) mix.
"""

from repro.corpus.documents import Document, DocumentCollection
from repro.corpus.io import (
    load_collection,
    load_query_log,
    save_collection,
    save_query_log,
)
from repro.corpus.loganalysis import (
    LogProfile,
    estimate_popularity_exponent,
    profile_query_log,
    query_volume_distribution,
    traffic_concentration,
)
from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.querylog import Query, QueryLog, QueryLogConfig, QueryLogGenerator
from repro.corpus.vocabulary import Vocabulary, VocabularyConfig
from repro.corpus.zipf import ZipfSampler, zipf_weights

__all__ = [
    "Document",
    "DocumentCollection",
    "CorpusConfig",
    "CorpusGenerator",
    "Query",
    "QueryLog",
    "QueryLogConfig",
    "QueryLogGenerator",
    "Vocabulary",
    "VocabularyConfig",
    "ZipfSampler",
    "zipf_weights",
    "save_collection",
    "load_collection",
    "save_query_log",
    "load_query_log",
    "LogProfile",
    "profile_query_log",
    "estimate_popularity_exponent",
    "traffic_concentration",
    "query_volume_distribution",
]
