"""Document model for the synthetic web corpus."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class Document:
    """A single synthetic web page.

    Attributes
    ----------
    doc_id:
        Dense integer id, unique within a collection.
    url:
        Synthetic URL, unique within a collection.
    title:
        Short title text (raw, un-analyzed).
    body:
        Main page text (raw, un-analyzed).
    """

    doc_id: int
    url: str
    title: str
    body: str

    @property
    def text(self) -> str:
        """Full indexable text (title + body)."""
        return f"{self.title}\n{self.body}"


@dataclass
class DocumentCollection:
    """An ordered collection of documents with dense ids.

    The index builder consumes a collection; the partitioner splits one
    into shards.  Ids must be dense ``0..len-1`` in order, which
    :meth:`add` enforces — dense ids are what lets postings use array
    offsets instead of hash lookups.
    """

    documents: List[Document] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self.documents)

    def __getitem__(self, doc_id: int) -> Document:
        return self.documents[doc_id]

    def add(self, document: Document) -> None:
        """Append ``document``; its id must equal the current length."""
        expected = len(self.documents)
        if document.doc_id != expected:
            raise ValueError(
                f"document ids must be dense: expected {expected}, "
                f"got {document.doc_id}"
            )
        self.documents.append(document)

    def get(self, doc_id: int) -> Optional[Document]:
        """Return the document with ``doc_id`` or None if out of range."""
        if 0 <= doc_id < len(self.documents):
            return self.documents[doc_id]
        return None

    def slice(self, doc_ids: List[int]) -> List[Document]:
        """Return the documents for the given ids (order preserved)."""
        return [self.documents[doc_id] for doc_id in doc_ids]
