"""Query-log analysis: the workload-side characterization tools.

The paper characterizes not only the engine but the workload feeding
it.  These utilities measure the properties of a query log (or a
sampled stream from it) that determine system behaviour: the
popularity skew (Zipf exponent), the term-count mix, the traffic
concentration curve (what fraction of traffic the top-k queries
carry), and the per-query index footprint distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.stats import linear_fit
from repro.corpus.querylog import Query, QueryLog
from repro.index.inverted import InvertedIndex
from repro.search.query import QueryParser


def estimate_popularity_exponent(
    stream_query_ids: Sequence[int],
) -> Tuple[float, float]:
    """Estimate the Zipf exponent of query popularity from a stream.

    Fits ``log(count) ≈ c - s·log(rank)`` over the observed frequency-
    rank curve; returns ``(exponent, r_squared)``.  Ranks with a single
    observation are dropped (they flatten the regression's tail with
    pure noise).
    """
    ids = np.asarray(stream_query_ids)
    if ids.size == 0:
        raise ValueError("need a non-empty stream")
    counts = np.sort(np.bincount(ids))[::-1]
    counts = counts[counts > 1]
    if counts.size < 3:
        raise ValueError("stream too small to estimate an exponent")
    ranks = np.arange(1, counts.size + 1, dtype=np.float64)
    intercept, slope, r_squared = linear_fit(
        np.log(ranks), np.log(counts.astype(np.float64))
    )
    return -slope, r_squared


def traffic_concentration(
    stream_query_ids: Sequence[int], top_fractions: Sequence[float]
) -> List[float]:
    """Traffic share carried by the top-x% most popular queries.

    ``top_fractions`` are fractions of the *unique-query* population;
    the return value is the corresponding share of total traffic.
    """
    ids = np.asarray(stream_query_ids)
    if ids.size == 0:
        raise ValueError("need a non-empty stream")
    counts = np.sort(np.bincount(ids))[::-1]
    counts = counts[counts > 0]
    total = counts.sum()
    shares: List[float] = []
    for fraction in top_fractions:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fractions must be in (0, 1]")
        top = max(1, int(round(fraction * counts.size)))
        shares.append(float(counts[:top].sum() / total))
    return shares


@dataclass(frozen=True)
class LogProfile:
    """Summary characterization of one query log."""

    num_unique_queries: int
    mean_terms_per_query: float
    term_count_mix: Dict[int, float]
    estimated_popularity_exponent: float
    popularity_fit_r_squared: float
    top_1pct_traffic_share: float
    top_10pct_traffic_share: float


def profile_query_log(
    query_log: QueryLog,
    stream_length: int = 50_000,
    seed: int = 0,
) -> LogProfile:
    """Characterize a query log via a sampled traffic stream."""
    if stream_length <= 0:
        raise ValueError("stream_length must be positive")
    rng = np.random.default_rng(seed)
    stream = query_log.sample_stream(stream_length, rng)
    ids = [query.query_id for query in stream]
    exponent, r_squared = estimate_popularity_exponent(ids)
    top_1pct, top_10pct = traffic_concentration(ids, [0.01, 0.10])

    histogram = query_log.term_count_histogram()
    total = sum(histogram.values())
    mix = {count: occurrences / total for count, occurrences in histogram.items()}
    mean_terms = sum(count * share for count, share in mix.items())

    return LogProfile(
        num_unique_queries=len(query_log),
        mean_terms_per_query=mean_terms,
        term_count_mix=mix,
        estimated_popularity_exponent=exponent,
        popularity_fit_r_squared=r_squared,
        top_1pct_traffic_share=top_1pct,
        top_10pct_traffic_share=top_10pct,
    )


def query_volume_distribution(
    query_log: QueryLog, index: InvertedIndex
) -> np.ndarray:
    """Matched-postings volume of every unique query against ``index``.

    The per-query index footprint — the paper's work proxy — over the
    whole unique-query population.
    """
    parser = QueryParser(index.analyzer)
    volumes = np.empty(len(query_log), dtype=np.int64)
    for query in query_log:
        parsed = parser.parse(query.text)
        volumes[query.query_id] = index.matched_postings_volume(
            list(parsed.terms)
        )
    return volumes
