"""Synthetic vocabulary with Zipfian term frequencies.

Terms are deterministic pseudo-words derived from their rank, so the
same :class:`VocabularyConfig` always yields the same vocabulary and
corpora built on it are reproducible.  Word shapes alternate consonants
and vowels so they read like text, survive the analyzer chain, and do
not collide with the stopword list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.corpus.zipf import ZipfSampler, zipf_weights

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"


@dataclass(frozen=True)
class VocabularyConfig:
    """Shape of the synthetic vocabulary.

    Attributes
    ----------
    size:
        Number of distinct terms.
    exponent:
        Zipf exponent of the term-frequency distribution.  Measured web
        corpora sit close to 1.0; the benchmark's crawl is no exception.
    seed:
        Seed for the word-shape RNG (not the sampling RNG).
    """

    size: int = 50_000
    exponent: float = 1.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"vocabulary size must be positive, got {self.size}")
        if self.exponent < 0:
            raise ValueError(f"exponent must be non-negative, got {self.exponent}")


class Vocabulary:
    """A rank-ordered list of synthetic terms with Zipf weights.

    Rank 0 is the most frequent term.  ``words`` is materialized eagerly
    (a 50k-word vocabulary is ~1 MB) because both the document generator
    and the query generator index into it on every draw.
    """

    def __init__(self, config: VocabularyConfig | None = None):
        self.config = config or VocabularyConfig()
        self._words = _generate_words(self.config.size, self.config.seed)
        self._weights = zipf_weights(self.config.size, self.config.exponent)

    def __len__(self) -> int:
        return self.config.size

    @property
    def words(self) -> List[str]:
        """All words, most frequent first."""
        return self._words

    def word(self, rank: int) -> str:
        """Return the word at 0-based ``rank`` (0 = most frequent)."""
        return self._words[rank]

    def frequency(self, rank: int) -> float:
        """Return the corpus-model probability of the word at ``rank``."""
        return float(self._weights[rank])

    def sampler(self, rng: np.random.Generator) -> ZipfSampler:
        """Create a Zipf sampler over this vocabulary's ranks."""
        return ZipfSampler(self.config.size, self.config.exponent, rng)


def _generate_words(count: int, seed: int) -> List[str]:
    """Generate ``count`` distinct pseudo-words, deterministically.

    Words alternate consonant/vowel starting from a consonant; length
    grows slowly with rank so frequent words are short (as in natural
    language) and all words are unique.
    """
    from repro.text.stopwords import DEFAULT_STOPWORDS

    rng = np.random.default_rng(seed)
    words: List[str] = []
    # Seeding ``seen`` with the stopword list guarantees vocabulary terms
    # survive the analyzer's stopword filter.
    seen = set(DEFAULT_STOPWORDS)
    rank = 0
    while len(words) < count:
        # Frequent words are shorter: length 3..10 growing with log(rank).
        length = 3 + int(np.log1p(rank) / np.log(4))
        length = min(length, 12)
        word = _make_word(rng, length)
        rank += 1
        if word in seen:
            continue
        seen.add(word)
        words.append(word)
    return words


def _make_word(rng: np.random.Generator, length: int) -> str:
    chars = []
    for position in range(length):
        alphabet = _CONSONANTS if position % 2 == 0 else _VOWELS
        chars.append(alphabet[int(rng.integers(len(alphabet)))])
    return "".join(chars)
