"""Synthetic query-log generation.

The benchmark's load driver replays a query log.  Two skews in real
logs matter for the paper's studies and are both reproduced here:

1. **Query popularity is Zipfian** — a few queries account for most of
   the traffic (exponent ≈ 0.85 in published web-log studies).
2. **Query length mix** — most web queries have 1–3 terms; the default
   mix below follows the classic Excite/AltaVista log measurements.

Query *terms* are drawn from the same Zipfian vocabulary as documents,
which preserves the crucial correlation: popular query terms have long
posting lists, so some queries are intrinsically much more expensive
than others.  That per-query cost skew is the origin of the service-time
tail that intra-server partitioning attacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.corpus.vocabulary import Vocabulary
from repro.corpus.zipf import ZipfSampler

#: Query term-count mix from classic web query-log studies.
DEFAULT_TERM_COUNT_MIX: Tuple[Tuple[int, float], ...] = (
    (1, 0.25),
    (2, 0.35),
    (3, 0.22),
    (4, 0.11),
    (5, 0.05),
    (6, 0.02),
)


@dataclass(frozen=True)
class Query:
    """A single search query.

    Attributes
    ----------
    query_id:
        Dense id within the log's unique-query set.
    text:
        Raw query string, as a user would type it.
    """

    query_id: int
    text: str

    @property
    def raw_terms(self) -> List[str]:
        """Whitespace-split raw terms (pre-analysis)."""
        return self.text.split()


@dataclass(frozen=True)
class QueryLogConfig:
    """Parameters of the synthetic query log.

    Attributes
    ----------
    num_unique_queries:
        Size of the unique-query set.
    popularity_exponent:
        Zipf exponent of query popularity (traffic share of each unique
        query).  Web logs measure ≈ 0.85.
    term_exponent:
        Zipf exponent used for drawing query terms from the vocabulary.
        Slightly below the document exponent: users query mid-frequency
        terms a bit more than raw corpus frequency predicts.
    term_count_mix:
        ``(term_count, probability)`` pairs; probabilities must sum to 1.
    seed:
        RNG seed for generating the unique-query set.
    """

    num_unique_queries: int = 2_000
    popularity_exponent: float = 0.85
    term_exponent: float = 0.9
    term_count_mix: Tuple[Tuple[int, float], ...] = DEFAULT_TERM_COUNT_MIX
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.num_unique_queries <= 0:
            raise ValueError("num_unique_queries must be positive")
        total = sum(probability for _, probability in self.term_count_mix)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"term_count_mix must sum to 1, sums to {total}")
        if any(count <= 0 for count, _ in self.term_count_mix):
            raise ValueError("term counts must be positive")


@dataclass
class QueryLog:
    """A unique-query set plus a Zipfian popularity model over it."""

    queries: List[Query]
    popularity_exponent: float = 0.85
    _weights: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.queries:
            raise ValueError("query log must contain at least one query")
        from repro.corpus.zipf import zipf_weights

        self._weights = zipf_weights(len(self.queries), self.popularity_exponent)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    def __getitem__(self, index: int) -> Query:
        return self.queries[index]

    def popularity(self, query_id: int) -> float:
        """Traffic share of the query at ``query_id`` (rank order)."""
        return float(self._weights[query_id])

    def sample_stream(self, count: int, rng: np.random.Generator) -> List[Query]:
        """Draw ``count`` queries according to the popularity model."""
        if count < 0:
            raise ValueError("count must be non-negative")
        sampler = ZipfSampler(len(self.queries), self.popularity_exponent, rng)
        return [self.queries[rank] for rank in sampler.sample_many(count)]

    def term_count_histogram(self) -> Dict[int, int]:
        """Histogram of term counts over the unique-query set."""
        histogram: Dict[int, int] = {}
        for query in self.queries:
            count = len(query.raw_terms)
            histogram[count] = histogram.get(count, 0) + 1
        return histogram


class QueryLogGenerator:
    """Builds a deterministic :class:`QueryLog` over a vocabulary."""

    def __init__(self, vocabulary: Vocabulary, config: QueryLogConfig | None = None):
        self.vocabulary = vocabulary
        self.config = config or QueryLogConfig()

    def generate(self) -> QueryLog:
        """Generate the unique-query set described by the config."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        term_sampler = ZipfSampler(
            len(self.vocabulary), config.term_exponent, rng
        )
        counts, probabilities = _split_mix(config.term_count_mix)

        queries: List[Query] = []
        seen = set()
        while len(queries) < config.num_unique_queries:
            # Draw the term count once, then retry term sampling until the
            # text is unique.  Re-drawing the count on collisions would
            # bias the mix against short queries (they collide far more
            # often under a Zipfian term distribution).
            term_count = int(rng.choice(counts, p=probabilities))
            text = None
            for _ in range(500):
                ranks = _distinct_ranks(term_sampler, term_count)
                candidate = " ".join(self.vocabulary.word(rank) for rank in ranks)
                if candidate not in seen:
                    text = candidate
                    break
            if text is None:
                # The term-count stratum is saturated (tiny vocabulary);
                # fall back to re-drawing the count so generation always
                # terminates.
                continue
            seen.add(text)
            queries.append(Query(query_id=len(queries), text=text))
        return QueryLog(
            queries=queries, popularity_exponent=config.popularity_exponent
        )


def _split_mix(
    mix: Sequence[Tuple[int, float]],
) -> Tuple[np.ndarray, np.ndarray]:
    counts = np.array([count for count, _ in mix], dtype=np.int64)
    probabilities = np.array([probability for _, probability in mix])
    return counts, probabilities / probabilities.sum()


def _distinct_ranks(sampler: ZipfSampler, count: int) -> List[int]:
    """Draw ``count`` distinct vocabulary ranks (rejection sampling)."""
    ranks: List[int] = []
    seen = set()
    # With a 50k vocabulary, collisions are rare outside the extreme
    # head; cap attempts to keep this provably terminating.
    attempts = 0
    while len(ranks) < count and attempts < count * 50:
        rank = sampler.sample()
        attempts += 1
        if rank not in seen:
            seen.add(rank)
            ranks.append(rank)
    while len(ranks) < count:
        # Fallback: fill with the first unused ranks.
        for rank in range(sampler.size):
            if rank not in seen:
                seen.add(rank)
                ranks.append(rank)
                break
    return ranks
