"""Zipf-distributed sampling over a finite rank space.

Web-scale text follows Zipf's law: the r-th most frequent term has
probability proportional to ``1 / r**exponent``.  The posting-list
length skew this induces is the root cause of the heavy service-time
tail the paper characterizes, so the sampler here underpins both the
document generator and the query-log generator.
"""

from __future__ import annotations

import numpy as np


def zipf_weights(size: int, exponent: float) -> np.ndarray:
    """Return normalized Zipf probabilities for ranks ``1..size``.

    Parameters
    ----------
    size:
        Number of ranks (must be positive).
    exponent:
        Zipf exponent ``s >= 0``; 0 gives a uniform distribution.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


class ZipfSampler:
    """Draws 0-based ranks from a bounded Zipf distribution.

    Sampling uses inverse-CDF lookup over a precomputed cumulative table,
    so each draw is O(log size) and the whole sampler is deterministic
    given its RNG.
    """

    def __init__(self, size: int, exponent: float, rng: np.random.Generator):
        self._size = size
        self._exponent = exponent
        self._rng = rng
        self._cdf = np.cumsum(zipf_weights(size, exponent))
        # Guard against floating-point drift: the last entry must be
        # exactly 1.0 so searchsorted can never return ``size``.
        self._cdf[-1] = 1.0

    @property
    def size(self) -> int:
        """Number of ranks in the distribution."""
        return self._size

    @property
    def exponent(self) -> float:
        """The Zipf exponent ``s``."""
        return self._exponent

    def sample(self) -> int:
        """Draw a single 0-based rank."""
        return int(np.searchsorted(self._cdf, self._rng.random(), side="left"))

    def sample_many(self, count: int) -> np.ndarray:
        """Draw ``count`` 0-based ranks as an int64 array."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        draws = self._rng.random(count)
        return np.searchsorted(self._cdf, draws, side="left").astype(np.int64)

    def probability(self, rank: int) -> float:
        """Return the probability of the 0-based ``rank``."""
        if not 0 <= rank < self._size:
            raise IndexError(f"rank {rank} out of range [0, {self._size})")
        if rank == 0:
            return float(self._cdf[0])
        return float(self._cdf[rank] - self._cdf[rank - 1])
