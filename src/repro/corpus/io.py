"""Persistence for corpora and query logs.

Lets an experiment pin its exact inputs: document collections are
stored as JSON-lines (one page per line), query logs as a JSON header
(popularity model) plus JSON-lines of unique queries.  Round-tripping
is exact, so saved artifacts reproduce byte-identical indexes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.corpus.documents import Document, DocumentCollection
from repro.corpus.querylog import Query, QueryLog

PathLike = Union[str, Path]


def save_collection(collection: DocumentCollection, path: PathLike) -> int:
    """Write ``collection`` as JSON-lines; returns documents written."""
    with open(path, "w", encoding="utf-8") as handle:
        for document in collection:
            handle.write(
                json.dumps(
                    {
                        "doc_id": document.doc_id,
                        "url": document.url,
                        "title": document.title,
                        "body": document.body,
                    },
                    ensure_ascii=False,
                )
                + "\n"
            )
    return len(collection)


def load_collection(path: PathLike) -> DocumentCollection:
    """Read a collection previously written by :func:`save_collection`."""
    collection = DocumentCollection()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            try:
                collection.add(
                    Document(
                        doc_id=record["doc_id"],
                        url=record["url"],
                        title=record["title"],
                        body=record["body"],
                    )
                )
            except KeyError as error:
                raise ValueError(
                    f"{path}:{line_number}: missing field {error}"
                ) from None
    return collection


def save_query_log(query_log: QueryLog, path: PathLike) -> int:
    """Write ``query_log`` (header line + one query per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {
                    "format": "repro-querylog",
                    "version": 1,
                    "popularity_exponent": query_log.popularity_exponent,
                    "num_queries": len(query_log),
                }
            )
            + "\n"
        )
        for query in query_log:
            handle.write(
                json.dumps(
                    {"query_id": query.query_id, "text": query.text},
                    ensure_ascii=False,
                )
                + "\n"
            )
    return len(query_log)


def load_query_log(path: PathLike) -> QueryLog:
    """Read a query log previously written by :func:`save_query_log`."""
    with open(path, "r", encoding="utf-8") as handle:
        header_line = handle.readline()
        header = json.loads(header_line)
        if header.get("format") != "repro-querylog":
            raise ValueError(f"{path}: not a repro query log")
        if header.get("version") != 1:
            raise ValueError(
                f"{path}: unsupported query log version {header.get('version')}"
            )
        queries = []
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            queries.append(
                Query(query_id=record["query_id"], text=record["text"])
            )
    if len(queries) != header["num_queries"]:
        raise ValueError(
            f"{path}: header promises {header['num_queries']} queries, "
            f"found {len(queries)}"
        )
    return QueryLog(
        queries=queries,
        popularity_exponent=header["popularity_exponent"],
    )
