"""Low-overhead per-query span tracing.

A *span* is one timed operation (parse, shard search, merge, ...) with
a name, monotonic start/end timestamps, attributes, and children.  A
*trace* is the span tree of one query; the root span has no parent.

Two ways to produce spans:

- ``with tracer.span("parse"):`` — a live context manager that reads
  the tracer's clock on enter/exit and nests under the thread's
  currently-active span.
- ``tracer.record_span("shard", start=s, end=e, parent=p)`` — post-hoc
  registration of an operation whose timestamps were measured
  elsewhere (worker threads, the discrete-event simulator's clock).
  This keeps span timestamps *identical* to the direct measurements
  the engine already takes, so :class:`ComponentTimings` derived from
  a trace matches the legacy timing values exactly.

The tracer's clock is injectable: the native engine uses
``time.perf_counter`` while the simulator records spans with simulated
timestamps — both emit the same schema (see :mod:`repro.obs.export`).

Tracing is **off by default**.  A disabled tracer's :meth:`Tracer.span`
returns a shared no-op context manager and :meth:`Tracer.record_span`
returns ``None`` after a single branch, so instrumented code can stay
unconditional without measurable per-query overhead.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "trace_span",
]


@dataclass
class Span:
    """One timed operation within a query's trace tree."""

    name: str
    span_id: int
    trace_id: int
    parent_id: Optional[int]
    start: float
    end: float = float("nan")
    attributes: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Seconds from start to end (monotonic or simulated clock)."""
        return self.end - self.start

    def set(self, key: str, value: object) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    def iter_tree(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_tree()

    def find(self, name: str) -> Optional["Span"]:
        """First direct child with ``name`` (None if absent)."""
        for child in self.children:
            if child.name == name:
                return child
        return None


class _NullSpan:
    """Shared no-op stand-in returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, key: str, value: object) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: Sentinel for "inherit the thread's currently-active span".
_INHERIT = object()


class _LiveSpan:
    """Context manager backing :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._span.end = self._tracer._clock()
        self._tracer._pop(self._span)


class Tracer:
    """Produces and collects per-query span trees.

    Parameters
    ----------
    enabled:
        When False every tracing entry point is a cheap no-op.
    clock:
        Timestamp source.  Defaults to ``time.perf_counter``; the
        simulator substitutes its simulated clock so both runtimes emit
        comparable traces.
    max_traces:
        Completed traces retained (oldest dropped first) so long
        replays cannot grow memory without bound.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        max_traces: int = 100_000,
    ):
        if max_traces <= 0:
            raise ValueError("max_traces must be positive")
        self.enabled = enabled
        self._clock = clock
        self._max_traces = max_traces
        self._lock = threading.Lock()
        self._next_span_id = 0
        self._next_trace_id = 0
        self._traces: List[Span] = []
        self._active = threading.local()

    # ------------------------------------------------------------------
    # span production

    def span(self, name: str, **attributes: object):
        """Open a live span: times itself, nests under the active span."""
        if not self.enabled:
            return _NULL_SPAN
        parent = self.current_span
        span = self._make_span(name, self._clock(), parent, attributes)
        return _LiveSpan(self, span)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        parent: object = _INHERIT,
        **attributes: object,
    ) -> Optional[Span]:
        """Register an already-measured operation as a span.

        ``parent`` defaults to the thread's currently-active span (so a
        recorded subtree nests under an enclosing live span); pass
        ``parent=None`` to force a new root trace, or an explicit
        :class:`Span` to attach elsewhere.  Roots are appended to
        :attr:`traces` immediately — record parents before children.
        """
        if not self.enabled:
            return None
        if parent is _INHERIT:
            parent = self.current_span
        span = self._make_span(name, start, parent, attributes)
        span.end = end
        return span

    def _make_span(
        self,
        name: str,
        start: float,
        parent: Optional[Span],
        attributes: Dict[str, object],
    ) -> Span:
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
            if parent is None:
                trace_id = self._next_trace_id
                self._next_trace_id += 1
            else:
                trace_id = parent.trace_id
            span = Span(
                name=name,
                span_id=span_id,
                trace_id=trace_id,
                parent_id=None if parent is None else parent.span_id,
                start=start,
                attributes=dict(attributes),
            )
            if parent is None:
                self._traces.append(span)
                if len(self._traces) > self._max_traces:
                    del self._traces[0]
            else:
                parent.children.append(span)
        return span

    # ------------------------------------------------------------------
    # active-span bookkeeping (per thread)

    @property
    def current_span(self) -> Optional[Span]:
        """The innermost live span on this thread (None outside any)."""
        stack = getattr(self._active, "stack", None)
        if not stack:
            return None
        return stack[-1]

    def _push(self, span: Span) -> None:
        stack = getattr(self._active, "stack", None)
        if stack is None:
            stack = []
            self._active.stack = stack
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._active, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()

    # ------------------------------------------------------------------
    # collection

    @property
    def traces(self) -> List[Span]:
        """Completed root spans, oldest first (shared list — copy on drain)."""
        return self._traces

    def drain(self) -> List[Span]:
        """Return all collected traces and clear the buffer."""
        with self._lock:
            drained = list(self._traces)
            self._traces.clear()
        return drained


#: A permanently-disabled tracer for components whose caller passed none.
NULL_TRACER = Tracer(enabled=False)

_GLOBAL_TRACER = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-global tracer (disabled unless :func:`set_tracer` ran)."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` globally (None restores the disabled default)."""
    global _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer if tracer is not None else NULL_TRACER
    return _GLOBAL_TRACER


def trace_span(name: str, **attributes: object):
    """Open a span on the global tracer (no-op while tracing is off)."""
    return _GLOBAL_TRACER.span(name, **attributes)
