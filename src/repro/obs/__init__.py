"""Observability: per-query span tracing and a unified metrics registry.

The paper's contribution is a *characterization* — per-component
service-time breakdowns and tail attribution — so the serving path must
be measurable end to end.  This package provides the three pieces:

- :mod:`tracing` — a low-overhead span tracer.  ``trace_span(name)``
  opens a nested span with monotonic start/end timestamps, parent ids,
  and arbitrary attributes (shard id, postings scanned, ...).  Tracing
  is **off by default**; the disabled path costs one branch.
- :mod:`registry` — a :class:`MetricsRegistry` of counters, gauges, and
  fixed-bucket histograms that serving-path components register into
  (query cache hit/miss/eviction, postings traversed, heap operations).
- :mod:`export` — per-query trace trees to JSON-lines and a text
  renderer for the ``repro trace`` CLI command.

Both the native engine and the discrete-event simulator emit the same
span schema, so one set of analysis tooling reads either.
"""

from repro.obs.export import (
    TRACE_SCHEMA_FIELDS,
    export_trace_jsonl,
    format_span_tree,
    span_to_dict,
    trace_to_dicts,
)
from repro.obs.registry import (
    Counter,
    FixedBucketHistogram,
    Gauge,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.tracing import (
    NULL_TRACER,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    trace_span,
)

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "trace_span",
    "Counter",
    "Gauge",
    "FixedBucketHistogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "TRACE_SCHEMA_FIELDS",
    "span_to_dict",
    "trace_to_dicts",
    "export_trace_jsonl",
    "format_span_tree",
]
