"""Trace exporters: JSON-lines files and a terminal span-tree renderer.

One trace (a root span and its descendants) flattens to one JSON object
per span, depth-first pre-order, with a fixed field set
(:data:`TRACE_SCHEMA_FIELDS`).  Native-engine and simulator traces use
the same schema — only the clock domain of ``start``/``end`` differs —
so downstream analysis reads either interchangeably.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.obs.tracing import Span

PathLike = Union[str, Path]

__all__ = [
    "TRACE_SCHEMA_FIELDS",
    "span_to_dict",
    "trace_to_dicts",
    "export_trace_jsonl",
    "format_span_tree",
]

#: Every exported span object carries exactly these keys, in this order.
TRACE_SCHEMA_FIELDS = (
    "trace_id",
    "span_id",
    "parent_id",
    "name",
    "start",
    "end",
    "duration_seconds",
    "attributes",
)


def span_to_dict(span: Span) -> Dict[str, object]:
    """One span as a schema-stable, JSON-serializable mapping."""
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "duration_seconds": span.duration,
        "attributes": dict(span.attributes),
    }


def trace_to_dicts(root: Span) -> List[Dict[str, object]]:
    """Flatten a trace to span dicts, depth-first pre-order."""
    return [span_to_dict(span) for span in root.iter_tree()]


def export_trace_jsonl(traces: Iterable[Span], path: PathLike) -> int:
    """Write traces as JSON-lines (one span per line); returns lines written.

    Keys are emitted in :data:`TRACE_SCHEMA_FIELDS` order so the output
    is byte-stable for identical inputs (the golden-schema test relies
    on this).
    """
    lines = 0
    with open(path, "w", encoding="utf-8") as handle:
        for root in traces:
            for record in trace_to_dicts(root):
                handle.write(json.dumps(record, sort_keys=False))
                handle.write("\n")
                lines += 1
    return lines


def format_span_tree(root: Span, unit_scale: float = 1000.0) -> str:
    """Render a trace as an indented tree with durations.

    ``unit_scale`` converts span durations for display (default
    seconds → milliseconds).  Attributes print inline after the name.
    """
    lines: List[str] = []
    _format_into(root, lines, prefix="", is_last=True, is_root=True,
                 unit_scale=unit_scale)
    return "\n".join(lines)


def _format_into(
    span: Span,
    lines: List[str],
    prefix: str,
    is_last: bool,
    is_root: bool,
    unit_scale: float,
) -> None:
    attributes = " ".join(
        f"{key}={value}" for key, value in sorted(span.attributes.items())
    )
    label = span.name if not attributes else f"{span.name} [{attributes}]"
    duration = f"{span.duration * unit_scale:9.3f} ms"
    if is_root:
        lines.append(f"{label}  {duration}")
        child_prefix = ""
    else:
        connector = "└─ " if is_last else "├─ "
        lines.append(f"{prefix}{connector}{label}  {duration}")
        child_prefix = prefix + ("   " if is_last else "│  ")
    for index, child in enumerate(span.children):
        _format_into(
            child,
            lines,
            prefix=child_prefix,
            is_last=index == len(span.children) - 1,
            is_root=False,
            unit_scale=unit_scale,
        )
