"""A unified metrics registry: counters, gauges, fixed-bucket histograms.

Components on the serving path register named metrics once and update
them per event; a run-level snapshot aggregates everything for export
(see :func:`repro.metrics.export.export_registry_csv`).  Metric names
are dotted paths (``cache.hits``, ``daat.postings_traversed``) so the
snapshot reads as a namespace.

Histograms use *fixed* bucket edges chosen at registration — unlike
:class:`repro.metrics.histogram.Histogram`, which fits log-spaced edges
to a completed sample set, a registry histogram must accept updates
online.  :meth:`FixedBucketHistogram.log_buckets` builds the same
log-spaced edge layout, and :meth:`FixedBucketHistogram.to_histogram`
converts a snapshot back into the existing analysis type so CDF/density
tooling is reused unchanged.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.metrics.histogram import Histogram

__all__ = [
    "Counter",
    "Gauge",
    "FixedBucketHistogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]


class Counter:
    """A monotonically-increasing event count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def add(self, amount: int = 1) -> None:
        """Increment by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        with self._lock:
            self._value += amount


class Gauge:
    """A last-value-wins instantaneous measurement."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta`` (may be negative)."""
        with self._lock:
            self._value += float(delta)


class FixedBucketHistogram:
    """An online histogram over fixed, monotonic bucket edges.

    ``bin_edges`` has ``num_buckets + 1`` boundaries; a sample lands in
    bucket ``i`` when ``edges[i] <= sample < edges[i+1]``.  Samples
    below the first edge count into the first bucket and samples at or
    above the last edge into the last — totals are never silently lost.
    """

    __slots__ = ("name", "bin_edges", "_counts", "_sum", "_lock")

    def __init__(self, name: str, bin_edges: Sequence[float]):
        edges = [float(edge) for edge in bin_edges]
        if len(edges) < 2:
            raise ValueError("need at least two bucket edges")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.bin_edges = tuple(edges)
        self._counts = [0] * (len(edges) - 1)
        self._sum = 0.0
        self._lock = threading.Lock()

    @staticmethod
    def log_buckets(
        low: float, high: float, num_buckets: int = 40
    ) -> Tuple[float, ...]:
        """Log-spaced edges matching the analysis histogram's layout."""
        if low <= 0 or high <= low:
            raise ValueError("need 0 < low < high for log-spaced buckets")
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        return tuple(
            float(edge)
            for edge in np.logspace(np.log10(low), np.log10(high), num_buckets + 1)
        )

    def observe(self, value: float) -> None:
        """Record one sample."""
        position = bisect.bisect_right(self.bin_edges, float(value)) - 1
        index = min(max(position, 0), len(self._counts) - 1)
        with self._lock:
            self._counts[index] += 1
            self._sum += float(value)

    @property
    def counts(self) -> List[int]:
        return list(self._counts)

    @property
    def total(self) -> int:
        """Number of samples observed."""
        return sum(self._counts)

    @property
    def sum(self) -> float:
        """Sum of all observed sample values."""
        return self._sum

    def to_histogram(self) -> Histogram:
        """Snapshot as the analysis-layer :class:`Histogram` type."""
        return Histogram(
            bin_edges=np.asarray(self.bin_edges, dtype=np.float64),
            counts=np.asarray(self._counts, dtype=np.int64),
        )


Metric = Union[Counter, Gauge, FixedBucketHistogram]

#: Default bucket layout for second-valued latency histograms: 10 µs – 10 s.
DEFAULT_LATENCY_BUCKETS = FixedBucketHistogram.log_buckets(1e-5, 10.0, 40)


class MetricsRegistry:
    """Named metrics with get-or-create registration.

    Re-registering a name returns the existing metric; registering the
    same name as a different kind raises, so two components cannot
    silently split one metric.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, bin_edges: Optional[Sequence[float]] = None
    ) -> FixedBucketHistogram:
        """Get or create the histogram ``name``.

        ``bin_edges`` defaults to the log-spaced latency layout; it is
        only consulted on first registration.
        """
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, FixedBucketHistogram):
                    raise ValueError(
                        f"metric {name!r} is already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            metric = FixedBucketHistogram(
                name, DEFAULT_LATENCY_BUCKETS if bin_edges is None else bin_edges
            )
            self._metrics[name] = metric
            return metric

    def _get_or_create(self, name: str, kind):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} is already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            metric = kind(name)
            self._metrics[name] = metric
            return metric

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time value of every metric, keyed by name."""
        out: Dict[str, Dict[str, object]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"type": "gauge", "value": metric.value}
            else:
                out[name] = {
                    "type": "histogram",
                    "total": metric.total,
                    "sum": metric.sum,
                    "bin_edges": list(metric.bin_edges),
                    "counts": metric.counts,
                }
        return out

    def as_rows(self) -> List[Tuple[str, str, str, object]]:
        """Flatten to ``(metric, type, field, value)`` rows for CSV export.

        Histogram buckets become Prometheus-style cumulative rows
        (``le_<edge>``), plus ``count`` and ``sum``.
        """
        rows: List[Tuple[str, str, str, object]] = []
        for name, entry in self.snapshot().items():
            kind = str(entry["type"])
            if kind in ("counter", "gauge"):
                rows.append((name, kind, "value", entry["value"]))
                continue
            rows.append((name, kind, "count", entry["total"]))
            rows.append((name, kind, "sum", entry["sum"]))
            cumulative = 0
            edges = list(entry["bin_edges"])  # type: ignore[arg-type]
            counts = list(entry["counts"])  # type: ignore[arg-type]
            for upper, count in zip(edges[1:], counts):
                cumulative += int(count)
                rows.append((name, kind, f"le_{upper:.9g}", cumulative))
        return rows

    def merge_counter_deltas(self, deltas: Dict[str, int]) -> None:
        """Fold another registry's counter increments into this one.

        The process execution backend keeps a private registry per
        worker (counters cannot be shared across processes) and ships
        the increments accumulated since its previous reply back with
        each batch of results; merging them here makes ``search.*`` /
        ``wand.*`` / ``store.*`` totals backend-invariant.
        """
        for name, delta in deltas.items():
            self.counter(name).add(int(delta))

    def reset(self) -> None:
        """Drop every registered metric (names become available again)."""
        with self._lock:
            self._metrics.clear()


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry (always present, initially empty)."""
    return _GLOBAL_REGISTRY


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` globally (None installs a fresh empty one)."""
    global _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry if registry is not None else MetricsRegistry()
    return _GLOBAL_REGISTRY
