"""FCFS multi-core processing resource.

``CoreBank`` models a server's cores fed by one shared FCFS run queue
— the structure of the benchmark's index-serving thread pool, where
partition tasks are enqueued and run to completion on the next free
hardware context.

Because tasks are non-preemptive and dispatched in arrival order, the
earliest-free-core greedy assignment computed *at submission time* is
exactly FCFS — no per-core events are needed, which keeps the simulator
fast.  The one requirement is that submissions happen in non-decreasing
simulation time, which the event-ordered DES guarantees; the class
asserts it anyway.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.sim.hiccups import HiccupSchedule


class CoreBank:
    """``num_cores`` identical cores with a shared FCFS queue.

    Parameters
    ----------
    num_cores:
        Hardware contexts available.
    speed:
        Core speed relative to the reference core that service demands
        are expressed in: a demand of ``d`` reference-seconds executes
        in ``d / speed`` wall-clock seconds.
    hiccups:
        Optional stop-the-world pause schedule (JVM GC model).  Pauses
        freeze every core: running tasks are stretched across them and
        queued tasks cannot start inside one.
    """

    def __init__(
        self,
        num_cores: int,
        speed: float = 1.0,
        hiccups: Optional["HiccupSchedule"] = None,
    ):
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        self.num_cores = num_cores
        self.speed = speed
        self.hiccups = hiccups
        self._free_at: List[float] = [0.0] * num_cores
        heapq.heapify(self._free_at)
        self._last_submission = 0.0
        self._busy_time = 0.0

    def submit(self, now: float, demand: float) -> Tuple[float, float]:
        """Enqueue a task of ``demand`` reference-seconds at time ``now``.

        Returns ``(start_time, completion_time)``.
        """
        if demand < 0:
            raise ValueError(f"demand must be non-negative, got {demand}")
        if now < self._last_submission:
            raise ValueError(
                "submissions must be in non-decreasing time order: "
                f"{now} after {self._last_submission}"
            )
        self._last_submission = now
        earliest_free = heapq.heappop(self._free_at)
        start = max(now, earliest_free)
        duration = demand / self.speed
        if self.hiccups is not None:
            start, end = self.hiccups.execute(start, duration)
        else:
            end = start + duration
        heapq.heappush(self._free_at, end)
        self._busy_time += duration
        return start, end

    def utilization(self, horizon: float) -> float:
        """Busy fraction of total core capacity over ``[0, horizon]``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return self._busy_time / (self.num_cores * horizon)

    @property
    def busy_time(self) -> float:
        """Total core-seconds of work executed so far."""
        return self._busy_time

    def next_free_time(self) -> float:
        """Earliest time any core becomes free."""
        return self._free_at[0]
