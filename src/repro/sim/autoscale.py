"""DES replica autoscaler: a control loop over the simulated cluster.

The cluster is provisioned in *rows* — one row is a full replica of
every shard — and a periodic control loop adds or retires rows against
the broker while a (typically diurnal + flash-crowd) trace plays.  The
mechanics mirror real fleets:

- a launched row pays for itself immediately but only becomes
  dispatchable after ``warmup_s`` (index load, cache warm-up);
- scale-down is damped by a cooldown after any scale-up and by a
  stability requirement (the policy must ask for fewer rows several
  intervals in a row) — classic hysteresis against flapping;
- retired rows stop receiving new queries but drain their in-flight
  work; they stop costing replica-hours at the retire decision.

Two families of :class:`ScalingPolicy` are provided.
:class:`ReactivePolicy` is utilization target-tracking — the classic
"scale when busy" rule, which inevitably *lags* a flash crowd by the
warm-up time.  :class:`ModelPolicy` is model-driven: it extrapolates
the observed arrival rate one warm-up ahead and asks a
:class:`~repro.capacity.model.CapacityModel` for the replica count
whose *predicted p99* meets the SLO at that future rate — capacity
arrives before the traffic does.  :class:`StaticPolicy` pins the count
(the peak-provisioning baseline the fig. 27 headline compares against).

An optional :class:`~repro.resilience.admission.OverloadPolicy` puts
the PR 3 admission controller in front of the broker so transients that
outrun even the model policy degrade by shedding, not by collapse.

Everything observable is emitted through :mod:`repro.obs`:
``autoscale.scale_up_events`` / ``autoscale.scale_down_events`` /
``autoscale.replicas_launched`` / ``autoscale.replicas_retired`` /
``autoscale.sheds`` counters and ``autoscale.provisioned_replicas`` /
``autoscale.active_replicas`` / ``autoscale.target_replicas`` gauges.

This module deliberately lives outside :mod:`repro.sim`'s ``__init__``
re-exports: it sits *above* :mod:`repro.cluster` in the layering (the
rest of :mod:`repro.sim` sits below), so eager re-export would cycle.
Import it as :mod:`repro.sim.autoscale`, or via :mod:`repro.api`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.capacity.model import CapacityModel
from repro.cluster.results import QueryRecord
from repro.cluster.server import PartitionModelConfig, SimulatedServer
from repro.metrics.summary import LatencySummary, summarize
from repro.obs.registry import MetricsRegistry
from repro.resilience.admission import (
    SHED_CODEL,
    AdmissionController,
    OverloadPolicy,
)
from repro.servers.spec import ServerSpec
from repro.sim.engine import Simulator
from repro.sim.failures import SHED_REPLICA_CRASH, ReplicaFailureModel
from repro.sim.random import RandomStreams


@dataclass(frozen=True)
class AutoscaleObservation:
    """What the control loop sees at one tick — the policy's only input."""

    now: float
    interval_s: float
    #: Mean arrival rate over the last control interval (queries/s).
    arrival_rate_qps: float
    #: Mean arrival rate over the interval before that (for slopes).
    previous_rate_qps: float
    #: Rows currently dispatchable.
    active_replicas: int
    #: Rows currently paid for (active + still warming).
    provisioned_replicas: int
    #: Busy-core fraction of the active rows over the last interval.
    utilization: float


class ScalingPolicy(Protocol):
    """A scaling policy maps an observation to a desired row count.

    Structural: anything with a ``name`` and ``desired_replicas`` is a
    policy.  The returned count is a *request*; the control loop clamps
    it to ``[min_replicas, max_replicas]`` and applies hysteresis.
    """

    name: str

    def desired_replicas(self, obs: AutoscaleObservation) -> int: ...


@dataclass(frozen=True)
class StaticPolicy:
    """Pin the fleet at a fixed size (the peak-provisioning baseline)."""

    replicas: int
    name: str = "static"

    def __post_init__(self) -> None:
        if self.replicas <= 0:
            raise ValueError("replicas must be positive")

    def desired_replicas(self, obs: AutoscaleObservation) -> int:
        return self.replicas


@dataclass(frozen=True)
class ReactivePolicy:
    """Utilization target-tracking: ``desired = active · util / target``.

    The classic reactive rule.  It only sees utilization *after* load
    has risen, so a flash crowd faster than ``warmup_s`` always catches
    it late — the gap :class:`ModelPolicy` exists to close.
    """

    target_utilization: float = 0.6
    name: str = "reactive"

    def __post_init__(self) -> None:
        if not 0.0 < self.target_utilization < 1.0:
            raise ValueError("target_utilization must be in (0, 1)")

    def desired_replicas(self, obs: AutoscaleObservation) -> int:
        if obs.utilization <= 0.0:
            return 1
        raw = obs.active_replicas * obs.utilization / self.target_utilization
        return max(1, math.ceil(raw - 1e-9))


@dataclass(frozen=True)
class ModelPolicy:
    """Model-driven predict-ahead provisioning.

    Extrapolates the observed arrival rate ``lookahead_s`` into the
    future (rate + positive slope; capacity launched *now* is only
    dispatchable after the warm-up, so the policy must provision for
    the rate *then*) and asks the capacity model for the smallest
    replica count whose predicted p99 meets the SLO at that rate,
    padded by ``headroom`` for the stochastic excursion around the
    envelope.
    """

    model: CapacityModel
    p99_slo_s: float
    shards: int = 1
    #: How far ahead to extrapolate; pick warm-up + one interval.
    lookahead_s: float = 180.0
    headroom: float = 1.15
    max_replicas: int = 256
    name: str = "model"

    def __post_init__(self) -> None:
        if self.p99_slo_s <= 0:
            raise ValueError("p99_slo_s must be positive")
        if self.lookahead_s < 0:
            raise ValueError("lookahead_s must be non-negative")
        if self.headroom < 1.0:
            raise ValueError("headroom must be >= 1")

    def desired_replicas(self, obs: AutoscaleObservation) -> int:
        slope = (
            (obs.arrival_rate_qps - obs.previous_rate_qps) / obs.interval_s
            if obs.interval_s > 0
            else 0.0
        )
        predicted = obs.arrival_rate_qps + max(0.0, slope) * self.lookahead_s
        predicted *= self.headroom
        if predicted <= 0.0:
            return 1
        return self.model.replicas_for_slo(
            predicted,
            self.p99_slo_s,
            shards=self.shards,
            max_replicas=self.max_replicas,
        )


@dataclass(frozen=True)
class AutoscaleConfig:
    """Everything fixed about the autoscaled cluster (not the policy)."""

    spec: ServerSpec
    partitioning: PartitionModelConfig = field(
        default_factory=PartitionModelConfig
    )
    shards: int = 1
    initial_replicas: int = 1
    min_replicas: int = 1
    max_replicas: int = 64
    #: Seconds between launch and dispatchability of a new row.
    warmup_s: float = 120.0
    #: Control-loop period.
    control_interval_s: float = 60.0
    #: No scale-down within this long after any scale-up.
    scale_down_cooldown_s: float = 300.0
    #: Consecutive intervals the policy must ask for fewer rows.
    scale_down_stability: int = 3
    broker_merge_per_server: float = 2e-5
    server_imbalance_concentration: float = 60.0
    #: Optional PR 3 admission control in front of the broker.
    overload: Optional[OverloadPolicy] = None
    #: Optional replica crash/recovery process (:mod:`repro.sim.failures`).
    #: A crashed row fails its in-flight queries (typed
    #: :data:`~repro.sim.failures.SHED_REPLICA_CRASH`, counted as SLO
    #: misses), leaves the dispatchable set, and rejoins through the
    #: ordinary ``warmup_s`` path once repaired.  ``None`` keeps the run
    #: bit-identical to the pre-failure-model behaviour.
    failures: Optional[ReplicaFailureModel] = None

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ValueError("shards must be positive")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if not self.min_replicas <= self.initial_replicas <= self.max_replicas:
            raise ValueError(
                "initial_replicas must lie in [min_replicas, max_replicas]"
            )
        if self.warmup_s < 0:
            raise ValueError("warmup_s must be non-negative")
        if self.control_interval_s <= 0:
            raise ValueError("control_interval_s must be positive")
        if self.scale_down_cooldown_s < 0:
            raise ValueError("scale_down_cooldown_s must be non-negative")
        if self.scale_down_stability < 1:
            raise ValueError("scale_down_stability must be >= 1")


@dataclass
class AutoscaleQueryRecord:
    """Client-side outcome of one query through the autoscaled broker."""

    query_id: int
    client_send: float
    client_receive: float = float("nan")
    shed_reason: Optional[str] = None

    @property
    def served(self) -> bool:
        return self.shed_reason is None

    @property
    def failed(self) -> bool:
        """Dispatched but lost to a replica crash (vs. refused entry)."""
        return self.shed_reason == SHED_REPLICA_CRASH

    @property
    def latency(self) -> float:
        return self.client_receive - self.client_send


@dataclass(frozen=True)
class AutoscaleSample:
    """One control-loop tick of the provisioning timeline."""

    now: float
    desired: int
    provisioned: int
    active: int
    arrival_rate_qps: float
    utilization: float


@dataclass(frozen=True)
class AutoscaleResult:
    """Everything the autoscaled run produced."""

    records: List[AutoscaleQueryRecord]
    timeline: List[AutoscaleSample]
    horizon_s: float
    policy_name: str
    #: (launched_at, retired_at) per row ever provisioned; rows still
    #: provisioned at the end retire at ``horizon_s``.
    row_spans: Tuple[Tuple[float, float], ...]
    scale_up_events: int
    scale_down_events: int
    #: Replica crash / recovery event counts (0 without a fault model).
    replica_crashes: int = 0
    replica_recoveries: int = 0

    @property
    def served_records(self) -> List[AutoscaleQueryRecord]:
        return [r for r in self.records if r.served]

    @property
    def shed_count(self) -> int:
        """Queries not served — admission sheds *and* crash failures."""
        return sum(1 for r in self.records if not r.served)

    @property
    def failed_count(self) -> int:
        """Queries lost in flight to a replica crash (typed subset of
        :attr:`shed_count`)."""
        return sum(1 for r in self.records if r.failed)

    def latencies(self) -> np.ndarray:
        return np.asarray(
            [r.latency for r in self.served_records], dtype=np.float64
        )

    def summary(self) -> LatencySummary:
        return summarize(self.latencies())

    def slo_attainment(self, slo_s: float) -> float:
        """Fraction of *offered* queries answered within ``slo_s``.

        Shed queries count as misses — an autoscaler cannot meet its
        SLO by refusing the traffic it was too small for.
        """
        if not self.records:
            return 1.0
        latencies = self.latencies()
        within = int(np.count_nonzero(latencies <= slo_s))
        return within / len(self.records)

    def replica_hours(self) -> float:
        """Integral of provisioned rows over the run (the cost metric)."""
        return (
            sum(retired - launched for launched, retired in self.row_spans)
            / 3600.0
        )

    def max_provisioned(self) -> int:
        return max(sample.provisioned for sample in self.timeline)


class _Row:
    """One provisioned replica row: a server per shard, plus lifecycle."""

    __slots__ = (
        "row_id",
        "servers",
        "launched_at",
        "ready_at",
        "retired_at",
        "crashed",
        "generation",
        "inflight",
    )

    def __init__(
        self,
        row_id: int,
        servers: List[SimulatedServer],
        launched_at: float,
        ready_at: float,
    ) -> None:
        self.row_id = row_id
        self.servers = servers
        self.launched_at = launched_at
        self.ready_at = ready_at
        self.retired_at: Optional[float] = None
        self.crashed = False
        #: Bumped on every recovery; names the fresh servers' streams.
        self.generation = 0
        #: In-flight query contexts with a shard on this row.  A dict
        #: (not a set) so crash-time iteration follows insertion order —
        #: set order would depend on object ids and break determinism.
        self.inflight: Dict["_InFlightQuery", None] = {}

    def dispatchable(self, now: float) -> bool:
        return (
            self.retired_at is None
            and not self.crashed
            and now >= self.ready_at
        )

    def outstanding(self) -> int:
        return sum(server.outstanding for server in self.servers)


class _InFlightQuery:
    """Book-keeping for one dispatched query's fan-out, so a replica
    crash can fail exactly the queries it was serving."""

    __slots__ = ("record", "handler_ids", "rows")

    def __init__(self, record: AutoscaleQueryRecord) -> None:
        self.record = record
        self.handler_ids: List[int] = []
        self.rows: List[_Row] = []


def run_autoscaled_cluster(
    config: AutoscaleConfig,
    policy: ScalingPolicy,
    arrival_times: np.ndarray,
    demands: np.ndarray,
    horizon_s: Optional[float] = None,
    seed: int = 0,
    metrics: Optional[MetricsRegistry] = None,
) -> AutoscaleResult:
    """Play a realized trace against the cluster under ``policy``.

    ``arrival_times`` / ``demands`` are pre-realized (e.g. from
    :meth:`~repro.workload.diurnal.DiurnalArrivals.realize_trace` and a
    demand model) so every policy compared in a study faces the
    *identical* workload — common random numbers across policies, the
    same contract :mod:`repro.sim.random` gives parameter sweeps.

    Replica-hours accrue from row launch to row retirement (or
    ``horizon_s`` for rows still up at the end); a retired row drains
    its in-flight queries but accepts no new ones.
    """
    arrival_times = np.asarray(arrival_times, dtype=np.float64)
    demands = np.asarray(demands, dtype=np.float64)
    if arrival_times.size != demands.size:
        raise ValueError("arrival_times and demands must align")
    if arrival_times.size == 0:
        raise ValueError("empty trace")
    horizon = (
        float(horizon_s)
        if horizon_s is not None
        else float(arrival_times[-1])
    )
    if horizon <= 0:
        raise ValueError("horizon_s must be positive")

    streams = RandomStreams(seed)
    shard_rng = streams.stream("server-imbalance")
    sim = Simulator()
    records: List[AutoscaleQueryRecord] = []
    completion_handlers: Dict[int, Callable[[QueryRecord], None]] = {}

    def complete_server_record(rec: QueryRecord) -> None:
        # Tolerant pop: a crashed replica's in-flight work has its
        # handlers removed, but the already-scheduled core-bank events
        # still fire on the abandoned server — those completions are
        # stale and must be ignored, not KeyError.
        handler = completion_handlers.pop(id(rec), None)
        if handler is not None:
            handler(rec)

    rows: List[_Row] = []
    rows_created = 0
    controller = (
        AdmissionController(config.overload)
        if config.overload is not None and config.overload.enabled
        else None
    )
    admission_queue: Deque[Tuple[AutoscaleQueryRecord, float, float]] = deque()

    # ``is not None``: an empty MetricsRegistry is falsy (it has __len__).
    counters = {
        name: (
            metrics.counter(f"autoscale.{name}")
            if metrics is not None
            else None
        )
        for name in (
            "scale_up_events",
            "scale_down_events",
            "replicas_launched",
            "replicas_retired",
            "sheds",
        )
    }

    failure_counters = {
        name: (
            metrics.counter(f"failures.{name}")
            if metrics is not None and config.failures is not None
            else None
        )
        for name in (
            "replica_crashes",
            "replica_recoveries",
            "queries_failed",
        )
    }
    failure_state = {"crashes": 0, "recoveries": 0}

    def bump(name: str, value: float = 1) -> None:
        if counters[name] is not None:
            counters[name].add(value)

    def bump_failure(name: str) -> None:
        if failure_counters[name] is not None:
            failure_counters[name].add(1)

    def make_servers(row_id: int, generation: int) -> List[SimulatedServer]:
        # Generation 0 keeps the original stream names so a run without
        # failures stays bit-identical to the pre-failure-model code.
        suffix = f"-g{generation}" if generation else ""
        return [
            SimulatedServer(
                sim,
                config.spec,
                config.partitioning,
                imbalance_rng=streams.stream(
                    f"imbalance-{shard}-{row_id}{suffix}"
                ),
                on_complete=complete_server_record,
                metrics=metrics,
            )
            for shard in range(config.shards)
        ]

    def launch_row(now: float) -> None:
        nonlocal rows_created
        row_id = rows_created
        rows_created += 1
        ready_at = now + (config.warmup_s if now > 0.0 else 0.0)
        row = _Row(
            row_id,
            make_servers(row_id, 0),
            launched_at=now,
            ready_at=ready_at,
        )
        rows.append(row)
        bump("replicas_launched")
        if config.failures is not None:
            schedule_next_crash(
                row, config.failures.windows(row_id, now, streams)
            )

    def provisioned_rows() -> List[_Row]:
        return [row for row in rows if row.retired_at is None]

    def active_rows(now: float) -> List[_Row]:
        return [row for row in rows if row.dispatchable(now)]

    # ------------------------------------------------------------------
    # Replica failure & recovery (repro.sim.failures).

    def schedule_next_crash(row: _Row, windows) -> None:
        for crash_at, repair_s in windows:
            if crash_at >= horizon:
                return
            if crash_at <= sim.now:
                continue  # defensive against ill-ordered trace windows
            sim.schedule(crash_at, crash_row, row, repair_s, windows)
            return

    def crash_row(row: _Row, repair_s: float, windows) -> None:
        if row.retired_at is not None:
            return
        row.crashed = True
        failure_state["crashes"] += 1
        bump_failure("replica_crashes")
        # Fail exactly the queries with a shard in flight on this row.
        # Their other-shard handlers are removed too: a fork-join query
        # missing one shard cannot complete.
        for ctx in list(row.inflight):
            for handler_id in ctx.handler_ids:
                completion_handlers.pop(handler_id, None)
            for other in ctx.rows:
                other.inflight.pop(ctx, None)
            ctx.record.shed_reason = SHED_REPLICA_CRASH
            records.append(ctx.record)
            bump_failure("queries_failed")
            if controller is not None:
                # The slot the lost query held frees now; its occupancy
                # time, not a NaN latency, feeds the AIMD gradient.
                controller.complete(
                    sim.now, sim.now - ctx.record.client_send
                )
        if controller is not None:
            drain_admission_queue()
        sim.schedule_after(repair_s, recover_row, row, windows)

    def recover_row(row: _Row, windows) -> None:
        if row.retired_at is not None:
            return
        # Fresh servers: the crash lost all in-flight and queued work,
        # and the replacement rejoins through the ordinary warm-up.
        row.generation += 1
        row.servers = make_servers(row.row_id, row.generation)
        row.crashed = False
        row.ready_at = sim.now + config.warmup_s
        failure_state["recoveries"] += 1
        bump_failure("replica_recoveries")
        schedule_next_crash(row, windows)

    for _ in range(config.initial_replicas):
        launch_row(0.0)

    # ------------------------------------------------------------------
    # The broker: dispatch, completion, admission.

    def dispatch(record: AutoscaleQueryRecord, demand: float) -> None:
        now = sim.now
        candidates = active_rows(now)
        if not candidates:
            # Every row is warming or retired — with min_replicas >= 1
            # this only happens transiently; treat as a capacity shed.
            record.shed_reason = "no_active_replica"
            records.append(record)
            bump("sheds")
            return
        if config.shards == 1:
            shares = np.ones(1)
        else:
            shares = shard_rng.dirichlet(
                np.full(config.shards, config.server_imbalance_concentration)
            )
        pending = [config.shards]
        completions: List[float] = []
        ctx = (
            _InFlightQuery(record) if config.failures is not None else None
        )

        def on_shard_complete(server_record: QueryRecord) -> None:
            completions.append(server_record.merge_end)
            pending[0] -= 1
            if pending[0] == 0:
                if ctx is not None:
                    for touched in ctx.rows:
                        touched.inflight.pop(ctx, None)
                record.client_receive = (
                    max(completions)
                    + config.broker_merge_per_server * config.shards
                )
                records.append(record)
                if controller is not None:
                    controller.complete(sim.now, record.latency)
                    drain_admission_queue()

        for shard in range(config.shards):
            # Least outstanding wins: the JSQ-like routing the pooled
            # M/G/k approximation in the capacity model assumes.
            row = min(
                candidates,
                key=lambda r: (r.servers[shard].outstanding, r.launched_at),
            )
            server_record = QueryRecord(
                query_id=record.query_id,
                client_send=record.client_send,
                demand=float(demand) * float(shares[shard]),
            )
            completion_handlers[id(server_record)] = on_shard_complete
            if ctx is not None:
                ctx.handler_ids.append(id(server_record))
                if row not in ctx.rows:
                    ctx.rows.append(row)
                row.inflight[ctx] = None
            row.servers[shard].handle_arrival(server_record)

    def drain_admission_queue() -> None:
        while admission_queue and controller.can_admit():
            queued_record, queued_demand, enqueued_at = (
                admission_queue.popleft()
            )
            if controller.dequeue(sim.now, enqueued_at):
                dispatch(queued_record, queued_demand)
            else:
                queued_record.shed_reason = SHED_CODEL
                records.append(queued_record)
                bump("sheds")

    def on_arrival(query_id: int, demand: float) -> None:
        record = AutoscaleQueryRecord(
            query_id=query_id, client_send=sim.now
        )
        if controller is None:
            dispatch(record, demand)
            return
        decision = controller.decide(sim.now)
        if decision == "admit":
            controller.admit(sim.now)
            dispatch(record, demand)
        elif decision == "queue":
            controller.enqueue(sim.now)
            admission_queue.append((record, demand, sim.now))
        else:
            controller.shed(sim.now)
            record.shed_reason = decision
            records.append(record)
            bump("sheds")

    for query_id, (send_time, demand) in enumerate(
        zip(arrival_times, demands)
    ):
        sim.schedule(float(send_time), on_arrival, query_id, float(demand))

    # ------------------------------------------------------------------
    # The control loop.

    timeline: List[AutoscaleSample] = []
    state = {
        "arrivals_seen": 0,
        "previous_rate": 0.0,
        "busy_baseline": {},  # id(server) -> busy_time at last tick
        "last_scale_up": float("-inf"),
        "wants_fewer_streak": 0,
        "scale_ups": 0,
        "scale_downs": 0,
    }

    def measure_utilization(now: float, ticked: List[_Row]) -> float:
        """Busy-core fraction of the given rows since the last tick."""
        baseline = state["busy_baseline"]
        busy_delta = 0.0
        cores = 0
        for row in ticked:
            for server in row.servers:
                busy = server.cores.busy_time
                busy_delta += busy - baseline.get(id(server), 0.0)
                cores += config.spec.num_cores
        # Refresh the baseline for *every* live server so draining or
        # warming rows do not inject stale deltas when they activate.
        baseline.clear()
        for row in rows:
            for server in row.servers:
                baseline[id(server)] = server.cores.busy_time
        if cores == 0:
            return 0.0
        window = min(config.control_interval_s, now) or 1.0
        return busy_delta / (cores * window)

    def control_tick() -> None:
        now = sim.now
        arrived = int(np.searchsorted(arrival_times, now, side="right"))
        rate = (
            (arrived - state["arrivals_seen"]) / config.control_interval_s
        )
        state["arrivals_seen"] = arrived
        active = active_rows(now)
        provisioned = provisioned_rows()
        obs = AutoscaleObservation(
            now=now,
            interval_s=config.control_interval_s,
            arrival_rate_qps=rate,
            previous_rate_qps=state["previous_rate"],
            active_replicas=len(active),
            provisioned_replicas=len(provisioned),
            utilization=measure_utilization(now, active),
        )
        state["previous_rate"] = rate
        desired = policy.desired_replicas(obs)
        desired = min(max(desired, config.min_replicas), config.max_replicas)

        if desired > len(provisioned):
            for _ in range(desired - len(provisioned)):
                launch_row(now)
            state["last_scale_up"] = now
            state["wants_fewer_streak"] = 0
            state["scale_ups"] += 1
            bump("scale_up_events")
        elif desired < len(provisioned):
            state["wants_fewer_streak"] += 1
            cooled = (
                now - state["last_scale_up"] >= config.scale_down_cooldown_s
            )
            if cooled and (
                state["wants_fewer_streak"] >= config.scale_down_stability
            ):
                # Retire the newest rows first: the oldest are the
                # warmest, and a fresh row is the cheapest to abandon.
                to_retire = sorted(
                    provisioned, key=lambda r: -r.launched_at
                )[: len(provisioned) - desired]
                for row in to_retire:
                    row.retired_at = now
                    bump("replicas_retired")
                state["wants_fewer_streak"] = 0
                state["scale_downs"] += 1
                bump("scale_down_events")
        else:
            state["wants_fewer_streak"] = 0

        if metrics is not None:
            metrics.gauge("autoscale.target_replicas").set(desired)
            metrics.gauge("autoscale.provisioned_replicas").set(
                len(provisioned_rows())
            )
            metrics.gauge("autoscale.active_replicas").set(
                len(active_rows(now))
            )
        timeline.append(
            AutoscaleSample(
                now=now,
                desired=desired,
                provisioned=len(provisioned_rows()),
                active=len(active_rows(now)),
                arrival_rate_qps=rate,
                utilization=obs.utilization,
            )
        )
        if now + config.control_interval_s <= horizon:
            sim.schedule_after(config.control_interval_s, control_tick)

    sim.schedule(config.control_interval_s, control_tick)
    sim.run()

    spans = tuple(
        (
            row.launched_at,
            row.retired_at if row.retired_at is not None else horizon,
        )
        for row in rows
    )
    records.sort(key=lambda record: record.client_send)
    return AutoscaleResult(
        records=records,
        timeline=timeline,
        horizon_s=horizon,
        policy_name=policy.name,
        row_spans=spans,
        scale_up_events=state["scale_ups"],
        scale_down_events=state["scale_downs"],
        replica_crashes=failure_state["crashes"],
        replica_recoveries=failure_state["recoveries"],
    )
