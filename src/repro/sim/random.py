"""Reproducible named random streams.

Each stochastic component of a simulation (arrivals, service demands,
imbalance, network) gets its own independent substream derived from one
master seed.  Independent streams keep variance-reduction comparisons
honest: changing the partition count must not perturb the arrival
process.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RandomStreams:
    """A family of independent RNGs spawned from one master seed."""

    def __init__(self, master_seed: int):
        self.master_seed = master_seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the named substream.

        The same ``(master_seed, name)`` pair always yields the same
        sequence, independent of creation order.
        """
        if name not in self._streams:
            # Hash the name into entropy so stream identity does not
            # depend on the order streams are requested in.
            name_entropy = [ord(ch) for ch in name]
            seed_seq = np.random.SeedSequence(
                entropy=self.master_seed, spawn_key=tuple(name_entropy)
            )
            self._streams[name] = np.random.default_rng(seed_seq)
        return self._streams[name]
