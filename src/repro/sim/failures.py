"""Replica failure & recovery processes for the DES cluster.

The capacity and autoscaling layers (PR 8) assume every provisioned
replica row stays up; real fleets lose machines mid-query.  This module
supplies the *fault process* half of a closed failure-recovery loop:
seedable generators of ``(crash_at, repair_s)`` windows that
:func:`repro.sim.autoscale.run_autoscaled_cluster` plays against the
simulated fleet.  When a window opens the row leaves the dispatchable
set and every query with a shard in flight on it fails — typed with
:data:`SHED_REPLICA_CRASH` and counted as an SLO miss — and when the
repair completes the row rejoins through the ordinary warm-up path,
exactly like a freshly launched replica.

Two models are provided.  :class:`MttfMttrFailures` is the classic
renewal process — exponential time-to-failure with mean ``mttf_s`` and
exponential repair with mean ``mttr_s`` — whose steady-state
availability ``MTTF / (MTTF + MTTR)`` is what the availability-aware
capacity planner (:meth:`repro.capacity.model.CapacityModel.
replicas_for_slo` with ``mttf_s``/``mttr_s``) provisions N+k headroom
against.  :class:`TraceFailures` replays explicit per-row windows, for
regression tests and for reproducing a specific incident timeline.

Determinism: each row draws from its own named substream of the run's
:class:`~repro.sim.random.RandomStreams`, so enabling failures never
perturbs the arrival, demand, or imbalance streams — and a run with
``failures=None`` is bit-identical to one predating this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Protocol, Sequence, Tuple, runtime_checkable

from repro.sim.random import RandomStreams

__all__ = [
    "SHED_REPLICA_CRASH",
    "FailureWindow",
    "ReplicaFailureModel",
    "MttfMttrFailures",
    "TraceFailures",
    "steady_state_availability",
]

#: ``shed_reason`` stamped on queries whose serving replica crashed
#: mid-flight.  Distinct from admission sheds: the query *was*
#: dispatched and its work was lost, not refused.
SHED_REPLICA_CRASH = "replica_crash"

#: One failure occurrence: (absolute crash time, repair duration).
FailureWindow = Tuple[float, float]


def steady_state_availability(mttf_s: float, mttr_s: float) -> float:
    """Long-run fraction of time a repairable replica is up.

    The alternating-renewal limit ``MTTF / (MTTF + MTTR)`` — the same
    quantity the availability-aware capacity planner treats as the
    per-replica Bernoulli "up" probability.
    """
    if mttf_s <= 0:
        raise ValueError("mttf_s must be positive")
    if mttr_s < 0:
        raise ValueError("mttr_s must be non-negative")
    return mttf_s / (mttf_s + mttr_s)


@runtime_checkable
class ReplicaFailureModel(Protocol):
    """A source of per-row failure windows.

    Structural: anything with a ``name`` and a ``windows`` generator is
    a model.  ``windows`` yields ``(crash_at, repair_s)`` pairs with
    strictly increasing, non-overlapping crash times (each next crash
    no earlier than the previous repair's completion); the caller stops
    consuming once ``crash_at`` passes its horizon.
    """

    name: str

    def windows(
        self,
        row_id: int,
        launched_at: float,
        streams: RandomStreams,
    ) -> Iterator[FailureWindow]: ...


@dataclass(frozen=True, kw_only=True)
class MttfMttrFailures:
    """Exponential MTTF/MTTR renewal process, one per replica row.

    Time-to-failure ~ Exp(mean ``mttf_s``) measured from launch or from
    the end of the previous repair; repair ~ Exp(mean ``mttr_s``).
    Draws come from the ``replica-failures-{row_id}`` substream so every
    row fails independently yet reproducibly.  ``min_repair_s`` floors
    pathological near-zero repair draws (a real reboot is never free).
    """

    mttf_s: float
    mttr_s: float
    min_repair_s: float = 1.0
    name: str = "mttf-mttr"

    def __post_init__(self) -> None:
        if self.mttf_s <= 0:
            raise ValueError("mttf_s must be positive")
        if self.mttr_s <= 0:
            raise ValueError("mttr_s must be positive")
        if self.min_repair_s < 0:
            raise ValueError("min_repair_s must be non-negative")

    @property
    def availability(self) -> float:
        return steady_state_availability(self.mttf_s, self.mttr_s)

    def windows(
        self,
        row_id: int,
        launched_at: float,
        streams: RandomStreams,
    ) -> Iterator[FailureWindow]:
        rng = streams.stream(f"replica-failures-{row_id}")
        now = float(launched_at)
        while True:
            crash_at = now + float(rng.exponential(self.mttf_s))
            repair_s = max(
                self.min_repair_s, float(rng.exponential(self.mttr_s))
            )
            yield crash_at, repair_s
            now = crash_at + repair_s


@dataclass(frozen=True)
class TraceFailures:
    """Replay explicit failure windows per replica row.

    ``windows_by_row`` maps a row id (creation order: the initial fleet
    is rows ``0..initial_replicas-1``) to its ``(crash_at, repair_s)``
    windows.  Rows absent from the map never fail.  Windows must be
    sorted and non-overlapping; this is validated eagerly so a typo in
    a test fixture fails loudly, not as a silent mis-schedule.
    """

    windows_by_row: Mapping[int, Sequence[FailureWindow]]
    name: str = field(default="trace", compare=False)

    def __post_init__(self) -> None:
        for row_id, windows in self.windows_by_row.items():
            previous_end = float("-inf")
            for crash_at, repair_s in windows:
                if crash_at < 0:
                    raise ValueError(
                        f"row {row_id}: crash_at must be non-negative"
                    )
                if crash_at < previous_end:
                    raise ValueError(
                        f"row {row_id}: failure windows overlap at "
                        f"t={crash_at}"
                    )
                if repair_s <= 0:
                    raise ValueError(
                        f"row {row_id}: repair_s must be positive"
                    )
                previous_end = crash_at + repair_s

    def windows(
        self,
        row_id: int,
        launched_at: float,
        streams: RandomStreams,
    ) -> Iterator[FailureWindow]:
        for crash_at, repair_s in self.windows_by_row.get(row_id, ()):
            if crash_at >= launched_at:
                yield float(crash_at), float(repair_s)
