"""The discrete-event simulator kernel.

A classic event-heap design: callbacks are scheduled at absolute
simulation times and executed in time order.  Ties are broken by
scheduling order (a monotone sequence number), which makes runs
bit-reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class Simulator:
    """Deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, handle_arrival, query)
        sim.run()
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._sequence = 0
        self.now = 0.0
        self._events_processed = 0

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    def schedule(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` at absolute ``time``.

        Scheduling into the past is a logic error and raises.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time}: clock is already at {self.now}"
            )
        heapq.heappush(self._heap, (time, self._sequence, callback, args))
        self._sequence += 1

    def schedule_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.schedule(self.now + delay, callback, *args)

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the heap is empty (or past ``until``).

        With ``until`` set, events at times strictly greater than it are
        left queued and the clock advances to exactly ``until``.
        """
        while self._heap:
            time, _, callback, args = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = time
            self._events_processed += 1
            callback(*args)
        if until is not None and until > self.now:
            self.now = until

    def step(self) -> bool:
        """Process exactly one event; returns False when none remain."""
        if not self._heap:
            return False
        time, _, callback, args = heapq.heappop(self._heap)
        self.now = time
        self._events_processed += 1
        callback(*args)
        return True
