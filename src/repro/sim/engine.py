"""The discrete-event simulator kernel.

A classic event-heap design: callbacks are scheduled at absolute
simulation times and executed in time order.  Ties are broken by
scheduling order (a monotone sequence number), which makes runs
bit-reproducible.

:meth:`Simulator.schedule` returns an :class:`EventHandle` so a
scheduled event can be cancelled before it fires — the mechanism the
tail-tolerance layer uses to retire a pending hedge/deadline check the
moment the answer it was guarding arrives.  Cancelled events are
skipped (never executed, never counted) when they reach the head of
the heap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class EventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the event from executing (idempotent).

        Cancelling an event that already ran is a harmless no-op.
        """
        self._cancelled = True


class Simulator:
    """Deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        handle = sim.schedule(1.5, handle_arrival, query)
        handle.cancel()  # optional: retire the event before it fires
        sim.run()
    """

    def __init__(self) -> None:
        self._heap: List[
            Tuple[float, int, EventHandle, Callable[..., None], tuple]
        ] = []
        self._sequence = 0
        self.now = 0.0
        self._events_processed = 0

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (may include cancelled ones)."""
        return len(self._heap)

    def schedule(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute ``time``.

        Returns a handle whose :meth:`EventHandle.cancel` retires the
        event.  Scheduling into the past is a logic error and raises.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time}: clock is already at {self.now}"
            )
        handle = EventHandle()
        heapq.heappush(
            self._heap, (time, self._sequence, handle, callback, args)
        )
        self._sequence += 1
        return handle

    def schedule_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback, *args)

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the heap is empty (or past ``until``).

        With ``until`` set, events at times strictly greater than it are
        left queued and the clock advances to exactly ``until``.
        Cancelled events are discarded without advancing the clock.
        """
        while self._heap:
            time, _, handle, callback, args = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and time > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = time
            self._events_processed += 1
            callback(*args)
        if until is not None and until > self.now:
            self.now = until

    def step(self) -> bool:
        """Process exactly one live event; returns False when none remain."""
        while self._heap:
            time, _, handle, callback, args = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = time
            self._events_processed += 1
            callback(*args)
            return True
        return False
