"""Server hiccup (stop-the-world pause) injection.

The benchmark's index serving node runs on a JVM, and garbage
collection pauses are a classic source of its tail latency: a pause
freezes every core for milliseconds, delaying whatever is running or
queued.  ``HiccupSchedule`` generates a deterministic sequence of
stop-the-world intervals (exponential inter-arrival gaps, fixed or
log-normal durations) and answers the one question the core model
needs: *if work starts at time t and needs d busy seconds, when does
it finish once pauses are excluded?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class HiccupConfig:
    """Stop-the-world pause process parameters.

    Attributes
    ----------
    mean_interval:
        Mean seconds between pause starts (exponential gaps).  A JVM
        under allocation pressure pauses every few hundred ms to few
        seconds depending on heap sizing.
    pause_duration:
        Pause length in seconds (young-generation pauses of the era:
        5–50 ms).
    duration_sigma:
        Log-normal sigma of pause durations; 0 gives fixed-length
        pauses.
    """

    mean_interval: float
    pause_duration: float
    duration_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_interval <= 0:
            raise ValueError("mean_interval must be positive")
        if self.pause_duration <= 0:
            raise ValueError("pause_duration must be positive")
        if self.duration_sigma < 0:
            raise ValueError("duration_sigma must be non-negative")


class HiccupSchedule:
    """A lazily-extended, deterministic sequence of pause intervals.

    Pauses never overlap: the next pause's gap is drawn from the end of
    the previous one.
    """

    def __init__(self, config: HiccupConfig, rng: np.random.Generator):
        self.config = config
        self._rng = rng
        self._starts: List[float] = []
        self._ends: List[float] = []
        self._frontier = 0.0

    def _extend_past(self, time: float) -> None:
        while self._frontier <= time:
            gap = float(self._rng.exponential(self.config.mean_interval))
            start = self._frontier + gap
            duration = self.config.pause_duration
            if self.config.duration_sigma > 0:
                duration = float(
                    duration
                    * np.exp(
                        self.config.duration_sigma
                        * self._rng.standard_normal()
                        - self.config.duration_sigma**2 / 2.0
                    )
                )
            self._starts.append(start)
            self._ends.append(start + duration)
            self._frontier = start + duration

    def pauses_up_to(self, time: float) -> List[Tuple[float, float]]:
        """All pause intervals starting at or before ``time``."""
        self._extend_past(time)
        return [
            (start, end)
            for start, end in zip(self._starts, self._ends)
            if start <= time
        ]

    def execute(self, start: float, busy_seconds: float) -> Tuple[float, float]:
        """Run ``busy_seconds`` of work beginning at ``start``.

        Returns ``(actual_start, end)``: the start is pushed out of any
        pause it lands in, and the end accounts for every pause the
        execution spans.  ``busy_seconds`` may be 0 (the start is still
        pushed out of a pause — a zero-length task cannot run mid-pause).
        """
        if busy_seconds < 0:
            raise ValueError("busy_seconds must be non-negative")
        self._extend_past(start)
        # Find the first pause that could affect us.
        index = int(np.searchsorted(self._ends, start, side="right"))
        clock = start
        if index < len(self._starts) and self._starts[index] <= clock:
            clock = self._ends[index]  # started mid-pause: resume after
            index += 1
        actual_start = clock
        remaining = busy_seconds
        while remaining > 0:
            self._extend_past(clock + remaining)
            if index < len(self._starts) and self._starts[index] < clock + remaining:
                # Work up to the pause, then jump over it.
                executed = self._starts[index] - clock
                remaining -= executed
                clock = self._ends[index]
                index += 1
            else:
                clock += remaining
                remaining = 0.0
        return actual_start, clock
