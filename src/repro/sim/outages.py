"""Scheduled outage (brownout) injection.

Where :mod:`repro.sim.hiccups` models a stochastic pause *process*,
``FixedOutages`` models deterministic, scripted stall windows — "this
replica freezes from t=2.0s for 500 ms" — the standard failure-
injection shape for studying failover behaviour.  It implements the
same ``execute`` interface the core bank consumes, so any server can
be given scripted brownouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class OutageSpec:
    """One scripted brownout of one replica.

    Attributes
    ----------
    shard / replica:
        Which server stalls (indexes into the replicated cluster).
    start / duration:
        The stall window in simulation seconds.
    """

    shard: int
    replica: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.shard < 0 or self.replica < 0:
            raise ValueError("shard and replica must be non-negative")
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")


class FixedOutages:
    """A fixed set of stall intervals with hiccup-compatible semantics.

    Overlapping or adjacent intervals are merged at construction.
    """

    def __init__(self, intervals: Sequence[Tuple[float, float]]):
        cleaned: List[Tuple[float, float]] = []
        for start, duration in intervals:
            if start < 0 or duration <= 0:
                raise ValueError(
                    "intervals need non-negative start and positive duration"
                )
            cleaned.append((float(start), float(start + duration)))
        cleaned.sort()
        merged: List[Tuple[float, float]] = []
        for start, end in cleaned:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        self._starts = np.array([start for start, _ in merged])
        self._ends = np.array([end for _, end in merged])

    def pauses_up_to(self, time: float) -> List[Tuple[float, float]]:
        """All stall intervals starting at or before ``time``."""
        return [
            (float(start), float(end))
            for start, end in zip(self._starts, self._ends)
            if start <= time
        ]

    def execute(self, start: float, busy_seconds: float) -> Tuple[float, float]:
        """Run ``busy_seconds`` of work from ``start``, skipping stalls.

        Same contract as :meth:`repro.sim.hiccups.HiccupSchedule.execute`.
        """
        if busy_seconds < 0:
            raise ValueError("busy_seconds must be non-negative")
        index = int(np.searchsorted(self._ends, start, side="right"))
        clock = start
        if index < self._starts.size and self._starts[index] <= clock:
            clock = float(self._ends[index])
            index += 1
        actual_start = clock
        remaining = busy_seconds
        while remaining > 0:
            if (
                index < self._starts.size
                and self._starts[index] < clock + remaining
            ):
                executed = float(self._starts[index]) - clock
                remaining -= executed
                clock = float(self._ends[index])
                index += 1
            else:
                clock += remaining
                remaining = 0.0
        return actual_start, clock
