"""Discrete-event simulation core.

A small, deterministic DES kernel: an event heap with a clock
(:mod:`engine`), a FCFS multi-core resource (:mod:`resources`), named
reproducible RNG streams (:mod:`random`), network delay models
(:mod:`network`), and replica failure/recovery processes
(:mod:`failures`).  The simulated search cluster in
:mod:`repro.cluster` is built entirely on these primitives.
"""

from repro.sim.engine import Simulator
from repro.sim.failures import (
    SHED_REPLICA_CRASH,
    FailureWindow,
    MttfMttrFailures,
    ReplicaFailureModel,
    TraceFailures,
    steady_state_availability,
)
from repro.sim.hiccups import HiccupConfig, HiccupSchedule
from repro.sim.network import FixedDelay, LognormalDelay, NetworkModel, NoDelay
from repro.sim.outages import FixedOutages, OutageSpec
from repro.sim.random import RandomStreams
from repro.sim.resources import CoreBank

__all__ = [
    "Simulator",
    "CoreBank",
    "RandomStreams",
    "NetworkModel",
    "NoDelay",
    "FixedDelay",
    "LognormalDelay",
    "HiccupConfig",
    "HiccupSchedule",
    "FixedOutages",
    "OutageSpec",
    "ReplicaFailureModel",
    "MttfMttrFailures",
    "TraceFailures",
    "FailureWindow",
    "steady_state_availability",
    "SHED_REPLICA_CRASH",
]
