"""Network delay models for the client ↔ frontend ↔ ISN hops."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np


class NetworkModel(Protocol):
    """One-way network delay sampler."""

    def delay(self, rng: np.random.Generator) -> float:
        """Sample a one-way delay in seconds."""
        ...


@dataclass(frozen=True)
class NoDelay:
    """Zero network delay (intra-server hops)."""

    def delay(self, rng: np.random.Generator) -> float:
        return 0.0


@dataclass(frozen=True)
class FixedDelay:
    """Constant one-way delay (e.g. a switched datacenter hop)."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("delay must be non-negative")

    def delay(self, rng: np.random.Generator) -> float:
        return self.seconds


@dataclass(frozen=True)
class LognormalDelay:
    """Log-normal delay: a body near ``median`` with an RPC-like tail."""

    median: float
    sigma: float = 0.3

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ValueError("median must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def delay(self, rng: np.random.Generator) -> float:
        return float(self.median * np.exp(self.sigma * rng.standard_normal()))
