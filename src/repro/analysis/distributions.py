"""Parametric distribution fitting for service-time characterization.

The paper-style characterization asks *what shape* the service-time
distribution has.  We fit the two standard candidates — log-normal
(heavy-tailed body, the usual fit for search service times) and
exponential (the memoryless null model) — by maximum likelihood, and
report a Kolmogorov–Smirnov distance so the benchmarks can state which
model fits better.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LognormalFit:
    """MLE log-normal fit with goodness-of-fit distance."""

    mu: float
    sigma: float
    ks_distance: float

    def mean(self) -> float:
        """Arithmetic mean implied by the fit."""
        return math.exp(self.mu + self.sigma**2 / 2)

    def median(self) -> float:
        """Median implied by the fit."""
        return math.exp(self.mu)

    def percentile(self, quantile: float) -> float:
        """Quantile of the fitted distribution, ``quantile`` in (0, 100)."""
        from scipy.stats import norm

        return math.exp(self.mu + self.sigma * norm.ppf(quantile / 100.0))


@dataclass(frozen=True)
class ExponentialFit:
    """MLE exponential fit with goodness-of-fit distance."""

    rate: float
    ks_distance: float

    def mean(self) -> float:
        """Arithmetic mean implied by the fit (1/rate)."""
        return 1.0 / self.rate


def fit_lognormal(samples: Sequence[float]) -> LognormalFit:
    """Fit a log-normal to positive ``samples`` by MLE."""
    data = _validated(samples)
    logs = np.log(data)
    mu = float(logs.mean())
    sigma = float(logs.std(ddof=0))
    if sigma == 0:
        sigma = 1e-12  # degenerate (constant) sample
    from scipy.stats import norm

    cdf = norm.cdf((np.log(np.sort(data)) - mu) / sigma)
    return LognormalFit(mu=mu, sigma=sigma, ks_distance=_ks(cdf))


def fit_exponential(samples: Sequence[float]) -> ExponentialFit:
    """Fit an exponential to positive ``samples`` by MLE."""
    data = _validated(samples)
    rate = 1.0 / float(data.mean())
    cdf = 1.0 - np.exp(-rate * np.sort(data))
    return ExponentialFit(rate=rate, ks_distance=_ks(cdf))


def _validated(samples: Sequence[float]) -> np.ndarray:
    data = np.asarray(samples, dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot fit zero samples")
    if np.any(data <= 0):
        raise ValueError("distribution fits require positive samples")
    return data


def _ks(model_cdf_at_sorted_samples: np.ndarray) -> float:
    """KS distance between the empirical CDF and a fitted model CDF."""
    n = model_cdf_at_sorted_samples.size
    empirical_high = np.arange(1, n + 1) / n
    empirical_low = np.arange(0, n) / n
    return float(
        max(
            np.abs(empirical_high - model_cdf_at_sorted_samples).max(),
            np.abs(model_cdf_at_sorted_samples - empirical_low).max(),
        )
    )
