"""General statistics: bootstrap intervals, regression, tail index."""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    confidence: float = 0.95,
    num_resamples: int = 1_000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Percentile-bootstrap confidence interval for ``statistic``.

    Returns ``(point_estimate, low, high)``.  Tail percentiles of
    latency distributions have no closed-form standard error, so every
    study reports bootstrap intervals.
    """
    data = np.asarray(samples, dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot bootstrap zero samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    estimates = np.empty(num_resamples)
    for index in range(num_resamples):
        resample = data[rng.integers(0, data.size, size=data.size)]
        estimates[index] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(statistic(data)),
        float(np.percentile(estimates, 100 * alpha)),
        float(np.percentile(estimates, 100 * (1 - alpha))),
    )


def linear_fit(
    x: Sequence[float], y: Sequence[float]
) -> Tuple[float, float, float]:
    """Least-squares line ``y ≈ intercept + slope * x``.

    Returns ``(intercept, slope, r_squared)``.  Used to calibrate the
    service-demand model (service time vs. matched postings volume).
    """
    x_data = np.asarray(x, dtype=np.float64)
    y_data = np.asarray(y, dtype=np.float64)
    if x_data.size != y_data.size:
        raise ValueError("x and y must have equal length")
    if x_data.size < 2:
        raise ValueError("need at least two points")
    slope, intercept = np.polyfit(x_data, y_data, 1)
    predictions = intercept + slope * x_data
    total = float(((y_data - y_data.mean()) ** 2).sum())
    residual = float(((y_data - predictions) ** 2).sum())
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return float(intercept), float(slope), r_squared


def tail_index(samples: Sequence[float], tail_fraction: float = 0.1) -> float:
    """Hill estimator of the tail index over the top ``tail_fraction``.

    Smaller values mean heavier tails; an exponential tail diverges to
    large indexes.  Used to quantify how partitioning lightens the
    latency tail.
    """
    data = np.sort(np.asarray(samples, dtype=np.float64))
    if np.any(data <= 0):
        raise ValueError("tail index requires positive samples")
    if not 0.0 < tail_fraction < 1.0:
        raise ValueError("tail_fraction must be in (0, 1)")
    k = max(2, int(data.size * tail_fraction))
    if data.size < k + 1:
        raise ValueError("not enough samples for the requested tail fraction")
    tail = data[-k:]
    threshold = data[-k - 1]
    return float(1.0 / np.mean(np.log(tail / threshold)))
