"""Statistical analysis helpers for the characterization study."""

from repro.analysis.distributions import (
    ExponentialFit,
    LognormalFit,
    fit_exponential,
    fit_lognormal,
)
from repro.analysis.queueing import MMcMetrics, erlang_c, mmc_metrics
from repro.analysis.stats import bootstrap_ci, linear_fit, tail_index

__all__ = [
    "LognormalFit",
    "ExponentialFit",
    "fit_lognormal",
    "fit_exponential",
    "bootstrap_ci",
    "linear_fit",
    "tail_index",
    "MMcMetrics",
    "erlang_c",
    "mmc_metrics",
]
