"""Analytic queueing formulas for validating the simulator.

The discrete-event server model must agree with queueing theory where
closed forms exist.  For Poisson arrivals, exponential service times,
``c`` identical servers, and FCFS — the M/M/c queue — Erlang C gives
the exact waiting-time distribution.  The test suite runs the
simulator in exactly that regime (one partition, zero overheads,
exponential demands) and checks the measured mean wait and wait-time
quantiles against these formulas; agreement is the strongest evidence
that the core-bank model is a correct FCFS multi-server queue.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MMcMetrics:
    """Closed-form steady-state metrics of an M/M/c queue."""

    arrival_rate: float
    service_rate: float
    servers: int
    utilization: float
    probability_wait: float
    mean_wait: float
    mean_response: float

    def wait_quantile(self, quantile: float) -> float:
        """Waiting-time quantile (0 < q < 1).

        The conditional wait (given W > 0) is exponential with rate
        ``c·μ − λ``; the unconditional quantile accounts for the
        ``1 − P(wait)`` mass at zero.
        """
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        mass_at_zero = 1.0 - self.probability_wait
        if quantile <= mass_at_zero:
            return 0.0
        drain = self.servers * self.service_rate - self.arrival_rate
        residual = (1.0 - quantile) / self.probability_wait
        return -math.log(residual) / drain


def erlang_c(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Erlang C: probability an arrival waits in an M/M/c queue."""
    if arrival_rate <= 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    if servers <= 0:
        raise ValueError("servers must be positive")
    offered = arrival_rate / service_rate  # in Erlangs
    utilization = offered / servers
    if utilization >= 1.0:
        raise ValueError("queue is unstable (utilization >= 1)")
    # Sum_{k<c} a^k/k!  and the c-term, computed iteratively for
    # numerical stability.
    term = 1.0
    total = 1.0
    for k in range(1, servers):
        term *= offered / k
        total += term
    term_c = term * offered / servers
    waiting_factor = term_c / (1.0 - utilization)
    return waiting_factor / (total + waiting_factor)


def mmc_metrics(
    arrival_rate: float, service_rate: float, servers: int
) -> MMcMetrics:
    """All closed-form M/M/c metrics for the given parameters."""
    probability_wait = erlang_c(arrival_rate, service_rate, servers)
    utilization = arrival_rate / (servers * service_rate)
    mean_wait = probability_wait / (
        servers * service_rate - arrival_rate
    )
    return MMcMetrics(
        arrival_rate=arrival_rate,
        service_rate=service_rate,
        servers=servers,
        utilization=utilization,
        probability_wait=probability_wait,
        mean_wait=mean_wait,
        mean_response=mean_wait + 1.0 / service_rate,
    )
