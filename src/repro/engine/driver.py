"""Client drivers for the native engine.

Two measurement modes, matching how the paper's numbers were gathered:

- :func:`replay_serial` — replay a query stream one query at a time on
  a serial ISN pass.  No queueing, no thread contention: the measured
  time *is* the query's service demand, which is what characterization
  (service-time distributions) and simulator calibration need.
- :class:`ClosedLoopDriver` — a Faban-style client population on real
  threads with exponential think times, measuring end-to-end response
  times under self-limited concurrency.  (CPython's GIL serializes the
  compute, so absolute throughput is interpreter-bound; trends across
  client counts remain meaningful and the discrete-event simulator is
  the primary tool for load studies.)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.corpus.querylog import Query, QueryLog
from repro.engine.isn import IndexServingNode
from repro.workload.arrivals import ClosedLoopSpec


@dataclass(frozen=True)
class QueryMeasurement:
    """One replayed query and its measured cost."""

    query_id: int
    text: str
    num_raw_terms: int
    service_seconds: float
    matched_volume: int
    num_hits: int


def replay_serial(
    isn: IndexServingNode,
    queries: Sequence[Query],
    k: int = 10,
    repeats: int = 1,
    warmup: int = 5,
) -> List[QueryMeasurement]:
    """Measure each query's serial service time on ``isn``.

    Each query is executed ``repeats`` times and the *median* wall time
    is kept (medians resist scheduler noise).  ``warmup`` initial
    executions of the first query warm caches before any measurement.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if not queries:
        return []
    for _ in range(max(0, warmup)):
        isn.execute_serial(queries[0].text, k=k)

    measurements: List[QueryMeasurement] = []
    for query in queries:
        times = []
        response = None
        for _ in range(repeats):
            response = isn.execute_serial(query.text, k=k)
            times.append(response.timings.total_seconds)
        measurements.append(
            QueryMeasurement(
                query_id=query.query_id,
                text=query.text,
                num_raw_terms=len(query.raw_terms),
                service_seconds=float(np.median(times)),
                matched_volume=response.matched_volume,
                num_hits=len(response.hits),
            )
        )
    return measurements


@dataclass
class ClosedLoopResult:
    """Outcome of one closed-loop native run."""

    latencies: np.ndarray
    wall_seconds: float

    @property
    def throughput_qps(self) -> float:
        """Completed queries per wall-clock second."""
        if self.wall_seconds <= 0:
            return float("inf")
        return len(self.latencies) / self.wall_seconds


class ClosedLoopDriver:
    """Faban-style threaded client population against a native ISN."""

    def __init__(
        self,
        isn: IndexServingNode,
        query_log: QueryLog,
        spec: ClosedLoopSpec,
        k: int = 10,
        seed: int = 0,
    ):
        self.isn = isn
        self.query_log = query_log
        self.spec = spec
        self.k = k
        self.seed = seed

    def run(self, num_queries: int) -> ClosedLoopResult:
        """Run until ``num_queries`` total queries have completed."""
        if num_queries <= 0:
            raise ValueError("num_queries must be positive")
        lock = threading.Lock()
        latencies: List[float] = []
        remaining = num_queries
        # Pre-sample each client's private query stream and think times
        # so client threads never contend on a shared RNG.
        per_client = -(-num_queries // self.spec.num_clients)  # ceil
        client_plans = []
        for client_id in range(self.spec.num_clients):
            rng = np.random.default_rng(self.seed + client_id)
            queries = self.query_log.sample_stream(per_client, rng)
            thinks = (
                rng.exponential(self.spec.mean_think_time, size=per_client)
                if self.spec.mean_think_time > 0
                else np.zeros(per_client)
            )
            client_plans.append((queries, thinks))

        def client_body(plan) -> None:
            nonlocal remaining
            queries, thinks = plan
            for query, think in zip(queries, thinks):
                with lock:
                    if remaining <= 0:
                        return
                    remaining -= 1
                time.sleep(float(think))
                start = time.perf_counter()
                self.isn.execute(query.text, k=self.k)
                elapsed = time.perf_counter() - start
                with lock:
                    latencies.append(elapsed)

        wall_start = time.perf_counter()
        threads = [
            threading.Thread(target=client_body, args=(plan,), daemon=True)
            for plan in client_plans
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_seconds = time.perf_counter() - wall_start
        return ClosedLoopResult(
            latencies=np.asarray(latencies, dtype=np.float64),
            wall_seconds=wall_seconds,
        )
