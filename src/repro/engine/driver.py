"""Client drivers for the native engine.

Two measurement modes, matching how the paper's numbers were gathered:

- :func:`replay_serial` — replay a query stream one query at a time on
  a serial ISN pass.  No queueing, no thread contention: the measured
  time *is* the query's service demand, which is what characterization
  (service-time distributions) and simulator calibration need.
- :class:`ClosedLoopDriver` — a Faban-style client population on real
  threads with exponential think times, measuring end-to-end response
  times under self-limited concurrency.  (CPython's GIL serializes the
  compute, so absolute throughput is interpreter-bound; trends across
  client counts remain meaningful and the discrete-event simulator is
  the primary tool for load studies.)
- :class:`OpenLoopDriver` — Poisson arrivals against a single FCFS
  worker: the measured native M/G/1 the capacity model's latency-vs-
  load predictions are validated against.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.corpus.querylog import Query, QueryLog
from repro.engine.isn import IndexServingNode
from repro.workload.arrivals import ClosedLoopSpec


@dataclass(frozen=True)
class QueryMeasurement:
    """One replayed query and its measured cost.

    ``shed`` is True when the admission layer refused the query (its
    ``service_seconds`` is then time-to-refusal, not service time).
    """

    query_id: int
    text: str
    num_raw_terms: int
    service_seconds: float
    matched_volume: int
    num_hits: int
    shed: bool = False


def replay_serial(
    isn: IndexServingNode,
    queries: Sequence[Query],
    k: int = 10,
    repeats: int = 1,
    warmup: int = 5,
) -> List[QueryMeasurement]:
    """Measure each query's serial service time on ``isn``.

    Each query is executed ``repeats`` times and the *median* wall time
    is kept (medians resist scheduler noise).  ``warmup`` initial
    executions of the first query warm caches before any measurement.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if not queries:
        return []
    for _ in range(max(0, warmup)):
        isn.execute_serial(queries[0].text, k=k)

    measurements: List[QueryMeasurement] = []
    for query in queries:
        times = []
        response = None
        for _ in range(repeats):
            response = isn.execute_serial(query.text, k=k)
            # latency_s is the protocol accessor shared by served and
            # shed outcomes (ShedResponse has no component timings).
            times.append(response.latency_s)
        measurements.append(
            QueryMeasurement(
                query_id=query.query_id,
                text=query.text,
                num_raw_terms=len(query.raw_terms),
                service_seconds=float(np.median(times)),
                matched_volume=getattr(response, "matched_volume", 0),
                num_hits=len(response.hits),
                shed=getattr(response, "shed", False),
            )
        )
    return measurements


@dataclass
class ClosedLoopResult:
    """Outcome of one closed-loop native run.

    ``latencies`` holds *served* response times only; ``shed_count``
    tallies queries the admission layer refused (they completed fast,
    but with no answer, and must not pollute the latency distribution).
    """

    latencies: np.ndarray
    wall_seconds: float
    shed_count: int = 0

    @property
    def served_count(self) -> int:
        """Queries that received a real answer."""
        return len(self.latencies)

    @property
    def throughput_qps(self) -> float:
        """Served queries per wall-clock second."""
        if self.wall_seconds <= 0:
            return float("inf")
        return len(self.latencies) / self.wall_seconds

    @property
    def shed_fraction(self) -> float:
        """Fraction of issued queries the admission layer refused."""
        total = self.served_count + self.shed_count
        if total == 0:
            return 0.0
        return self.shed_count / total


@dataclass
class OpenLoopResult:
    """Outcome of one open-loop (Poisson) native run.

    ``latencies[i] = waits[i] + service_seconds[i]`` — queueing delay
    behind earlier arrivals plus the query's own execution.
    """

    latencies: np.ndarray
    waits: np.ndarray
    service_seconds: np.ndarray
    offered_qps: float
    mode: str

    @property
    def utilization(self) -> float:
        """Offered load as a fraction of the single worker's capacity."""
        return self.offered_qps * float(self.service_seconds.mean())


class OpenLoopDriver:
    """Open-loop Poisson load against one FCFS native worker (M/G/1).

    Two dispatch modes:

    - ``"replay"`` (default) — every query executes natively and its
      wall time is measured, but queueing is derived afterwards by the
      Lindley recursion ``W[i] = max(0, W[i-1] + S[i-1] - gap[i])``
      over the sampled Poisson arrival sequence.  This is *exactly*
      FCFS M/G/1 over the measured service times, with no scheduler or
      GIL noise in the waits — the right mode for validating a
      queueing model on a shared or single-core box.
    - ``"realtime"`` — arrivals are dispatched at wall-clock Poisson
      times into a single worker thread and latency is measured from
      the *intended* arrival instant.  Faithful end-to-end, but the
      generator thread contends with the worker for the GIL, so waits
      absorb scheduler noise; prefer it only on an idle multi-core box.
    """

    def __init__(
        self,
        isn: IndexServingNode,
        query_log: QueryLog,
        k: int = 10,
        seed: int = 0,
    ):
        self.isn = isn
        self.query_log = query_log
        self.k = k
        self.seed = seed

    def run(
        self,
        rate_qps: float,
        num_queries: int,
        mode: str = "replay",
        repeats: int = 1,
    ) -> OpenLoopResult:
        """``repeats`` (replay mode only): median-of-N service timing —
        medians resist scheduler noise, the same reason
        :func:`replay_serial` offers it."""
        if rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        if num_queries <= 0:
            raise ValueError("num_queries must be positive")
        if mode not in ("replay", "realtime"):
            raise ValueError(f"unknown mode {mode!r}")
        rng = np.random.default_rng(self.seed)
        queries = self.query_log.sample_stream(num_queries, rng)
        arrivals = np.cumsum(rng.exponential(1.0 / rate_qps, num_queries))
        if mode == "replay":
            return self._run_replay(queries, arrivals, rate_qps, repeats)
        return self._run_realtime(queries, arrivals, rate_qps)

    def _run_replay(
        self, queries, arrivals, rate_qps, repeats
    ) -> OpenLoopResult:
        measurements = replay_serial(
            self.isn, queries, k=self.k, repeats=repeats, warmup=5
        )
        service = np.asarray(
            [m.service_seconds for m in measurements], dtype=np.float64
        )
        waits = np.zeros_like(service)
        for i in range(1, len(service)):
            gap = arrivals[i] - arrivals[i - 1]
            waits[i] = max(0.0, waits[i - 1] + service[i - 1] - gap)
        return OpenLoopResult(
            latencies=waits + service,
            waits=waits,
            service_seconds=service,
            offered_qps=rate_qps,
            mode="replay",
        )

    def _run_realtime(self, queries, arrivals, rate_qps) -> OpenLoopResult:
        import concurrent.futures

        # Warm caches before the clock starts.
        for _ in range(5):
            self.isn.execute_serial(queries[0].text, k=self.k)

        finish_offsets = np.zeros(len(queries), dtype=np.float64)
        service = np.zeros(len(queries), dtype=np.float64)

        def execute(index: int, query_text: str, epoch: float) -> None:
            response = self.isn.execute_serial(query_text, k=self.k)
            finish_offsets[index] = time.perf_counter() - epoch
            service[index] = response.latency_s

        with concurrent.futures.ThreadPoolExecutor(max_workers=1) as pool:
            epoch = time.perf_counter()
            for index, (query, offset) in enumerate(zip(queries, arrivals)):
                # Hybrid wait: coarse sleeps release the GIL to the
                # worker; the final stretch polls at sub-ms granularity.
                while True:
                    remaining = offset - (time.perf_counter() - epoch)
                    if remaining <= 0:
                        break
                    time.sleep(min(remaining, 0.0005))
                pool.submit(execute, index, query.text, epoch)
        latencies = finish_offsets - arrivals
        return OpenLoopResult(
            latencies=latencies,
            waits=np.maximum(latencies - service, 0.0),
            service_seconds=service,
            offered_qps=rate_qps,
            mode="realtime",
        )


class ClosedLoopDriver:
    """Faban-style threaded client population against a native ISN."""

    def __init__(
        self,
        isn: IndexServingNode,
        query_log: QueryLog,
        spec: ClosedLoopSpec,
        k: int = 10,
        seed: int = 0,
    ):
        self.isn = isn
        self.query_log = query_log
        self.spec = spec
        self.k = k
        self.seed = seed

    def run(self, num_queries: int) -> ClosedLoopResult:
        """Run until ``num_queries`` total queries have completed."""
        if num_queries <= 0:
            raise ValueError("num_queries must be positive")
        lock = threading.Lock()
        latencies: List[float] = []
        shed_count = 0
        remaining = num_queries
        # Pre-sample each client's private query stream and think times
        # so client threads never contend on a shared RNG.
        per_client = -(-num_queries // self.spec.num_clients)  # ceil
        client_plans = []
        for client_id in range(self.spec.num_clients):
            rng = np.random.default_rng(self.seed + client_id)
            queries = self.query_log.sample_stream(per_client, rng)
            thinks = (
                rng.exponential(self.spec.mean_think_time, size=per_client)
                if self.spec.mean_think_time > 0
                else np.zeros(per_client)
            )
            client_plans.append((queries, thinks))

        def client_body(plan) -> None:
            nonlocal remaining, shed_count
            queries, thinks = plan
            for query, think in zip(queries, thinks):
                with lock:
                    if remaining <= 0:
                        return
                    remaining -= 1
                time.sleep(float(think))
                start = time.perf_counter()
                response = self.isn.execute(query.text, k=self.k)
                elapsed = time.perf_counter() - start
                with lock:
                    if getattr(response, "shed", False):
                        shed_count += 1
                    else:
                        latencies.append(elapsed)

        wall_start = time.perf_counter()
        threads = [
            threading.Thread(target=client_body, args=(plan,), daemon=True)
            for plan in client_plans
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_seconds = time.perf_counter() - wall_start
        return ClosedLoopResult(
            latencies=np.asarray(latencies, dtype=np.float64),
            wall_seconds=wall_seconds,
            shed_count=shed_count,
        )
