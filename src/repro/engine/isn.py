"""The index serving node (ISN).

The ISN owns a partitioned index and answers queries by fanning out to
all partitions — in parallel on a thread pool (the benchmark's
behaviour) or serially (for noise-free service-time characterization) —
and merging the shard top-k lists.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.instrumentation import ComponentTimings
from repro.index.partitioner import PartitionedIndex
from repro.search.executor import ShardSearcher
from repro.search.global_stats import global_scorer_factory
from repro.search.merger import merge_shard_results
from repro.search.query import DEFAULT_TOP_K, ParsedQuery, QueryMode, QueryParser
from repro.search.topk import SearchHit


@dataclass(frozen=True)
class IsnResponse:
    """One query's answer from an ISN."""

    hits: Tuple[SearchHit, ...]
    timings: ComponentTimings
    matched_volume: int

    def doc_ids(self) -> List[int]:
        """Global doc ids of the hits, best first."""
        return [hit.doc_id for hit in self.hits]


class IndexServingNode:
    """Searches one server's partitioned index with intra-query parallelism.

    Parameters
    ----------
    partitioned:
        The server's index shards.
    num_threads:
        Worker threads for the partition fan-out; defaults to the
        partition count (the benchmark's thread-per-partition setting).
    algorithm:
        Traversal algorithm for shard searchers.
    use_global_stats:
        Score shards with collection-global statistics (distributed
        idf).  On by default so results are partition-count invariant.
    cache:
        Optional result-page cache consulted by :meth:`execute` before
        the partition fan-out.  :meth:`execute_serial` bypasses it —
        characterization and calibration need raw service times.
    """

    def __init__(
        self,
        partitioned: PartitionedIndex,
        num_threads: Optional[int] = None,
        algorithm: str = "daat",
        use_global_stats: bool = True,
        cache: Optional["QueryResultCache"] = None,
    ):
        self.partitioned = partitioned
        self.cache = cache
        scorer_factory = (
            global_scorer_factory(partitioned) if use_global_stats else None
        )
        self._searchers = [
            ShardSearcher(shard, algorithm=algorithm, scorer_factory=scorer_factory)
            for shard in partitioned
        ]
        analyzer = partitioned[0].index.analyzer
        self._parser = QueryParser(analyzer)
        if num_threads is not None and num_threads <= 0:
            raise ValueError("num_threads must be positive")
        workers = num_threads if num_threads is not None else (
            partitioned.num_partitions
        )
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="isn-shard"
        )
        self._closed = False

    @property
    def num_partitions(self) -> int:
        """Partition count of the served index."""
        return self.partitioned.num_partitions

    def execute(
        self,
        text: str,
        k: int = DEFAULT_TOP_K,
        mode: QueryMode = QueryMode.OR,
    ) -> IsnResponse:
        """Answer ``text`` with parallel partition fan-out."""
        self._ensure_open()
        total_start = time.perf_counter()

        parse_start = time.perf_counter()
        query = self._parser.parse(text, mode=mode, k=k)
        parse_seconds = time.perf_counter() - parse_start

        if self.cache is not None:
            cached = self.cache.lookup(query)
            if cached is not None:
                return IsnResponse(
                    hits=cached,
                    timings=ComponentTimings(
                        parse_seconds=parse_seconds,
                        total_seconds=time.perf_counter() - total_start,
                    ),
                    matched_volume=0,
                )

        fanout_start = time.perf_counter()
        futures = [
            self._pool.submit(self._search_shard, searcher, query)
            for searcher in self._searchers
        ]
        shard_outputs = [future.result() for future in futures]
        fanout_seconds = time.perf_counter() - fanout_start

        response = self._assemble(
            query, shard_outputs, parse_seconds, fanout_seconds, total_start
        )
        if self.cache is not None:
            self.cache.store(query, response.hits)
        return response

    def execute_serial(
        self,
        text: str,
        k: int = DEFAULT_TOP_K,
        mode: QueryMode = QueryMode.OR,
    ) -> IsnResponse:
        """Answer ``text`` searching partitions one after another.

        Serial execution removes thread-pool scheduling noise, which is
        what the service-time characterization and simulator calibration
        need: the sum of shard times *is* the query's CPU demand.
        """
        self._ensure_open()
        total_start = time.perf_counter()

        parse_start = time.perf_counter()
        query = self._parser.parse(text, mode=mode, k=k)
        parse_seconds = time.perf_counter() - parse_start

        fanout_start = time.perf_counter()
        shard_outputs = [
            self._search_shard(searcher, query) for searcher in self._searchers
        ]
        fanout_seconds = time.perf_counter() - fanout_start

        return self._assemble(
            query, shard_outputs, parse_seconds, fanout_seconds, total_start
        )

    def close(self) -> None:
        """Shut down the fan-out thread pool."""
        if not self._closed:
            self._pool.shutdown(wait=True)
            self._closed = True

    def __enter__(self) -> "IndexServingNode":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("IndexServingNode is closed")

    @staticmethod
    def _search_shard(searcher: ShardSearcher, query: ParsedQuery):
        start = time.perf_counter()
        result = searcher.search(query)
        return result, time.perf_counter() - start

    def _assemble(
        self,
        query: ParsedQuery,
        shard_outputs,
        parse_seconds: float,
        fanout_seconds: float,
        total_start: float,
    ) -> IsnResponse:
        merge_start = time.perf_counter()
        hits = merge_shard_results(
            [result.hits for result, _ in shard_outputs], k=query.k
        )
        merge_seconds = time.perf_counter() - merge_start

        timings = ComponentTimings(
            parse_seconds=parse_seconds,
            shard_seconds=[seconds for _, seconds in shard_outputs],
            fanout_seconds=fanout_seconds,
            merge_seconds=merge_seconds,
            total_seconds=time.perf_counter() - total_start,
        )
        matched_volume = sum(
            result.matched_volume for result, _ in shard_outputs
        )
        return IsnResponse(
            hits=tuple(hits), timings=timings, matched_volume=matched_volume
        )
