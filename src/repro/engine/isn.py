"""The index serving node (ISN).

The ISN owns a partitioned index and answers queries by fanning out to
all partitions — in parallel on a thread pool (the benchmark's
behaviour) or serially (for noise-free service-time characterization) —
and merging the shard top-k lists.

When constructed with a :class:`~repro.obs.tracing.Tracer`, every query
emits a span tree (``isn.execute`` → ``parse``/``fanout``/``shard``/
``merge``) whose timestamps are the same measurements the response's
:class:`ComponentTimings` is built from — with tracing enabled the
timings *are* derived from the spans, so the two views cannot drift.
A :class:`~repro.obs.registry.MetricsRegistry` adds per-run counters
(queries served, postings traversed, cache outcomes).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engine.instrumentation import ComponentTimings
from repro.index.partitioner import PartitionedIndex
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Span, Tracer
from repro.search.executor import ShardSearcher
from repro.search.global_stats import global_scorer_factory
from repro.search.merger import merge_shard_results
from repro.search.query import DEFAULT_TOP_K, ParsedQuery, QueryMode, QueryParser
from repro.search.topk import SearchHit


@dataclass(frozen=True)
class IsnResponse:
    """One query's answer from an ISN."""

    hits: Tuple[SearchHit, ...]
    timings: ComponentTimings
    matched_volume: int
    trace: Optional[Span] = field(default=None, compare=False)

    def doc_ids(self) -> List[int]:
        """Global doc ids of the hits, best first."""
        return [hit.doc_id for hit in self.hits]


class IndexServingNode:
    """Searches one server's partitioned index with intra-query parallelism.

    Parameters
    ----------
    partitioned:
        The server's index shards.
    num_threads:
        Worker threads for the partition fan-out; defaults to the
        partition count (the benchmark's thread-per-partition setting).
    algorithm:
        Traversal algorithm for shard searchers.
    use_global_stats:
        Score shards with collection-global statistics (distributed
        idf).  On by default so results are partition-count invariant.
    cache:
        Optional result-page cache consulted by :meth:`execute` before
        the partition fan-out.  :meth:`execute_serial` bypasses it —
        characterization and calibration need raw service times.
    tracer:
        Optional span tracer.  None (the default) keeps the serving
        path span-free; a disabled tracer costs one branch per query.
    metrics:
        Optional metrics registry for serving-path counters.
    """

    def __init__(
        self,
        partitioned: PartitionedIndex,
        num_threads: Optional[int] = None,
        algorithm: str = "daat",
        use_global_stats: bool = True,
        cache: Optional["QueryResultCache"] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.partitioned = partitioned
        self.cache = cache
        self._tracer = tracer
        self._metrics = metrics
        scorer_factory = (
            global_scorer_factory(partitioned) if use_global_stats else None
        )
        self._searchers = [
            ShardSearcher(
                shard,
                algorithm=algorithm,
                scorer_factory=scorer_factory,
                metrics=metrics,
            )
            for shard in partitioned
        ]
        analyzer = partitioned[0].index.analyzer
        self._parser = QueryParser(analyzer)
        if num_threads is not None and num_threads <= 0:
            raise ValueError("num_threads must be positive")
        workers = num_threads if num_threads is not None else (
            partitioned.num_partitions
        )
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="isn-shard"
        )
        self._closed = False

    @property
    def num_partitions(self) -> int:
        """Partition count of the served index."""
        return self.partitioned.num_partitions

    @property
    def _tracing(self) -> bool:
        return self._tracer is not None and self._tracer.enabled

    def execute(
        self,
        text: str,
        k: int = DEFAULT_TOP_K,
        mode: QueryMode = QueryMode.OR,
    ) -> IsnResponse:
        """Answer ``text`` with parallel partition fan-out."""
        self._ensure_open()
        total_start = time.perf_counter()

        parse_start = time.perf_counter()
        query = self._parser.parse(text, mode=mode, k=k)
        parse_end = time.perf_counter()

        if self.cache is not None:
            cached = self.cache.lookup(query)
            if cached is not None:
                return self._respond_from_cache(
                    text, cached, total_start, parse_start, parse_end
                )

        fanout_start = time.perf_counter()
        futures = [
            self._pool.submit(self._search_shard, searcher, query)
            for searcher in self._searchers
        ]
        shard_outputs = [future.result() for future in futures]
        fanout_end = time.perf_counter()

        response = self._assemble(
            text, query, shard_outputs,
            parse_start, parse_end, fanout_start, fanout_end, total_start,
        )
        if self.cache is not None:
            self.cache.store(query, response.hits)
        return response

    def execute_serial(
        self,
        text: str,
        k: int = DEFAULT_TOP_K,
        mode: QueryMode = QueryMode.OR,
    ) -> IsnResponse:
        """Answer ``text`` searching partitions one after another.

        Serial execution removes thread-pool scheduling noise, which is
        what the service-time characterization and simulator calibration
        need: the sum of shard times *is* the query's CPU demand.
        """
        self._ensure_open()
        total_start = time.perf_counter()

        parse_start = time.perf_counter()
        query = self._parser.parse(text, mode=mode, k=k)
        parse_end = time.perf_counter()

        fanout_start = time.perf_counter()
        shard_outputs = [
            self._search_shard(searcher, query) for searcher in self._searchers
        ]
        fanout_end = time.perf_counter()

        return self._assemble(
            text, query, shard_outputs,
            parse_start, parse_end, fanout_start, fanout_end, total_start,
        )

    def close(self) -> None:
        """Shut down the fan-out thread pool."""
        if not self._closed:
            self._pool.shutdown(wait=True)
            self._closed = True

    def __enter__(self) -> "IndexServingNode":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("IndexServingNode is closed")

    @staticmethod
    def _search_shard(searcher: ShardSearcher, query: ParsedQuery):
        """Search one shard; returns (result, start, end) timestamps."""
        start = time.perf_counter()
        result = searcher.search(query)
        return result, start, time.perf_counter()

    def _respond_from_cache(
        self,
        text: str,
        cached: Tuple[SearchHit, ...],
        total_start: float,
        parse_start: float,
        parse_end: float,
    ) -> IsnResponse:
        if self._metrics is not None:
            self._metrics.counter("isn.queries").add()
        total_end = time.perf_counter()
        trace = None
        if self._tracing:
            trace = self._tracer.record_span(
                "isn.execute", start=total_start, end=total_end,
                query=text, cached=True,
            )
            self._tracer.record_span(
                "parse", start=parse_start, end=parse_end, parent=trace
            )
            timings = ComponentTimings.from_span(trace)
        else:
            timings = ComponentTimings(
                parse_seconds=parse_end - parse_start,
                total_seconds=total_end - total_start,
            )
        return IsnResponse(
            hits=cached, timings=timings, matched_volume=0, trace=trace
        )

    def _assemble(
        self,
        text: str,
        query: ParsedQuery,
        shard_outputs,
        parse_start: float,
        parse_end: float,
        fanout_start: float,
        fanout_end: float,
        total_start: float,
    ) -> IsnResponse:
        merge_start = time.perf_counter()
        hits = merge_shard_results(
            [result.hits for result, _, _ in shard_outputs], k=query.k
        )
        merge_end = time.perf_counter()
        total_end = time.perf_counter()

        matched_volume = sum(
            result.matched_volume for result, _, _ in shard_outputs
        )
        if self._metrics is not None:
            self._metrics.counter("isn.queries").add()
            self._metrics.histogram("isn.service_seconds").observe(
                total_end - total_start
            )

        trace = None
        if self._tracing:
            trace = self._record_trace(
                text, query, shard_outputs,
                parse_start, parse_end, fanout_start, fanout_end,
                merge_start, merge_end, total_start, total_end,
            )
            timings = ComponentTimings.from_span(trace)
        else:
            timings = ComponentTimings(
                parse_seconds=parse_end - parse_start,
                shard_seconds=[end - start for _, start, end in shard_outputs],
                fanout_seconds=fanout_end - fanout_start,
                merge_seconds=merge_end - merge_start,
                total_seconds=total_end - total_start,
            )
        return IsnResponse(
            hits=tuple(hits),
            timings=timings,
            matched_volume=matched_volume,
            trace=trace,
        )

    def _record_trace(
        self,
        text: str,
        query: ParsedQuery,
        shard_outputs,
        parse_start: float,
        parse_end: float,
        fanout_start: float,
        fanout_end: float,
        merge_start: float,
        merge_end: float,
        total_start: float,
        total_end: float,
    ) -> Span:
        tracer = self._tracer
        root = tracer.record_span(
            "isn.execute", start=total_start, end=total_end,
            query=text, k=query.k, mode=query.mode.value,
            num_partitions=self.num_partitions,
        )
        tracer.record_span(
            "parse", start=parse_start, end=parse_end, parent=root,
            num_terms=len(query.terms),
        )
        fanout = tracer.record_span(
            "fanout", start=fanout_start, end=fanout_end, parent=root
        )
        for shard_index, (result, start, end) in enumerate(shard_outputs):
            tracer.record_span(
                "shard", start=start, end=end, parent=fanout,
                shard=shard_index,
                postings_scanned=result.matched_volume,
                num_hits=len(result.hits),
            )
        tracer.record_span(
            "merge", start=merge_start, end=merge_end, parent=root,
            num_shards=len(shard_outputs),
        )
        return root
