"""The index serving node (ISN).

The ISN owns a partitioned index and answers queries by fanning out to
all partitions — in parallel on a thread pool (the benchmark's
behaviour) or serially (for noise-free service-time characterization) —
and merging the shard top-k lists.

With a :class:`~repro.engine.hedging.HedgingPolicy` attached, the
fan-out becomes *tail-tolerant*: each shard request carries a deadline
budget, a straggling shard is hedged (a backup attempt races the
original, first answer wins, losers are cancelled), failed attempts are
retried with backoff, and a shard that misses its deadline is dropped
from the merge — the response then reports ``coverage < 1.0`` so
callers can plot the quality-vs-tail tradeoff.  Without a policy the
fan-out is the seed's plain gather, byte-for-byte.

When constructed with a :class:`~repro.obs.tracing.Tracer`, every query
emits a span tree (``isn.execute`` → ``parse``/``fanout``/``shard``/
``merge``) whose timestamps are the same measurements the response's
:class:`ComponentTimings` is built from — with tracing enabled the
timings *are* derived from the spans, so the two views cannot drift.
A :class:`~repro.obs.registry.MetricsRegistry` adds per-run counters
(queries served, postings traversed, hedges issued/won, deadline
misses).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.engine.execution import ExecutionConfig, resolve_execution
from repro.engine.hedging import DISABLED_POLICY, HedgingPolicy, ShardLatencyTracker
from repro.engine.instrumentation import ComponentTimings
from repro.index.partitioner import PartitionedIndex
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Span, Tracer
from repro.predict.features import extract_features
from repro.resilience.admission import BlockingAdmissionGate, OverloadPolicy, ShedResponse
from repro.resilience.breaker import BreakerBoard, BreakerConfig, BreakerState
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.search.executor import (
    SearchCancelled,
    ShardSearcher,
    _normalize_algorithm,
)
from repro.search.global_stats import global_scorer_factory
from repro.search.strategy import TraversalStrategy
from repro.search.merger import merge_shard_results
from repro.search.query import DEFAULT_TOP_K, ParsedQuery, QueryMode, QueryParser
from repro.search.topk import SearchHit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.querycache import CachedPage, QueryResultCache
    from repro.index.store import TieredStorageConfig
    from repro.predict.scheduler import DeadlineScheduler

#: Linear bucket edges for the coverage histogram (fractions of shards).
COVERAGE_BUCKETS = tuple(i / 20.0 for i in range(21))

#: Crash re-dispatches per batch-execution chunk: a worker death moves
#: the chunk to a healthy worker instead of failing the whole batch.
_BATCH_CRASH_RETRIES = 2

#: Bucket edges for the admission-queue-depth histogram (queries waiting).
QUEUE_DEPTH_BUCKETS = tuple(float(i) for i in range(0, 65, 4))


@dataclass(frozen=True)
class IsnResponse:
    """One query's answer from an ISN.

    ``coverage`` is the fraction of shards whose answer made it into
    the merge: 1.0 on the plain path, possibly lower under a
    :class:`~repro.engine.hedging.HedgingPolicy` with deadlines.

    ``cached`` flags responses replayed from the result cache; their
    ``matched_volume`` is the volume recorded when the page was first
    computed (so work accounting stays truthful), not zero.
    """

    hits: Tuple[SearchHit, ...]
    timings: ComponentTimings
    matched_volume: int
    coverage: float = 1.0
    hedges_issued: int = 0
    hedges_won: int = 0
    deadline_misses: int = 0
    breaker_skips: int = 0
    cached: bool = False
    trace: Optional[Span] = field(default=None, compare=False)

    #: Served responses are never shed; ``getattr(outcome, "shed",
    #: False)`` is the idiomatic served/shed split across outcome types.
    shed = False

    @property
    def latency_s(self) -> float:
        """End-to-end service time in seconds (protocol accessor)."""
        return self.timings.total_seconds

    def doc_ids(self) -> List[int]:
        """Global doc ids of the hits, best first."""
        return [hit.doc_id for hit in self.hits]


@dataclass
class _FanoutOutcome:
    """What one fan-out produced: answered shards plus hedge accounting.

    ``answered`` holds ``(shard_index, kind, result, start, end)``
    tuples for shards whose winner made the merge; ``kind`` is the
    winning attempt's flavour (``"primary"``/``"hedge"``/``"retry"``).
    """

    answered: List[tuple]
    num_shards: int
    hedges_issued: int = 0
    hedges_won: int = 0
    deadline_misses: int = 0
    failures: int = 0
    retries: int = 0
    breaker_skips: int = 0
    missed_shards: Tuple[int, ...] = ()

    @property
    def coverage(self) -> float:
        if self.num_shards == 0:
            return 1.0
        return len(self.answered) / self.num_shards


class IndexServingNode:
    """Searches one server's partitioned index with intra-query parallelism.

    Parameters
    ----------
    partitioned:
        The server's index shards.
    num_threads:
        Deprecated spelling of
        ``execution=ExecutionConfig(backend="threads", workers=...)``;
        emits a :class:`DeprecationWarning`.
    execution:
        The :class:`~repro.engine.execution.ExecutionConfig` selecting
        the fan-out backend.  ``"threads"`` (default) fans out on a
        thread pool sized to the partition count — doubled when a
        hedging policy is attached so backup attempts are not starved
        by the primaries they are meant to overtake.  ``"processes"``
        exports the index hot state once into shared memory and scores
        on a GIL-free :class:`~repro.engine.mp.ProcessShardPool`;
        results stay bit-identical to the thread backend.
    shared_source:
        Resident index to export for process workers when
        ``partitioned`` itself is not exportable (tiered shards page
        blocks on demand and cannot be flattened).  Workers re-tier
        the attached shards with ``tiered``, so storage counters keep
        their semantics per worker.
    tiered:
        The :class:`~repro.index.store.TieredStorageConfig` process
        workers re-apply to the attached resident shards.  Ignored by
        the thread backend, which searches ``partitioned`` as given.
    algorithm:
        Traversal algorithm for shard searchers — an executor algorithm
        name or a :class:`~repro.search.strategy.TraversalStrategy`
        (``"exhaustive"``/``"wand"``/``"block-max-wand"`` spellings are
        normalized by the searcher).
    use_global_stats:
        Score shards with collection-global statistics (distributed
        idf).  On by default so results are partition-count invariant.
    cache:
        Optional result-page cache consulted by :meth:`execute` before
        the partition fan-out.  :meth:`execute_serial` bypasses it —
        characterization and calibration need raw service times.
    hedging:
        Optional :class:`~repro.engine.hedging.HedgingPolicy`.  None or
        an inert policy keeps the seed's plain fan-out path.
    overload:
        Optional :class:`~repro.resilience.admission.OverloadPolicy`.
        When set (and enabled), every :meth:`execute` call passes a
        bounded admission gate first; refused queries return a
        :class:`~repro.resilience.admission.ShedResponse` instead of
        being served.
    breakers:
        Optional :class:`~repro.resilience.breaker.BreakerConfig`.
        When set, each shard gets a circuit breaker fed by fan-out
        failures and deadline misses; an open shard is skipped,
        degrading coverage like a deadline miss.
    faults:
        Optional :class:`~repro.resilience.faults.FaultPlan` injected
        into shard searches (chaos testing): crashes and errors raise
        through the retry path, slowdowns pad service time.
    tracer:
        Optional span tracer.  None (the default) keeps the serving
        path span-free; a disabled tracer costs one branch per query.
    metrics:
        Optional metrics registry for serving-path counters.
    scheduler:
        Optional :class:`~repro.predict.scheduler.DeadlineScheduler`.
        When set, every admitted query is featurized from the resident
        dictionary (term count + summed posting-list lengths, no
        postings traversal) and its service time predicted;
        :meth:`execute_batch` dispatches longest-predicted-first, and
        with ``depth_from_budget`` a Block-Max WAND traversal gets a
        per-query ``max_docs_scored`` depth derived from the remaining
        deadline budget.  ``None`` — the default — keeps the seed's
        serving path bit for bit.
    """

    def __init__(
        self,
        partitioned: PartitionedIndex,
        num_threads: Optional[int] = None,
        algorithm: "str | TraversalStrategy" = "daat",
        use_global_stats: bool = True,
        cache: Optional["QueryResultCache"] = None,
        hedging: Optional[HedgingPolicy] = None,
        overload: Optional[OverloadPolicy] = None,
        breakers: Optional[BreakerConfig] = None,
        faults: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        execution: Optional[ExecutionConfig] = None,
        shared_source: Optional[PartitionedIndex] = None,
        tiered: Optional["TieredStorageConfig"] = None,
        scheduler: Optional["DeadlineScheduler"] = None,
    ):
        execution = resolve_execution(
            execution, num_threads, "IndexServingNode"
        )
        self._execution = (
            execution if execution is not None else ExecutionConfig()
        )
        self.partitioned = partitioned
        self.cache = cache
        self._tracer = tracer
        self._metrics = metrics
        self._hedging = (
            hedging if hedging is not None and hedging.enabled else None
        )
        self._gate = (
            BlockingAdmissionGate(overload)
            if overload is not None and overload.enabled
            else None
        )
        self._breakers = (
            BreakerBoard(breakers) if breakers is not None else None
        )
        self._faults = (
            FaultInjector(faults)
            if faults is not None and faults.enabled
            else None
        )
        self._scheduler = scheduler
        self._algorithm_name = _normalize_algorithm(algorithm)
        self._latency_tracker = ShardLatencyTracker()
        scorer_factory = (
            global_scorer_factory(partitioned) if use_global_stats else None
        )
        self._searchers = [
            ShardSearcher(
                shard,
                algorithm=algorithm,
                scorer_factory=scorer_factory,
                metrics=metrics,
            )
            for shard in partitioned
        ]
        analyzer = partitioned[0].index.analyzer
        self._parser = QueryParser(analyzer)
        if (
            self._execution.use_processes
            or self._execution.workers is None
        ):
            # Thread-backend default, and the coordinator pool size on
            # the process backend (where ``workers`` counts processes):
            # one thread per partition, doubled under hedging.
            workers = partitioned.num_partitions
            if self._hedging is not None and self._hedging.hedges_enabled:
                workers *= 2
        else:
            workers = self._execution.workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="isn-shard"
        )
        self._arena = None
        self._process_pool = None
        if self._execution.use_processes:
            from repro.engine.mp import ProcessShardPool, WorkerOptions
            from repro.index.shared import SharedIndexArena

            source = (
                shared_source if shared_source is not None else partitioned
            )
            self._arena = SharedIndexArena(source)
            self._process_pool = ProcessShardPool(
                self._arena.spec,
                workers=(
                    self._execution.workers
                    if self._execution.workers is not None
                    else partitioned.num_partitions
                ),
                options=WorkerOptions(
                    algorithm=algorithm,
                    use_global_stats=use_global_stats,
                    tiered=tiered,
                    collect_metrics=metrics is not None,
                ),
                metrics=metrics,
                start_method=self._execution.start_method,
                probe_interval_s=self._execution.probe_interval_s,
            )
        self._closed = False

    @property
    def num_partitions(self) -> int:
        """Partition count of the served index."""
        return self.partitioned.num_partitions

    @property
    def execution(self) -> ExecutionConfig:
        """The active execution-backend configuration."""
        return self._execution

    @property
    def process_pool(self):
        """The GIL-free worker pool (None on the thread backend)."""
        return self._process_pool

    @property
    def hedging(self) -> Optional[HedgingPolicy]:
        """The active tail-tolerance policy (None when inert)."""
        return self._hedging

    @property
    def scheduler(self) -> Optional["DeadlineScheduler"]:
        """The active deadline scheduler (None when unconfigured)."""
        return self._scheduler

    @property
    def parser(self) -> QueryParser:
        """The node's query parser (the shards' analyzer)."""
        return self._parser

    @property
    def admission_gate(self) -> Optional[BlockingAdmissionGate]:
        """The active admission gate (None when no overload policy)."""
        return self._gate

    @property
    def breaker_board(self) -> Optional[BreakerBoard]:
        """The per-shard circuit breakers (None when unconfigured)."""
        return self._breakers

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        """The active chaos injector (None when no fault plan)."""
        return self._faults

    def health(self) -> Dict:
        """Liveness view of the node (JSON-friendly).

        Always reports the backend and partition count; on the process
        backend it folds in the worker pool's probe snapshot (live
        workers, deaths detected, respawns), and with circuit breakers
        configured, each shard breaker's current state.  This is the
        surface :meth:`SearchService.health <repro.engine.service.
        SearchService.health>` and the ``repro health`` CLI read.
        """
        snapshot: Dict = {
            "backend": self._execution.backend,
            "partitions": self.num_partitions,
            "closed": self._closed,
            "healthy": not self._closed,
        }
        if self._process_pool is not None:
            pool = self._process_pool.health_snapshot()
            snapshot["pool"] = pool
            snapshot["healthy"] = (
                snapshot["healthy"]
                and pool["live_workers"] == len(pool["workers"])
            )
        if self._breakers is not None:
            now = time.perf_counter()
            snapshot["breakers"] = {
                str(shard): self._breakers.breaker(shard).state(now).name
                for shard in range(self.num_partitions)
            }
        return snapshot

    @property
    def _tracing(self) -> bool:
        return self._tracer is not None and self._tracer.enabled

    @property
    def _resilient_fanout(self) -> bool:
        """True when the fan-out must run the event-driven gather."""
        return (
            self._hedging is not None
            or self._breakers is not None
            or self._faults is not None
        )

    def execute(
        self,
        text: str,
        k: int = DEFAULT_TOP_K,
        mode: QueryMode = QueryMode.OR,
        budget_s: Optional[float] = None,
    ):
        """Answer ``text`` with parallel partition fan-out.

        Returns an :class:`IsnResponse` — or, when an overload policy
        is attached and refuses the query, a
        :class:`~repro.resilience.admission.ShedResponse`.

        ``budget_s`` is an optional per-call deadline budget (seconds)
        overriding the scheduler's ``deadline_s`` — the frontend passes
        each ISN its *remaining* budget so the whole dispatch shares
        one client deadline.  Ignored without a scheduler.
        """
        self._ensure_open()
        if self._gate is None:
            return self._execute_admitted(text, k, mode, budget_s)
        arrival = time.perf_counter()
        if self._metrics is not None:
            self._metrics.histogram(
                "isn.admission_queue_depth", bin_edges=QUEUE_DEPTH_BUCKETS
            ).observe(float(self._gate.controller.queue_depth))
        reason = self._gate.acquire()
        if reason is not None:
            return self._shed(text, reason, arrival)
        start = time.perf_counter()
        try:
            response = self._execute_admitted(text, k, mode, budget_s)
        finally:
            self._gate.release(time.perf_counter() - start)
        if self._metrics is not None:
            self._metrics.counter("isn.served").add()
        return response

    def _shed(self, text: str, reason: str, arrival: float) -> ShedResponse:
        """Build the typed refusal for a query the gate turned away."""
        now = time.perf_counter()
        if self._metrics is not None:
            self._metrics.counter("isn.shed").add()
            self._metrics.counter(f"isn.shed.{reason}").add()
        if self._tracing:
            self._tracer.record_span(
                "isn.execute", start=arrival, end=now,
                query=text, shed=True, shed_reason=reason,
            )
        return ShedResponse(
            reason=reason, latency_s=now - arrival, query=text
        )

    def _execute_admitted(
        self,
        text: str,
        k: int,
        mode: QueryMode,
        budget_s: Optional[float] = None,
    ) -> IsnResponse:
        total_start = time.perf_counter()

        parse_start = time.perf_counter()
        query = self._parser.parse(text, mode=mode, k=k)
        parse_end = time.perf_counter()

        if self.cache is not None:
            entry = self.cache.lookup_entry(query)
            if entry is not None:
                return self._respond_from_cache(
                    text, entry, total_start, parse_start, parse_end
                )

        max_docs = (
            self._depth_budget(query, total_start, budget_s)
            if self._scheduler is not None
            else None
        )

        fanout_start = time.perf_counter()
        if self._resilient_fanout:
            outcome = self._fanout_hedged(query, fanout_start)
        elif self._process_pool is not None:
            outcome = self._fanout_processes(query)
        else:
            futures = [
                self._pool.submit(
                    self._search_shard, searcher, query, max_docs
                )
                for searcher in self._searchers
            ]
            outcome = _FanoutOutcome(
                answered=[
                    (shard, "primary", *future.result())
                    for shard, future in enumerate(futures)
                ],
                num_shards=len(futures),
            )
        fanout_end = time.perf_counter()

        response = self._assemble(
            text, query, outcome,
            parse_start, parse_end, fanout_start, fanout_end, total_start,
        )
        if self.cache is not None and response.coverage >= 1.0:
            # Partial answers must not poison the cache with degraded
            # pages — only full-coverage responses are stored.
            self.cache.store(
                query, response.hits, matched_volume=response.matched_volume
            )
        return response

    def execute_serial(
        self,
        text: str,
        k: int = DEFAULT_TOP_K,
        mode: QueryMode = QueryMode.OR,
    ) -> IsnResponse:
        """Answer ``text`` searching partitions one after another.

        Serial execution removes thread-pool scheduling noise, which is
        what the service-time characterization and simulator calibration
        need: the sum of shard times *is* the query's CPU demand.  The
        hedging policy never applies here.
        """
        self._ensure_open()
        total_start = time.perf_counter()

        parse_start = time.perf_counter()
        query = self._parser.parse(text, mode=mode, k=k)
        parse_end = time.perf_counter()

        fanout_start = time.perf_counter()
        outcome = _FanoutOutcome(
            answered=[
                (shard, "primary", *self._search_shard(searcher, query))
                for shard, searcher in enumerate(self._searchers)
            ],
            num_shards=len(self._searchers),
        )
        fanout_end = time.perf_counter()

        return self._assemble(
            text, query, outcome,
            parse_start, parse_end, fanout_start, fanout_end, total_start,
        )

    def execute_batch(
        self,
        texts: List[str],
        k: int = DEFAULT_TOP_K,
        mode: QueryMode = QueryMode.OR,
    ) -> List:
        """Answer many queries in one fan-out wave.

        On the process backend, all pending ``(query, partition)`` work
        items are packed into dispatches of at most
        ``execution.batch_size`` so the IPC round-trip is amortized
        over many scoring calls — this is the path that exposes
        cross-query scaling.  On the thread backend every item is an
        independent pool task.  Either way each response is identical
        (ids *and* float scores) to what :meth:`execute` would return
        for that text, and the result cache is consulted and fed
        exactly as on the single-query path.

        Resilience features (hedging, breakers, faults, admission
        control) are per-query machinery, so when any is configured
        this method degrades to sequential :meth:`execute` calls.
        """
        self._ensure_open()
        if self._resilient_fanout or self._gate is not None:
            return [self.execute(text, k=k, mode=mode) for text in texts]

        n = self.num_partitions
        responses: List = [None] * len(texts)
        parsed: List[Optional[ParsedQuery]] = [None] * len(texts)
        windows: List[Tuple[float, float, float]] = []
        pending: List[int] = []
        for position, text in enumerate(texts):
            total_start = time.perf_counter()
            parse_start = time.perf_counter()
            query = self._parser.parse(text, mode=mode, k=k)
            parse_end = time.perf_counter()
            parsed[position] = query
            windows.append((total_start, parse_start, parse_end))
            if self.cache is not None:
                entry = self.cache.lookup_entry(query)
                if entry is not None:
                    responses[position] = self._respond_from_cache(
                        text, entry, total_start, parse_start, parse_end
                    )
                    continue
            pending.append(position)

        fanout_start = time.perf_counter()
        answered: Dict[int, List[tuple]] = {
            position: [] for position in pending
        }
        dispatch_order = pending
        if self._scheduler is not None and len(pending) > 1:
            # Longest-predicted-first dispatch: the predicted-expensive
            # queries start scoring first, so the batch straggler is a
            # query that started early rather than one that queued
            # behind cheap work (the native mirror of the DES router
            # shielding long queries).  Stable sort keeps determinism.
            predictions = {
                position: self._scheduler.predicted_seconds(
                    extract_features(self.partitioned, parsed[position])
                )
                for position in pending
            }
            if self._metrics is not None:
                self._metrics.counter("predict.queries").add(len(pending))
            dispatch_order = sorted(
                pending, key=lambda position: -predictions[position]
            )
        items = [
            (position, shard)
            for position in dispatch_order
            for shard in range(n)
        ]
        if self._process_pool is not None:
            from repro.engine.mp import WorkerCrashError

            batch = self._execution.batch_size
            dispatches = []
            for lo in range(0, len(items), batch):
                chunk = items[lo : lo + batch]
                dispatches.append(
                    (
                        chunk,
                        self._process_pool.submit_batch(
                            [
                                (shard, parsed[position])
                                for position, shard in chunk
                            ],
                            crash_retries=_BATCH_CRASH_RETRIES,
                        ),
                    )
                )
            for chunk, future in dispatches:
                try:
                    replies = future.result()
                except WorkerCrashError:
                    # Even the retries died.  Only the queries with an
                    # item in flight on the dead worker lose that shard
                    # (their coverage drops below 1.0); every other
                    # dispatch of this batch proceeds untouched.
                    continue
                for (position, _), (shard, result, start, end) in zip(
                    chunk, replies
                ):
                    answered[position].append(
                        (shard, "primary", result, start, end)
                    )
        else:
            futures = [
                (
                    position,
                    shard,
                    self._pool.submit(
                        self._search_shard,
                        self._searchers[shard],
                        parsed[position],
                    ),
                )
                for position, shard in items
            ]
            for position, shard, future in futures:
                answered[position].append(
                    (shard, "primary", *future.result())
                )
        fanout_end = time.perf_counter()

        for position in pending:
            shard_answers = sorted(
                answered[position], key=lambda item: item[0]
            )
            outcome = _FanoutOutcome(answered=shard_answers, num_shards=n)
            total_start, parse_start, parse_end = windows[position]
            response = self._assemble(
                texts[position], parsed[position], outcome,
                parse_start, parse_end, fanout_start, fanout_end,
                total_start,
            )
            if self.cache is not None and response.coverage >= 1.0:
                self.cache.store(
                    parsed[position],
                    response.hits,
                    matched_volume=response.matched_volume,
                )
            responses[position] = response
        return responses

    def close(self) -> None:
        """Shut down executors, worker processes, and shared memory.

        Deterministic teardown: the fan-out thread pool drains, the
        process pool (if any) joins its workers, and the shared-memory
        segment is unlinked.  Idempotent; the node rejects queries
        afterwards.
        """
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)
            if self._process_pool is not None:
                self._process_pool.close()
            if self._arena is not None:
                self._arena.close()

    def __enter__(self) -> "IndexServingNode":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("IndexServingNode is closed")

    @staticmethod
    def _search_shard(
        searcher: ShardSearcher,
        query: ParsedQuery,
        max_docs_scored: Optional[int] = None,
    ):
        """Search one shard; returns (result, start, end) timestamps."""
        start = time.perf_counter()
        result = searcher.search(query, max_docs_scored=max_docs_scored)
        return result, start, time.perf_counter()

    def _depth_budget(
        self,
        query: ParsedQuery,
        total_start: float,
        budget_s: Optional[float],
    ) -> Optional[int]:
        """Featurize at admission; map the deadline to a BMW depth.

        Returns the per-shard ``max_docs_scored`` cap, or ``None`` when
        no cap applies.  Depth capping is a plain-fan-out, thread-
        backend mechanism: the resilient gather has its own deadline
        machinery (drop-the-shard, not truncate-the-shard), and the
        process backend's dispatch protocol carries no per-query depth
        — those paths still get admission-time prediction metrics and
        batch ordering, just no truncation.
        """
        scheduler = self._scheduler
        features = extract_features(self.partitioned, query)
        if self._metrics is not None:
            self._metrics.counter("predict.queries").add()
            if scheduler.is_long(features):
                self._metrics.counter("predict.long_queries").add()
        deadline = budget_s if budget_s is not None else scheduler.deadline_s
        if (
            deadline is None
            or not scheduler.depth_from_budget
            or self._algorithm_name != "block_max_wand"
            or self._resilient_fanout
            or self._process_pool is not None
        ):
            return None
        remaining = deadline - (time.perf_counter() - total_start)
        max_docs = scheduler.max_docs_for(
            features,
            remaining,
            num_shards=self.num_partitions,
            floor=query.k,
        )
        if max_docs is not None and self._metrics is not None:
            self._metrics.counter("predict.depth_capped").add()
        return max_docs

    def _search_shard_attempt(
        self,
        shard: int,
        searcher: ShardSearcher,
        query: ParsedQuery,
        cancel: threading.Event,
    ):
        """One cancellable hedged attempt against one shard.

        With a fault plan attached, injected crashes/errors raise here
        (flowing through the fan-out's retry machinery) and slowdowns
        pad the measured service time.
        """
        if self._faults is not None:
            self._faults.before_search(shard)
        start = time.perf_counter()
        result = searcher.search(query, cancel=cancel)
        end = time.perf_counter()
        if self._faults is not None:
            self._faults.slowdown_sleep(shard, end - start)
            end = time.perf_counter()
        return result, start, end

    # ------------------------------------------------------------------
    # process-backend fan-out

    def _fanout_processes(self, query: ParsedQuery) -> _FanoutOutcome:
        """Plain fan-out over the worker-process pool.

        Shards are dealt round-robin into one batch dispatch per
        worker, so a single query still spreads across all processes
        while each worker receives exactly one IPC message.
        """
        n = self.num_partitions
        lanes = min(self._process_pool.num_workers, n)
        futures = [
            self._process_pool.submit_batch(
                [(shard, query) for shard in range(lane, n, lanes)]
            )
            for lane in range(lanes)
        ]
        answered = [
            (shard, "primary", result, start, end)
            for future in futures
            for shard, result, start, end in future.result()
        ]
        answered.sort(key=lambda item: item[0])
        return _FanoutOutcome(answered=answered, num_shards=n)

    def _search_shard_attempt_mp(
        self, shard: int, query: ParsedQuery, cancel: threading.Event
    ):
        """One hedged attempt dispatched to the worker-process pool.

        Runs on a coordinator thread: faults inject parent-side (so
        chaos plans keep their semantics on either backend), the
        cancellation token is honoured up to the dispatch (a worker
        already scoring cannot be interrupted — the gather discards the
        late answer instead), and a worker crash surfaces as a typed
        :class:`~repro.engine.mp.WorkerCrashError` that flows through
        the retry/breaker machinery like any shard failure.
        """
        if self._faults is not None:
            self._faults.before_search(shard)
        if cancel.is_set():
            raise SearchCancelled(
                f"attempt for shard {shard} cancelled before dispatch"
            )
        result, start, end = self._process_pool.submit_one(
            shard, query
        ).result()
        if self._faults is not None:
            self._faults.slowdown_sleep(shard, end - start)
            end = time.perf_counter()
        return result, start, end

    # ------------------------------------------------------------------
    # tail-tolerant fan-out

    def _fanout_hedged(
        self, query: ParsedQuery, fanout_start: float
    ) -> _FanoutOutcome:
        """Event-driven gather with deadlines, hedges, and retries.

        The loop waits on in-flight attempts with a timeout equal to
        the next timer (hedge fire, deadline, retry backoff), processes
        whichever happens first, and exits once every shard is decided
        — answered, deadline-missed, failed beyond the retry budget, or
        fenced off by an open circuit breaker.

        With only breakers/faults configured (no hedging policy) the
        inert :data:`~repro.engine.hedging.DISABLED_POLICY` drives the
        loop: no hedges, no deadlines, but the retry/failure machinery
        the injectors and breakers need still runs.
        """
        policy = self._hedging or DISABLED_POLICY
        n = len(self._searchers)
        delay = policy.resolve_hedge_delay(self._latency_tracker)
        deadline = policy.deadline_s

        answered: Dict[int, tuple] = {}
        missed: List[bool] = [False] * n
        hedge_counts = [0] * n
        retry_counts = [0] * n
        next_hedge_at: List[Optional[float]] = [
            fanout_start + delay if delay is not None else None
        ] * n
        deadline_at: List[Optional[float]] = [
            fanout_start + deadline if deadline is not None else None
        ] * n
        resubmit_at: Dict[int, float] = {}
        pending: Dict[Future, Tuple[int, str]] = {}
        cancel_tokens: Dict[Future, threading.Event] = {}
        shard_futures: Dict[int, List[Future]] = {i: [] for i in range(n)}
        outcome = _FanoutOutcome(answered=[], num_shards=n)

        def decided(shard: int) -> bool:
            return shard in answered or missed[shard]

        def submit(shard: int, kind: str) -> None:
            token = threading.Event()
            if self._process_pool is not None:
                future = self._pool.submit(
                    self._search_shard_attempt_mp, shard, query, token
                )
            else:
                future = self._pool.submit(
                    self._search_shard_attempt,
                    shard,
                    self._searchers[shard],
                    query,
                    token,
                )
            pending[future] = (shard, kind)
            cancel_tokens[future] = token
            shard_futures[shard].append(future)

        def cancel_shard(shard: int, keep: Optional[Future] = None) -> None:
            for future in shard_futures[shard]:
                if future is keep:
                    continue
                cancel_tokens[future].set()
                future.cancel()

        def breaker_allow(shard: int, now: float) -> bool:
            """Consult the shard's breaker (counting half-open probes)."""
            if self._breakers is None:
                return True
            breaker = self._breakers.breaker(shard)
            half_open = breaker.state(now) is BreakerState.HALF_OPEN
            if not breaker.allow(now):
                return False
            if half_open and self._metrics is not None:
                self._metrics.counter("isn.breaker_probes").add()
            return True

        def breaker_failure(shard: int, now: float) -> None:
            if self._breakers is not None:
                self._breakers.breaker(shard).record_failure(now)

        def breaker_success(shard: int, now: float) -> None:
            if self._breakers is not None:
                self._breakers.breaker(shard).record_success(now)

        for shard in range(n):
            if breaker_allow(shard, fanout_start):
                submit(shard, "primary")
            else:
                # Open breaker: skip the shard outright, degrading
                # coverage exactly like a deadline miss.
                missed[shard] = True
                outcome.breaker_skips += 1

        while not all(decided(shard) for shard in range(n)):
            now = time.perf_counter()
            timers: List[float] = []
            for shard in range(n):
                if decided(shard):
                    continue
                if shard in resubmit_at:
                    timers.append(resubmit_at[shard])
                if (
                    next_hedge_at[shard] is not None
                    and hedge_counts[shard] < policy.max_hedges
                ):
                    timers.append(next_hedge_at[shard])
                if deadline_at[shard] is not None:
                    timers.append(deadline_at[shard])
            live = [
                future
                for future, (shard, _) in pending.items()
                if not decided(shard)
            ]
            timeout = max(0.0, min(timers) - now) if timers else None
            if live:
                done, _ = futures_wait(
                    live, timeout=timeout, return_when=FIRST_COMPLETED
                )
            elif timers:
                time.sleep(timeout)
                done = set()
            else:
                # Defensive: no attempt in flight and no timer left —
                # give up on whatever is undecided rather than spin.
                for shard in range(n):
                    if not decided(shard):
                        missed[shard] = True
                        outcome.failures += 1
                break

            for future in done:
                shard, kind = pending.pop(future)
                if decided(shard):
                    continue  # a loser finishing after the verdict
                try:
                    result, start, end = future.result()
                except SearchCancelled:
                    continue
                except Exception:
                    breaker_failure(shard, time.perf_counter())
                    if retry_counts[shard] < policy.max_retries:
                        backoff = policy.retry_delay(retry_counts[shard])
                        retry_counts[shard] += 1
                        outcome.retries += 1
                        resubmit_at[shard] = time.perf_counter() + backoff
                    else:
                        missed[shard] = True
                        outcome.failures += 1
                        cancel_shard(shard)
                    continue
                breaker_success(shard, end)
                answered[shard] = (shard, kind, result, start, end)
                self._latency_tracker.observe(end - start)
                if kind == "hedge":
                    outcome.hedges_won += 1
                if policy.cancel_losers:
                    cancel_shard(shard, keep=future)

            now = time.perf_counter()
            for shard in range(n):
                if decided(shard):
                    continue
                if shard in resubmit_at and now >= resubmit_at[shard]:
                    del resubmit_at[shard]
                    if breaker_allow(shard, now):
                        submit(shard, "retry")
                    else:
                        # The failures that queued this retry tripped
                        # the breaker: give up on the shard instead of
                        # hammering it.
                        missed[shard] = True
                        outcome.breaker_skips += 1
                        cancel_shard(shard)
                        continue
                if deadline_at[shard] is not None and now >= deadline_at[shard]:
                    missed[shard] = True
                    outcome.deadline_misses += 1
                    breaker_failure(shard, now)
                    resubmit_at.pop(shard, None)
                    cancel_shard(shard)
                    continue
                if (
                    next_hedge_at[shard] is not None
                    and hedge_counts[shard] < policy.max_hedges
                    and now >= next_hedge_at[shard]
                ):
                    if not breaker_allow(shard, now):
                        # A tripped breaker retires this shard's hedge
                        # timer — backup requests against a fenced-off
                        # shard would only feed the failure count.
                        next_hedge_at[shard] = None
                        continue
                    hedge_counts[shard] += 1
                    outcome.hedges_issued += 1
                    submit(shard, "hedge")
                    next_hedge_at[shard] = (
                        now + delay
                        if hedge_counts[shard] < policy.max_hedges
                        else None
                    )

        outcome.answered = [answered[s] for s in sorted(answered)]
        outcome.missed_shards = tuple(
            shard for shard in range(n) if shard not in answered
        )
        return outcome

    def _respond_from_cache(
        self,
        text: str,
        entry: "CachedPage",
        total_start: float,
        parse_start: float,
        parse_end: float,
    ) -> IsnResponse:
        if self._metrics is not None:
            self._metrics.counter("isn.queries").add()
        total_end = time.perf_counter()
        trace = None
        if self._tracing:
            trace = self._tracer.record_span(
                "isn.execute", start=total_start, end=total_end,
                query=text, cached=True,
            )
            self._tracer.record_span(
                "parse", start=parse_start, end=parse_end, parent=trace
            )
            timings = ComponentTimings.from_span(trace)
        else:
            timings = ComponentTimings(
                parse_seconds=parse_end - parse_start,
                total_seconds=total_end - total_start,
            )
        return IsnResponse(
            hits=entry.hits,
            timings=timings,
            matched_volume=entry.matched_volume,
            cached=True,
            trace=trace,
        )

    def _assemble(
        self,
        text: str,
        query: ParsedQuery,
        outcome: _FanoutOutcome,
        parse_start: float,
        parse_end: float,
        fanout_start: float,
        fanout_end: float,
        total_start: float,
    ) -> IsnResponse:
        merge_start = time.perf_counter()
        hits = merge_shard_results(
            [result.hits for _, _, result, _, _ in outcome.answered],
            k=query.k,
        )
        merge_end = time.perf_counter()
        total_end = time.perf_counter()

        matched_volume = sum(
            result.matched_volume for _, _, result, _, _ in outcome.answered
        )
        if self._metrics is not None:
            self._metrics.counter("isn.queries").add()
            self._metrics.histogram("isn.service_seconds").observe(
                total_end - total_start
            )
            if self._resilient_fanout:
                self._metrics.counter("isn.hedges_issued").add(
                    outcome.hedges_issued
                )
                self._metrics.counter("isn.hedges_won").add(
                    outcome.hedges_won
                )
                self._metrics.counter("isn.deadline_misses").add(
                    outcome.deadline_misses
                )
                self._metrics.counter("isn.retries").add(outcome.retries)
                self._metrics.histogram(
                    "isn.coverage", bin_edges=COVERAGE_BUCKETS
                ).observe(outcome.coverage)
            if self._breakers is not None:
                self._metrics.counter("isn.breaker_skips").add(
                    outcome.breaker_skips
                )
                self._breakers.export_gauges(
                    self._metrics, "isn.breaker", time.perf_counter()
                )

        trace = None
        if self._tracing:
            trace = self._record_trace(
                text, query, outcome,
                parse_start, parse_end, fanout_start, fanout_end,
                merge_start, merge_end, total_start, total_end,
            )
            timings = ComponentTimings.from_span(trace)
        else:
            timings = ComponentTimings(
                parse_seconds=parse_end - parse_start,
                shard_seconds=[
                    end - start for _, _, _, start, end in outcome.answered
                ],
                fanout_seconds=fanout_end - fanout_start,
                merge_seconds=merge_end - merge_start,
                total_seconds=total_end - total_start,
            )
        return IsnResponse(
            hits=tuple(hits),
            timings=timings,
            matched_volume=matched_volume,
            coverage=outcome.coverage,
            hedges_issued=outcome.hedges_issued,
            hedges_won=outcome.hedges_won,
            deadline_misses=outcome.deadline_misses,
            breaker_skips=outcome.breaker_skips,
            trace=trace,
        )

    def _record_trace(
        self,
        text: str,
        query: ParsedQuery,
        outcome: _FanoutOutcome,
        parse_start: float,
        parse_end: float,
        fanout_start: float,
        fanout_end: float,
        merge_start: float,
        merge_end: float,
        total_start: float,
        total_end: float,
    ) -> Span:
        tracer = self._tracer
        root_attributes = {
            "query": text,
            "k": query.k,
            "mode": query.mode.value,
            "num_partitions": self.num_partitions,
        }
        if self._resilient_fanout:
            root_attributes.update(
                coverage=outcome.coverage,
                hedges_issued=outcome.hedges_issued,
                hedges_won=outcome.hedges_won,
                deadline_misses=outcome.deadline_misses,
            )
        if self._breakers is not None:
            root_attributes["breaker_skips"] = outcome.breaker_skips
        root = tracer.record_span(
            "isn.execute", start=total_start, end=total_end,
            **root_attributes,
        )
        tracer.record_span(
            "parse", start=parse_start, end=parse_end, parent=root,
            num_terms=len(query.terms),
        )
        fanout = tracer.record_span(
            "fanout", start=fanout_start, end=fanout_end, parent=root
        )
        for shard_index, kind, result, start, end in outcome.answered:
            attributes = {
                "shard": shard_index,
                "postings_scanned": result.matched_volume,
                "num_hits": len(result.hits),
            }
            if result.docs_scored is not None:
                attributes["docs_scored"] = result.docs_scored
            if result.blocks_skipped is not None:
                attributes["blocks_skipped"] = result.blocks_skipped
            if result.blocks_fetched is not None:
                attributes["blocks_fetched"] = result.blocks_fetched
            if result.bytes_read is not None:
                attributes["bytes_read"] = result.bytes_read
            if self._resilient_fanout:
                attributes["attempt"] = kind
                attributes["hedged"] = kind == "hedge"
            tracer.record_span(
                "shard", start=start, end=end, parent=fanout, **attributes
            )
        for shard_index in outcome.missed_shards:
            tracer.record_span(
                "shard", start=fanout_start, end=fanout_end, parent=fanout,
                shard=shard_index, deadline_missed=True,
            )
        tracer.record_span(
            "merge", start=merge_start, end=merge_end, parent=root,
            num_shards=len(outcome.answered),
        )
        return root
