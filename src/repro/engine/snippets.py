"""Snippet generation: the result page's highlighted excerpts.

The benchmark's frontend returns a title and a highlighted body
excerpt per hit.  ``SnippetGenerator`` implements the standard
window-scoring approach: slide a fixed-size token window over the
document, score each window by the distinct query terms it covers
(ties: more total matches, then earlier), and render the winner with
``**term**`` highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.corpus.documents import Document
from repro.text.analyzer import Analyzer
from repro.text.tokenizer import Tokenizer


@dataclass(frozen=True)
class Snippet:
    """A rendered excerpt with highlight markers."""

    text: str
    window_start: int
    matched_terms: int


class SnippetGenerator:
    """Builds query-highlighted snippets from raw document text.

    Parameters
    ----------
    analyzer:
        The index's analyzer — raw tokens are normalized through it so
        highlighting matches exactly what the index matched.
    window_tokens:
        Snippet length in raw tokens.
    """

    def __init__(self, analyzer: Analyzer, window_tokens: int = 30):
        if window_tokens <= 0:
            raise ValueError("window_tokens must be positive")
        self.analyzer = analyzer
        self.window_tokens = window_tokens
        self._tokenizer = Tokenizer(
            max_token_length=analyzer.config.max_token_length
        )

    def snippet(
        self, document: Document, query_terms: Sequence[str]
    ) -> Snippet:
        """Best-window snippet of ``document`` for the analyzed terms.

        ``query_terms`` must already be analyzer-normalized (take them
        from a :class:`~repro.search.query.ParsedQuery`).  Documents
        with no match return the document's opening window, unhighlighted.
        """
        raw_tokens = self._tokenizer.tokenize(document.text)
        if not raw_tokens:
            return Snippet(text="", window_start=0, matched_terms=0)
        terms = set(query_terms)
        normalized = [self._normalize(token) for token in raw_tokens]
        matches = [token in terms for token in normalized]

        window = min(self.window_tokens, len(raw_tokens))
        best = self._best_window(normalized, matches, terms, window)
        start = best
        rendered: List[str] = []
        for offset in range(start, min(start + window, len(raw_tokens))):
            token = raw_tokens[offset]
            rendered.append(f"**{token}**" if matches[offset] else token)
        matched = len(
            {
                normalized[offset]
                for offset in range(start, min(start + window, len(raw_tokens)))
                if matches[offset]
            }
        )
        prefix = "… " if start > 0 else ""
        suffix = " …" if start + window < len(raw_tokens) else ""
        return Snippet(
            text=prefix + " ".join(rendered) + suffix,
            window_start=start,
            matched_terms=matched,
        )

    def _normalize(self, token: str) -> str:
        analyzed = self.analyzer.analyze(token)
        return analyzed[0] if analyzed else ""

    def _best_window(
        self,
        normalized: List[str],
        matches: List[bool],
        terms: set,
        window: int,
    ) -> int:
        """Start offset of the window covering the most distinct terms."""
        best_start = 0
        best_key: Tuple[int, int] = (0, 0)
        for start in range(0, max(1, len(normalized) - window + 1)):
            covered = set()
            total = 0
            for offset in range(start, min(start + window, len(normalized))):
                if matches[offset]:
                    covered.add(normalized[offset])
                    total += 1
            key = (len(covered & terms), total)
            if key > best_key:
                best_key = key
                best_start = start
        return best_start
