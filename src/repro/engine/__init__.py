"""The native benchmark engine: a runnable web-search service.

This package wires the real Python search stack into the benchmark's
architecture: an **index serving node** (ISN) that fans a query out to
its intra-server partitions on a thread pool and merges the shard
results, a **frontend** that broadcasts to ISNs, and a **client driver**
with the benchmark's replay semantics.  Native-mode wall-clock
measurements ground the characterization figures and calibrate the
discrete-event simulator's service-demand model.
"""

from repro.engine.execution import EXECUTION_BACKENDS, ExecutionConfig
from repro.engine.driver import (
    ClosedLoopDriver,
    ClosedLoopResult,
    QueryMeasurement,
    replay_serial,
)
from repro.engine.frontend import Frontend, FrontendResponse
from repro.engine.hedging import (
    DISABLED_POLICY,
    HedgingPolicy,
    ShardLatencyTracker,
)
from repro.engine.instrumentation import ComponentTimings, Timer
from repro.engine.isn import IndexServingNode, IsnResponse
from repro.engine.service import (
    ResultPageEntry,
    SearchPage,
    SearchService,
    SearchServiceConfig,
)
from repro.engine.snippets import Snippet, SnippetGenerator

__all__ = [
    "IndexServingNode",
    "IsnResponse",
    "ExecutionConfig",
    "EXECUTION_BACKENDS",
    "HedgingPolicy",
    "ShardLatencyTracker",
    "DISABLED_POLICY",
    "Frontend",
    "FrontendResponse",
    "ClosedLoopDriver",
    "ClosedLoopResult",
    "QueryMeasurement",
    "replay_serial",
    "ComponentTimings",
    "Timer",
    "ResultPageEntry",
    "SearchPage",
    "SearchService",
    "SearchServiceConfig",
    "Snippet",
    "SnippetGenerator",
]
