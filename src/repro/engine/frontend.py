"""The frontend/broker tier.

In the benchmark's architecture a frontend receives client queries,
broadcasts them to every index serving node (each holding a slice of
the full collection), and merges the per-node top-k lists into the
response page.  With a single ISN — the configuration the paper's
intra-server study uses — the frontend is a thin pass-through, but the
class supports multi-ISN deployments for the cluster examples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.engine.isn import IndexServingNode, IsnResponse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.predict.scheduler import DeadlineScheduler
from repro.obs.tracing import NULL_TRACER, Span, Tracer
from repro.search.merger import merge_shard_results
from repro.search.query import DEFAULT_TOP_K, QueryMode
from repro.search.topk import SearchHit


@dataclass(frozen=True)
class FrontendResponse:
    """The merged, client-facing answer to one query."""

    hits: Tuple[SearchHit, ...]
    isn_responses: Tuple[IsnResponse, ...]
    total_seconds: float
    trace: Optional[Span] = field(default=None, compare=False)

    def doc_ids(self) -> List[int]:
        """Global doc ids of the final page, best first."""
        return [hit.doc_id for hit in self.hits]

    @property
    def latency_s(self) -> float:
        """End-to-end client-observed latency (protocol accessor)."""
        return self.total_seconds

    @property
    def coverage(self) -> float:
        """Mean shard coverage across the contributing ISNs.

        1.0 unless a tail-tolerance deadline dropped shards somewhere
        behind this frontend.
        """
        if not self.isn_responses:
            return 1.0
        return sum(
            response.coverage for response in self.isn_responses
        ) / len(self.isn_responses)

    @property
    def slowest_isn_seconds(self) -> float:
        """The straggler ISN's total time."""
        return max(
            (response.timings.total_seconds for response in self.isn_responses),
            default=0.0,
        )


class Frontend:
    """Broadcasts queries to index serving nodes and merges answers.

    Parameters
    ----------
    isns:
        The index serving nodes, each serving a disjoint slice of the
        collection.
    global_id_maps:
        Optional per-ISN translation tables: ``global_id_maps[i][local]``
        is the cluster-global doc id of ISN ``i``'s document ``local``.
        Required for more than one ISN — each node numbers its documents
        from zero, so merging without translation would collide ids.
    tracer:
        Optional span tracer.  When enabled, every query emits a
        ``frontend.execute`` root span; ISNs constructed with the same
        tracer nest their ``isn.execute`` span trees under it.
    scheduler:
        Optional :class:`~repro.predict.scheduler.DeadlineScheduler`.
        With a ``deadline_s``, the frontend threads each ISN its
        *remaining* share of the client budget at dispatch time (ISN
        dispatch consumes budget sequentially here), so a deep
        dispatch chain still honours one end-to-end deadline; each ISN
        interprets the budget with its own scheduler (prediction,
        depth capping).  ``None`` keeps dispatch untouched.
    """

    def __init__(
        self,
        isns: Sequence[IndexServingNode],
        global_id_maps: Optional[Sequence[Sequence[int]]] = None,
        tracer: Optional[Tracer] = None,
        scheduler: Optional["DeadlineScheduler"] = None,
    ):
        if not isns:
            raise ValueError("frontend needs at least one index serving node")
        if global_id_maps is None and len(isns) > 1:
            raise ValueError(
                "multi-ISN frontends need global_id_maps: each ISN numbers "
                "documents from zero, so merged ids would collide"
            )
        if global_id_maps is not None and len(global_id_maps) != len(isns):
            raise ValueError(
                f"got {len(global_id_maps)} id maps for {len(isns)} ISNs"
            )
        self._isns = list(isns)
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._scheduler = scheduler
        self._id_maps = (
            [list(id_map) for id_map in global_id_maps]
            if global_id_maps is not None
            else None
        )

    @property
    def num_isns(self) -> int:
        """Number of index serving nodes behind this frontend."""
        return len(self._isns)

    def execute(
        self,
        text: str,
        k: int = DEFAULT_TOP_K,
        mode: QueryMode = QueryMode.OR,
    ) -> FrontendResponse:
        """Answer ``text``: broadcast, gather, merge."""
        start = time.perf_counter()
        tracer = self._tracer
        deadline = (
            self._scheduler.deadline_s
            if self._scheduler is not None
            else None
        )
        with tracer.span(
            "frontend.execute", query=text, num_isns=len(self._isns)
        ) as root:
            if deadline is None:
                responses = [
                    isn.execute(text, k=k, mode=mode) for isn in self._isns
                ]
            else:
                # Each ISN receives the budget *remaining* at its
                # dispatch, so the shared client deadline survives the
                # whole frontend → ISN chain.
                responses = [
                    isn.execute(
                        text,
                        k=k,
                        mode=mode,
                        budget_s=max(
                            deadline - (time.perf_counter() - start), 0.0
                        ),
                    )
                    for isn in self._isns
                ]
            with tracer.span("frontend.merge"):
                hits = merge_shard_results(
                    [
                        self._to_global(isn_index, response.hits)
                        for isn_index, response in enumerate(responses)
                    ],
                    k=k,
                )
        return FrontendResponse(
            hits=tuple(hits),
            isn_responses=tuple(responses),
            total_seconds=time.perf_counter() - start,
            trace=root if isinstance(root, Span) else None,
        )

    def _to_global(
        self, isn_index: int, hits: Sequence[SearchHit]
    ) -> List[SearchHit]:
        if self._id_maps is None:
            return list(hits)
        id_map = self._id_maps[isn_index]
        return [
            SearchHit(score=hit.score, doc_id=id_map[hit.doc_id])
            for hit in hits
        ]

    def close(self) -> None:
        """Shut down all ISNs."""
        for isn in self._isns:
            isn.close()
