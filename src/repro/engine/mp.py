"""Multi-process execution backend: GIL-free shard scoring workers.

The thread backend's per-partition scoring serializes on the GIL, so
the native engine only showed real intra-node scaling in the DES.  This
module escapes that: a :class:`ProcessShardPool` of worker processes
attach **read-only** to the index exported by
:class:`~repro.index.shared.SharedIndexArena` and score
``(query, partition)`` work items with the *identical* kernel the
thread backend runs (:class:`~repro.search.executor.ShardSearcher`),
so top-k ids and float scores are bit-for-bit equal.

Protocol, parent side:

- one dispatcher thread per worker pulls tasks from a shared queue
  (natural load balancing), ships a **batch** of work items down the
  worker's pipe in one message — batching amortizes IPC, the paper's
  per-dispatch cost — and parks in ``recv`` until the compact reply
  (top-k score/doc-id arrays plus counter deltas) comes back;
- a worker that dies mid-dispatch (OOM-kill, segfault, chaos ``kill``)
  fails exactly the shards it was serving with a typed
  :class:`WorkerCrashError` — which the ISN's resilient fan-out treats
  like any shard failure: the breaker records it, retries re-dispatch,
  coverage degrades if the shard stays undecided — and the dispatcher
  **respawns** the worker, so the pool self-heals without restarting
  the service;
- per-worker observability merges on gather: each reply carries the
  worker's counter increments since its previous reply, and the parent
  folds them into its own
  :class:`~repro.obs.registry.MetricsRegistry`, so ``search.*`` /
  ``wand.*`` / ``store.*`` counters read the same totals under either
  backend.

Workers re-derive everything that is not an array from the picklable
spec: the dictionary, the global-statistics scorer (same integer
document frequencies ⇒ same idf floats), and — when tiered storage is
configured — a per-worker re-tiering of the attached shards (block
caches cannot span processes; budgets apply per worker).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.index.shared import SharedIndexSpec, attach_shared_index
from repro.obs.registry import MetricsRegistry
from repro.search.executor import SearchResult, ShardSearcher
from repro.search.global_stats import global_scorer_factory
from repro.search.query import ParsedQuery
from repro.search.strategy import TraversalStrategy
from repro.search.topk import SearchHit

__all__ = [
    "DEFAULT_PROBE_INTERVAL_S",
    "ProcessShardPool",
    "WorkerCrashError",
    "WorkerOptions",
]

#: One dispatchable unit: (shard index, parsed query).
WorkItem = Tuple[int, ParsedQuery]

#: How long ``close()`` waits for a worker to exit politely before
#: terminating it.
_SHUTDOWN_GRACE_S = 2.0

#: How long a draining ``close()`` waits for dispatchers to finish the
#: queued work before falling back to the hard path.
_DRAIN_GRACE_S = 30.0

#: Consecutive startup failures after which the pool stops respawning a
#: slot and surfaces the startup error instead of spinning.
_MAX_STARTUP_FAILURES = 3

#: Default liveness-probe period: a SIGKILLed worker is detected and
#: respawned within one interval even if no dispatch touches it.
DEFAULT_PROBE_INTERVAL_S = 0.25

_SHUTDOWN = object()


class WorkerCrashError(RuntimeError):
    """A pool worker died while serving a dispatch.

    Carries the shard indexes the lost dispatch covered; the resilient
    fan-out records one failure per affected shard (breaker food), and
    the plain fan-out propagates the error to the caller.
    """

    def __init__(self, message: str, shards: Sequence[int] = ()):
        super().__init__(message)
        self.shards: Tuple[int, ...] = tuple(shards)


@dataclass(frozen=True)
class WorkerOptions:
    """Picklable worker construction parameters (crosses the fork once).

    ``tiered`` re-homes the attached shards onto per-worker tiered
    block storage; ``collect_metrics`` enables the worker-side registry
    whose counter deltas ride back on every reply.
    """

    algorithm: Union[str, TraversalStrategy] = "daat"
    use_global_stats: bool = True
    tiered: Optional[object] = None
    collect_metrics: bool = False


def _counter_deltas(
    registry: Optional[MetricsRegistry], last: Dict[str, int]
) -> Dict[str, int]:
    """Counter increments since the previous reply (mutates ``last``)."""
    if registry is None:
        return {}
    deltas: Dict[str, int] = {}
    for name, entry in registry.snapshot().items():
        if entry["type"] != "counter":
            continue
        value = int(entry["value"])  # type: ignore[arg-type]
        delta = value - last.get(name, 0)
        if delta:
            deltas[name] = delta
            last[name] = value
    return deltas


def _picklable(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives pickling, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(
            f"worker raised unpicklable {type(exc).__name__}: {exc!r}"
        )


def _worker_main(conn, spec: SharedIndexSpec, options: WorkerOptions) -> None:
    """Worker loop: attach once, then score batches until shutdown.

    The reply for a batch is a list of per-item payloads — ``("ok",
    compact-arrays)`` or ``("err", exception)`` — plus the counter
    deltas accumulated while serving it.
    """
    registry = MetricsRegistry() if options.collect_metrics else None
    partitioned, segment = attach_shared_index(spec)
    if options.tiered is not None:
        from repro.index.store import tier_partitioned_index

        partitioned = tier_partitioned_index(
            partitioned, options.tiered, metrics=registry
        )
    scorer_factory = (
        global_scorer_factory(partitioned)
        if options.use_global_stats
        else None
    )
    searchers = [
        ShardSearcher(
            shard,
            algorithm=options.algorithm,
            scorer_factory=scorer_factory,
            metrics=registry,
        )
        for shard in partitioned
    ]
    last_counters: Dict[str, int] = {}
    try:
        conn.send(("ready", os.getpid()))
        while True:
            message = conn.recv()
            if message is None:
                break
            payloads: List[Tuple[str, Any]] = []
            for shard_id, query in message:
                try:
                    start = time.perf_counter()
                    result = searchers[shard_id].search(query)
                    end = time.perf_counter()
                except Exception as exc:  # typed errors cross the pipe
                    payloads.append(("err", _picklable(exc)))
                else:
                    payloads.append(
                        (
                            "ok",
                            (
                                np.asarray(
                                    [hit.score for hit in result.hits],
                                    dtype=np.float64,
                                ),
                                np.asarray(
                                    [hit.doc_id for hit in result.hits],
                                    dtype=np.int64,
                                ),
                                result.matched_volume,
                                result.docs_scored,
                                result.blocks_skipped,
                                result.blocks_fetched,
                                result.bytes_read,
                                start,
                                end,
                            ),
                        )
                    )
            conn.send((payloads, _counter_deltas(registry, last_counters)))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away; exit quietly
    finally:
        try:
            conn.close()
        finally:
            segment.close()


def _unpack_result(payload: tuple, query: ParsedQuery):
    """Rebuild a (SearchResult, start, end) triple from compact arrays."""
    (
        scores,
        doc_ids,
        matched_volume,
        docs_scored,
        blocks_skipped,
        blocks_fetched,
        bytes_read,
        start,
        end,
    ) = payload
    hits = tuple(
        SearchHit(score=float(score), doc_id=int(doc_id))
        for score, doc_id in zip(scores, doc_ids)
    )
    result = SearchResult(
        hits=hits,
        query=query,
        matched_volume=matched_volume,
        docs_scored=docs_scored,
        blocks_skipped=blocks_skipped,
        blocks_fetched=blocks_fetched,
        bytes_read=bytes_read,
    )
    return result, start, end


@dataclass
class _Task:
    items: List[WorkItem]
    future: Future
    single: bool
    #: Remaining crash re-dispatches: a batch whose worker dies is put
    #: back on the shared queue (a healthy worker picks it up) this
    #: many times before the failure is surfaced.
    retries: int = 0
    #: Whether ``set_running_or_notify_cancel`` already ran — a retried
    #: task's future is already RUNNING and must not be re-armed.
    started: bool = False


@dataclass
class _WorkerHandle:
    process: multiprocessing.process.BaseProcess
    conn: object
    ready: bool = False
    startup_failures: int = 0


class ProcessShardPool:
    """A self-healing pool of shard-scoring worker processes.

    Parameters
    ----------
    spec:
        The shared-index attach descriptor
        (:attr:`~repro.index.shared.SharedIndexArena.spec`).
    workers:
        Number of worker processes (each attaches the whole index, so
        any worker can serve any shard).
    options:
        Worker-side searcher construction parameters.
    metrics:
        Optional parent registry that worker counter deltas merge into.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``.
    probe_interval_s:
        Liveness-probe period for the background health monitor.  A
        worker that dies *between* dispatches (SIGKILL, OOM, segfault)
        is detected and respawned within one interval instead of on the
        next dispatch.  ``None`` (or ``0``) disables the monitor; the
        cheap pre-dispatch ``is_alive`` check still runs.
    """

    def __init__(
        self,
        spec: SharedIndexSpec,
        *,
        workers: int,
        options: WorkerOptions,
        metrics: Optional[MetricsRegistry] = None,
        start_method: Optional[str] = None,
        probe_interval_s: Optional[float] = DEFAULT_PROBE_INTERVAL_S,
    ):
        if workers <= 0:
            raise ValueError("workers must be positive")
        if probe_interval_s is not None and probe_interval_s < 0:
            raise ValueError("probe_interval_s must be non-negative")
        self._spec = spec
        self._options = options
        self._metrics = metrics
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._tasks: "queue.SimpleQueue[object]" = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._closed = False
        self._probe_interval_s = (
            probe_interval_s if probe_interval_s else None
        )
        self._health_stats = {
            "probes": 0,
            "deaths_detected": 0,
            "respawns": 0,
        }
        self._health_stop = threading.Event()
        # Start every process before blocking on any handshake so the
        # (possibly slow, under spawn) attaches overlap.
        self._workers: List[_WorkerHandle] = [
            self._spawn(slot) for slot in range(workers)
        ]
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                args=(slot,),
                name=f"isn-mp-dispatch-{slot}",
                daemon=True,
            )
            for slot in range(workers)
        ]
        for thread in self._dispatchers:
            thread.start()
        self._health_thread: Optional[threading.Thread] = None
        if self._probe_interval_s is not None:
            self._health_thread = threading.Thread(
                target=self._health_loop,
                name="isn-mp-health",
                daemon=True,
            )
            self._health_thread.start()

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def worker_pids(self) -> List[int]:
        """Live worker process ids (chaos tests kill these)."""
        with self._lock:
            return [
                handle.process.pid
                for handle in self._workers
                if handle.process.pid is not None
            ]

    def submit_one(self, shard_id: int, query: ParsedQuery) -> Future:
        """Dispatch one (shard, query) attempt.

        The future resolves to ``(SearchResult, start, end)`` — the
        same triple a thread-backend attempt returns — or raises the
        worker-side error (:class:`WorkerCrashError` if the worker
        died).
        """
        return self._enqueue([(shard_id, query)], single=True)

    def submit_batch(
        self, items: List[WorkItem], *, crash_retries: int = 0
    ) -> Future:
        """Dispatch a batch of work items in one IPC round-trip.

        The future resolves to a list of
        ``(shard_id, SearchResult, start, end)`` tuples in item order.
        ``crash_retries`` re-dispatches the whole batch to a healthy
        worker that many times should the serving worker die mid-batch
        (the work is an idempotent read); only after the budget is
        exhausted does the future fail with
        :class:`WorkerCrashError` naming exactly this batch's shards.
        """
        if crash_retries < 0:
            raise ValueError("crash_retries must be non-negative")
        if not items:
            future: Future = Future()
            future.set_result([])
            return future
        return self._enqueue(
            list(items), single=False, retries=crash_retries
        )

    def _enqueue(
        self, items: List[WorkItem], single: bool, retries: int = 0
    ) -> Future:
        with self._lock:
            if self._closed:
                raise RuntimeError("ProcessShardPool is closed")
        future: Future = Future()
        self._tasks.put(
            _Task(
                items=items, future=future, single=single, retries=retries
            )
        )
        return future

    # ------------------------------------------------------------------
    # worker lifecycle

    def _spawn(self, slot: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._spec, self._options),
            name=f"isn-shard-worker-{slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(process=process, conn=parent_conn)

    def _ensure_ready(self, handle: _WorkerHandle) -> None:
        """Block until the worker finished attaching (first use only)."""
        if handle.ready:
            return
        message = handle.conn.recv()
        if not (isinstance(message, tuple) and message[0] == "ready"):
            raise WorkerCrashError(
                f"worker sent unexpected handshake {message!r}"
            )
        handle.ready = True
        handle.startup_failures = 0

    def _respawn(self, slot: int, failed_handle: _WorkerHandle) -> None:
        """Replace a dead worker (the self-healing half of the pool).

        Idempotent per handle: the dispatcher (on a mid-dispatch EOF)
        and the health monitor (on a failed liveness probe) may both
        notice the same death; whichever serializes second sees the
        replacement already installed and backs off.
        """
        with self._lock:
            if self._closed or self._workers[slot] is not failed_handle:
                return
        try:
            failed_handle.conn.close()
        except OSError:
            pass
        if failed_handle.process.is_alive():
            failed_handle.process.terminate()
        failed_handle.process.join(timeout=_SHUTDOWN_GRACE_S)
        with self._lock:
            if self._closed or self._workers[slot] is not failed_handle:
                return
            replacement = self._spawn(slot)
            replacement.startup_failures = (
                failed_handle.startup_failures
                + (0 if failed_handle.ready else 1)
            )
            self._workers[slot] = replacement
            self._health_stats["respawns"] += 1
        if self._metrics is not None:
            self._metrics.counter("health.respawns").add(1)

    # ------------------------------------------------------------------
    # health checking

    def _health_loop(self) -> None:
        while not self._health_stop.wait(self._probe_interval_s):
            self.probe()

    def probe(self) -> Dict[str, Any]:
        """One liveness sweep: respawn dead workers, return a snapshot.

        The background monitor calls this every ``probe_interval_s``;
        it is public so health endpoints and tests can force a sweep.
        """
        with self._lock:
            closed = self._closed
            handles = list(self._workers)
        if closed:
            return self.health_snapshot()
        deaths = 0
        for slot, handle in enumerate(handles):
            if handle.process.is_alive():
                continue
            deaths += 1
            # A crash-looping worker is left down once the startup
            # budget is spent — the dispatch path surfaces the typed
            # giving-up error; endlessly respawning would just spin.
            if handle.startup_failures < _MAX_STARTUP_FAILURES:
                self._respawn(slot, handle)
        with self._lock:
            self._health_stats["probes"] += 1
            self._health_stats["deaths_detected"] += deaths
        if self._metrics is not None:
            self._metrics.counter("health.probes").add(1)
            if deaths:
                self._metrics.counter("health.worker_deaths").add(deaths)
            self._metrics.gauge("health.live_workers").set(
                self.live_workers()
            )
        return self.health_snapshot()

    def live_workers(self) -> int:
        """Workers currently alive (after any respawns)."""
        with self._lock:
            return sum(
                1 for handle in self._workers if handle.process.is_alive()
            )

    def health_snapshot(self) -> Dict[str, Any]:
        """Point-in-time liveness view of the pool (JSON-friendly)."""
        with self._lock:
            workers = [
                {
                    "slot": slot,
                    "pid": handle.process.pid,
                    "alive": handle.process.is_alive(),
                    "ready": handle.ready,
                    "startup_failures": handle.startup_failures,
                }
                for slot, handle in enumerate(self._workers)
            ]
            stats = dict(self._health_stats)
            closed = self._closed
        return {
            "workers": workers,
            "live_workers": sum(1 for w in workers if w["alive"]),
            "probe_interval_s": self._probe_interval_s,
            "closed": closed,
            **stats,
        }

    # ------------------------------------------------------------------
    # dispatch

    def _dispatch_loop(self, slot: int) -> None:
        while True:
            task = self._tasks.get()
            if task is _SHUTDOWN:
                return
            assert isinstance(task, _Task)
            if not task.started:
                if not task.future.set_running_or_notify_cancel():
                    continue
                task.started = True
            with self._lock:
                handle = self._workers[slot]
            if handle.ready and not handle.process.is_alive():
                # Cheap pre-dispatch liveness check: respawn instead of
                # burning this task discovering an already-dead worker.
                self._respawn(slot, handle)
                with self._lock:
                    handle = self._workers[slot]
            if handle.startup_failures >= _MAX_STARTUP_FAILURES:
                task.future.set_exception(
                    WorkerCrashError(
                        f"worker slot {slot} failed to start "
                        f"{handle.startup_failures} times; giving up",
                        shards=[shard for shard, _ in task.items],
                    )
                )
                continue
            try:
                self._ensure_ready(handle)
                handle.conn.send(task.items)
                payloads, deltas = handle.conn.recv()
            except (EOFError, OSError) as exc:
                shards = [shard for shard, _ in task.items]
                self._crash_task(
                    task,
                    WorkerCrashError(
                        f"worker serving shards {shards} died: {exc!r}",
                        shards=shards,
                    ),
                )
                self._respawn(slot, handle)
                continue
            except WorkerCrashError as exc:
                self._crash_task(task, exc)
                self._respawn(slot, handle)
                continue
            if deltas and self._metrics is not None:
                self._metrics.merge_counter_deltas(deltas)
            self._finish(task, payloads)

    def _crash_task(self, task: _Task, error: WorkerCrashError) -> None:
        """Fail or re-dispatch a task whose serving worker died.

        A task with retry budget goes back on the shared queue, where
        any dispatcher — typically one with a healthy worker, or this
        slot once its replacement is up — picks it up; the items are
        idempotent reads, so a re-dispatch cannot double-count results.
        Only when the budget is spent (or the pool is closing) is the
        failure surfaced, attributed to exactly this dispatch's shards.
        """
        if task.retries > 0:
            with self._lock:
                closing = self._closed
            if not closing:
                task.retries -= 1
                self._tasks.put(task)
                return
        task.future.set_exception(error)

    def _finish(self, task: _Task, payloads: List[Tuple[str, Any]]) -> None:
        results = []
        for (shard_id, query), (status, payload) in zip(
            task.items, payloads
        ):
            if status == "err":
                task.future.set_exception(payload)
                return
            result, start, end = _unpack_result(payload, query)
            results.append((shard_id, result, start, end))
        if task.single:
            shard_id, result, start, end = results[0]
            task.future.set_result((result, start, end))
        else:
            task.future.set_result(results)

    # ------------------------------------------------------------------
    # shutdown

    def close(self, drain: bool = True) -> None:
        """Stop dispatchers, shut workers down, release pipes (idempotent).

        With ``drain=True`` (the default) the pool finishes everything
        already queued before shutting down: the shutdown sentinels
        queue *behind* the pending tasks, so every accepted future
        resolves — a graceful drain, bounded by a generous grace.  With
        ``drain=False`` queued-but-undispatched tasks fail fast with a
        typed :class:`WorkerCrashError` instead of being served.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._health_stop.set()
        if not drain:
            while True:
                try:
                    task = self._tasks.get_nowait()
                except queue.Empty:
                    break
                if not isinstance(task, _Task):
                    continue
                if task.started or task.future.set_running_or_notify_cancel():
                    task.future.set_exception(
                        WorkerCrashError(
                            "ProcessShardPool closed before dispatch",
                            shards=[shard for shard, _ in task.items],
                        )
                    )
        for _ in self._dispatchers:
            self._tasks.put(_SHUTDOWN)
        for thread in self._dispatchers:
            thread.join(
                timeout=_DRAIN_GRACE_S if drain else _SHUTDOWN_GRACE_S
            )
        if self._health_thread is not None:
            self._health_thread.join(timeout=_SHUTDOWN_GRACE_S)
        for handle in self._workers:
            try:
                handle.conn.send(None)
            except (OSError, BrokenPipeError, ValueError):
                pass
            handle.process.join(timeout=_SHUTDOWN_GRACE_S)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=_SHUTDOWN_GRACE_S)
            try:
                handle.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
