"""High-level facade: build a complete runnable search service.

``SearchService`` assembles the whole benchmark — synthetic corpus,
partitioned index, index serving node, and query log — from one config.
It is the entry point the examples and most benchmarks use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.querylog import QueryLog, QueryLogConfig, QueryLogGenerator
from repro.engine.execution import ExecutionConfig, resolve_execution
from repro.engine.hedging import HedgingPolicy
from repro.engine.isn import IndexServingNode, IsnResponse
from repro.resilience.admission import OverloadPolicy, ShedResponse
from repro.resilience.breaker import BreakerConfig
from repro.resilience.faults import FaultPlan
from repro.engine.snippets import Snippet, SnippetGenerator
from repro.index.partitioner import (
    PartitionedIndex,
    PartitionStrategy,
    partition_index,
)
from repro.index.positional import PositionalIndex, PositionalIndexBuilder
from repro.index.store import TieredStorageConfig, tier_partitioned_index
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.search.phrase import parse_phrase, score_phrase
from repro.search.query import DEFAULT_TOP_K, QueryMode
from repro.search.strategy import TraversalStrategy
from repro.search.topk import SearchHit
from repro.text.analyzer import Analyzer, default_analyzer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.predict.scheduler import DeadlineScheduler


@dataclass(frozen=True)
class ResultPageEntry:
    """One rendered result: the hit plus its presentation fields."""

    hit: SearchHit
    url: str
    title: str
    snippet: Snippet


class SearchPage(List[ResultPageEntry]):
    """A rendered result page: a list of entries plus query metadata.

    Subclassing ``list`` keeps every pre-existing caller working
    (iteration, indexing, ``len``) while giving the page the common
    query-outcome accessors (``latency_s``, ``coverage``,
    ``doc_ids()``) shared with :class:`IsnResponse` and the cluster
    tier's records.
    """

    def __init__(
        self,
        entries,
        response: IsnResponse,
        total_seconds: Optional[float] = None,
    ):
        super().__init__(entries)
        self.response = response
        self.total_seconds = total_seconds

    @property
    def latency_s(self) -> float:
        """End-to-end page latency in seconds.

        Includes snippet/presentation rendering when the page was built
        by :meth:`SearchService.search_page` (``total_seconds``), not
        just the backing ISN query — a page's client-observed latency
        is search *plus* rendering.  Falls back to the ISN response's
        latency for pages constructed without a page-level measurement.
        """
        if self.total_seconds is not None:
            return self.total_seconds
        return self.response.latency_s

    @property
    def coverage(self) -> float:
        """Fraction of shards whose answer made the merge."""
        return self.response.coverage

    def doc_ids(self) -> List[int]:
        """Global doc ids of the page's hits, best first."""
        return [entry.hit.doc_id for entry in self]


@dataclass(frozen=True)
class SearchServiceConfig:
    """Configuration of a complete search service instance.

    ``tiered``, when set, re-homes every shard's postings onto the
    tiered block store after partitioning: block-at-a-time fetches
    through an admission-controlled cache (budget split evenly across
    shards), optionally behind a modeled slow/faulty object store.
    Results are bit-identical to resident serving; only the I/O
    schedule (and its latency/fault exposure) changes.
    """

    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    query_log: QueryLogConfig = field(default_factory=QueryLogConfig)
    num_partitions: int = 1
    partition_strategy: PartitionStrategy = PartitionStrategy.ROUND_ROBIN
    algorithm: "str | TraversalStrategy" = "daat"
    use_global_stats: bool = True
    num_threads: Optional[int] = None
    execution: Optional[ExecutionConfig] = None
    hedging: Optional[HedgingPolicy] = None
    overload: Optional[OverloadPolicy] = None
    breakers: Optional[BreakerConfig] = None
    faults: Optional[FaultPlan] = None
    tiered: Optional[TieredStorageConfig] = None
    scheduler: Optional["DeadlineScheduler"] = None

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        # Fold the deprecated num_threads spelling into ``execution``
        # once, here, so downstream layers never re-warn.
        resolved = resolve_execution(
            self.execution, self.num_threads, "SearchServiceConfig"
        )
        object.__setattr__(self, "execution", resolved)
        object.__setattr__(self, "num_threads", None)


class SearchService:
    """A fully assembled, queryable web-search benchmark instance.

    ``tracer``/``metrics`` are forwarded to the index serving node so
    the whole serving path shares one trace collector and one counter
    registry; both default to off/absent.
    """

    def __init__(
        self,
        config: SearchServiceConfig,
        analyzer: Optional[Analyzer] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config
        self.analyzer = analyzer or default_analyzer()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics

        generator = CorpusGenerator(config.corpus)
        self.collection = generator.generate()
        self.partitioned: PartitionedIndex = partition_index(
            self.collection,
            config.num_partitions,
            analyzer=self.analyzer,
            strategy=config.partition_strategy,
        )
        # Process workers cannot attach tiered shards (they page blocks
        # on demand), so the resident pre-tiering index is kept as the
        # shared-memory export source; workers re-tier it locally.
        resident = self.partitioned
        if config.tiered is not None:
            self.partitioned = tier_partitioned_index(
                self.partitioned, config.tiered, metrics=metrics
            )
        self.isn = IndexServingNode(
            self.partitioned,
            execution=config.execution,
            shared_source=resident,
            tiered=config.tiered,
            algorithm=config.algorithm,
            use_global_stats=config.use_global_stats,
            hedging=config.hedging,
            overload=config.overload,
            breakers=config.breakers,
            faults=config.faults,
            scheduler=config.scheduler,
            tracer=tracer,
            metrics=metrics,
        )
        self.query_log: QueryLog = QueryLogGenerator(
            generator.vocabulary, config.query_log
        ).generate()
        self._positional: Optional[PositionalIndex] = None
        self._snippets = SnippetGenerator(self.analyzer)

    @classmethod
    def build(cls, **overrides) -> "SearchService":
        """Build a service from keyword overrides of the default config.

        ``SearchService.build(num_partitions=4)`` is the quickstart path.
        """
        return cls(SearchServiceConfig(**overrides))

    def search(
        self,
        text: str,
        k: int = DEFAULT_TOP_K,
        mode: QueryMode = QueryMode.OR,
    ) -> IsnResponse:
        """Answer a query with the benchmark's parallel fan-out path.

        With an :class:`~repro.resilience.admission.OverloadPolicy`
        configured, a refused query returns a
        :class:`~repro.resilience.admission.ShedResponse` instead
        (``coverage == 0.0``, ``shed`` is True); callers split the two
        with ``getattr(response, "shed", False)``.
        """
        return self.isn.execute(text, k=k, mode=mode)

    def search_batch(
        self,
        texts: List[str],
        k: int = DEFAULT_TOP_K,
        mode: QueryMode = QueryMode.OR,
    ) -> List[IsnResponse]:
        """Answer many queries in one fan-out wave.

        Responses are identical to per-query :meth:`search` calls; on
        the process execution backend the ``(query, partition)`` work
        items are batched per dispatch, which is where cross-query
        throughput scaling comes from.
        """
        return self.isn.execute_batch(texts, k=k, mode=mode)

    def document(self, doc_id: int):
        """Fetch the document behind a result's global doc id."""
        return self.collection[doc_id]

    def search_page(
        self,
        text: str,
        k: int = DEFAULT_TOP_K,
        mode: QueryMode = QueryMode.OR,
    ) -> SearchPage:
        """Answer a query and render the full result page.

        Each entry carries the document's URL, title, and a
        query-highlighted snippet — the complete response the
        benchmark's frontend returns to clients.  The returned
        :class:`SearchPage` is a list of entries that also exposes
        ``latency_s``/``coverage``/``doc_ids()``.
        """
        page_start = time.perf_counter()
        with self.tracer.span("search_page", query=text):
            response = self.isn.execute(text, k=k, mode=mode)
            terms = list(self.analyzer.analyze(text))
            entries: List[ResultPageEntry] = []
            with self.tracer.span("snippets", num_hits=len(response.hits)):
                for hit in response.hits:
                    document = self.collection[hit.doc_id]
                    entries.append(
                        ResultPageEntry(
                            hit=hit,
                            url=document.url,
                            title=document.title,
                            snippet=self._snippets.snippet(document, terms),
                        )
                    )
        # The page's latency is search *plus* snippet rendering — the
        # response's own total covers only the ISN query, which would
        # under-report what a client of this method actually waited.
        return SearchPage(
            entries, response, total_seconds=time.perf_counter() - page_start
        )

    def search_phrase(
        self, text: str, k: int = DEFAULT_TOP_K
    ) -> List[SearchHit]:
        """Answer ``text`` as an exact phrase (positional match).

        The positional index is built lazily on first use (it is larger
        and slower to construct than the frequency index).
        """
        return score_phrase(
            self.positional_index(), parse_phrase(self.analyzer, text), k=k
        )

    def positional_index(self) -> PositionalIndex:
        """The lazily-built positional index over the full collection."""
        if self._positional is None:
            self._positional = PositionalIndexBuilder(self.analyzer).build(
                self.collection
            )
        return self._positional

    def health(self) -> dict:
        """Liveness snapshot of the serving node.

        Delegates to :meth:`IndexServingNode.health
        <repro.engine.isn.IndexServingNode.health>`: backend, partition
        count, worker-pool probe state (process backend), and breaker
        states when configured.
        """
        return self.isn.health()

    def close(self) -> None:
        """Deterministically release the ISN's execution resources.

        Shuts down the fan-out thread pool, joins worker processes, and
        unlinks the shared-memory index segment (process backend).
        Using the service as a context manager is equivalent.
        """
        self.isn.close()

    def __enter__(self) -> "SearchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
