"""Tail-tolerance policy for the shard/ISN fan-out.

The paper shows intra-server partitioning shrinks *intrinsic* tails by
parallelizing long queries, but a fan-out is still hostage to its
slowest branch: one paused, overloaded, or failing shard sets the
query's latency.  :class:`HedgingPolicy` captures the three standard
request-level mitigations in one declarative object:

- **deadlines** — a per-shard-request latency budget; a shard that
  misses it is dropped from the merge and the response reports the
  fraction of shards that answered (``coverage``);
- **hedging** — after a delay (fixed, or an observed latency quantile)
  a backup request for the same shard is issued and the first answer
  wins; losers are cancelled where the runtime supports it;
- **bounded retry** — failed attempts are retried with exponential
  backoff, up to a budget.

One policy object drives *both* execution paths: the native
:class:`~repro.engine.isn.IndexServingNode` thread-pool fan-out
interprets it against the wall clock, and the DES cluster tier
(:mod:`repro.cluster.fanout`) interprets the same fields against
simulated time — keeping the simulator calibrated against the engine's
tail-tolerance behaviour, not just its service times.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional

__all__ = [
    "HedgingPolicy",
    "ShardLatencyTracker",
    "DISABLED_POLICY",
]


class ShardLatencyTracker:
    """A sliding window of observed shard-request latencies.

    Quantile-based hedging needs an online estimate of "how long does a
    healthy shard request take?".  The tracker keeps the most recent
    ``window`` observations in a ring buffer and answers quantile
    queries over them.  Thread-safe: the native ISN records from its
    fan-out loop while benchmarks may snapshot concurrently.
    """

    __slots__ = ("_window", "_values", "_next", "_count", "_lock")

    def __init__(self, window: int = 512):
        if window <= 0:
            raise ValueError("window must be positive")
        self._window = window
        self._values: List[float] = [0.0] * window
        self._next = 0
        self._count = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return min(self._count, self._window)

    def observe(self, latency_s: float) -> None:
        """Record one completed shard request's latency."""
        if latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        with self._lock:
            self._values[self._next] = float(latency_s)
            self._next = (self._next + 1) % self._window
            self._count += 1

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile of the window (None while empty)."""
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        with self._lock:
            size = min(self._count, self._window)
            if size == 0:
                return None
            values = sorted(self._values[:size])
        # Nearest-rank on the sorted window: robust, allocation-light.
        rank = min(size - 1, int(q * size))
        return values[rank]


@dataclass(frozen=True, kw_only=True)
class HedgingPolicy:
    """Declarative tail-tolerance policy for one fan-out tier.

    All fields are keyword-only.  A default-constructed policy is
    inert (``enabled`` is False): every mechanism must be opted into.

    Attributes
    ----------
    hedge_delay_s:
        Fixed seconds to wait for a shard request before issuing a
        backup.  Production systems set this near the per-shard p95 so
        only ~5% of requests hedge.
    hedge_quantile:
        Adaptive alternative: hedge after the observed shard-latency
        quantile (e.g. ``0.95``), estimated from a sliding window.
        Until ``min_quantile_samples`` observations exist the policy
        falls back to ``hedge_delay_s`` (or does not hedge if that is
        unset too).
    min_quantile_samples:
        Warm-up threshold for quantile-based delays.
    deadline_s:
        Per-shard-request latency budget.  A request that has not
        answered within the budget is abandoned: the merge proceeds
        with the shards that did answer and the response's ``coverage``
        drops below 1.0.
    max_hedges:
        Backup requests allowed per shard request (0 disables hedging
        even when a delay is configured).
    max_retries:
        Re-issues allowed after a *failed* (errored) attempt.
    retry_backoff_s:
        Base backoff before the first retry; successive retries wait
        ``retry_backoff_s * retry_backoff_multiplier**n``.
    retry_backoff_multiplier:
        Exponential backoff growth factor.
    cancel_losers:
        Cancel outstanding sibling attempts the moment a winner
        answers (cancel-on-first-winner).  Attempts that already
        started may only be able to abandon work at their next
        cancellation point; queued attempts are retired outright.
    """

    hedge_delay_s: Optional[float] = None
    hedge_quantile: Optional[float] = None
    min_quantile_samples: int = 32
    deadline_s: Optional[float] = None
    max_hedges: int = 1
    max_retries: int = 1
    retry_backoff_s: float = 0.001
    retry_backoff_multiplier: float = 2.0
    cancel_losers: bool = True

    def __post_init__(self) -> None:
        if self.hedge_delay_s is not None and self.hedge_delay_s <= 0:
            raise ValueError("hedge_delay_s must be positive")
        if self.hedge_quantile is not None and not (
            0.0 < self.hedge_quantile < 1.0
        ):
            raise ValueError("hedge_quantile must be in (0, 1)")
        if self.min_quantile_samples <= 0:
            raise ValueError("min_quantile_samples must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.max_hedges < 0:
            raise ValueError("max_hedges must be non-negative")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be non-negative")
        if self.retry_backoff_multiplier < 1.0:
            raise ValueError("retry_backoff_multiplier must be >= 1")

    @property
    def hedges_enabled(self) -> bool:
        """True when the policy can ever issue a backup request."""
        return self.max_hedges > 0 and (
            self.hedge_delay_s is not None or self.hedge_quantile is not None
        )

    @property
    def enabled(self) -> bool:
        """True when any tail-tolerance mechanism is active."""
        return self.hedges_enabled or self.deadline_s is not None

    def resolve_hedge_delay(
        self, tracker: Optional[ShardLatencyTracker] = None
    ) -> Optional[float]:
        """The backup-request delay to use right now (None: don't hedge).

        Quantile-based delays take over once the tracker has warmed up;
        before that the fixed ``hedge_delay_s`` (if any) applies.
        """
        if self.max_hedges <= 0:
            return None
        if (
            self.hedge_quantile is not None
            and tracker is not None
            and len(tracker) >= self.min_quantile_samples
        ):
            estimate = tracker.quantile(self.hedge_quantile)
            if estimate is not None and estimate > 0:
                return estimate
        return self.hedge_delay_s

    def retry_delay(self, retry_index: int) -> float:
        """Backoff before retry number ``retry_index`` (0-based)."""
        if retry_index < 0:
            raise ValueError("retry_index must be non-negative")
        return self.retry_backoff_s * (
            self.retry_backoff_multiplier**retry_index
        )


#: A shared inert policy: every mechanism off, plain fan-out semantics.
DISABLED_POLICY = HedgingPolicy()
