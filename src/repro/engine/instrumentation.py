"""Timing instrumentation for the native engine."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional


class Timer:
    """Context-manager stopwatch over ``time.perf_counter``.

    ::

        with Timer() as timer:
            work()
        print(timer.elapsed)
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is None:  # pragma: no cover - defensive
            raise RuntimeError("Timer exited without entering")
        self.elapsed = time.perf_counter() - self._start


@dataclass
class ComponentTimings:
    """Wall-clock breakdown of one query through the ISN (seconds).

    ``shard_seconds[i]`` is shard i's search time as measured inside its
    worker; ``fanout_seconds`` is the span from first dispatch to last
    shard completion (≥ max shard time: includes pool queueing).
    """

    parse_seconds: float = 0.0
    shard_seconds: List[float] = field(default_factory=list)
    fanout_seconds: float = 0.0
    merge_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def slowest_shard_seconds(self) -> float:
        """The straggler shard's search time (0.0 with no shards)."""
        return max(self.shard_seconds, default=0.0)

    @property
    def skew_seconds(self) -> float:
        """Slowest minus fastest shard time — the fork-join skew."""
        if not self.shard_seconds:
            return 0.0
        return max(self.shard_seconds) - min(self.shard_seconds)
