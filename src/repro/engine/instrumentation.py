"""Timing instrumentation for the native engine."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracing import Span


class Timer:
    """Context-manager stopwatch over ``time.perf_counter``.

    ::

        with Timer() as timer:
            work()
        print(timer.elapsed)
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        # Exiting without entering leaves elapsed at 0.0 instead of
        # raising: ``__exit__`` runs while a body exception may be
        # propagating, and raising here would mask it.
        if self._start is None:
            return
        self.elapsed = time.perf_counter() - self._start


@dataclass
class ComponentTimings:
    """Wall-clock breakdown of one query through the ISN (seconds).

    ``shard_seconds[i]`` is shard i's search time as measured inside its
    worker; ``fanout_seconds`` is the span from first dispatch to last
    shard completion (≥ max shard time: includes pool queueing).
    """

    parse_seconds: float = 0.0
    shard_seconds: List[float] = field(default_factory=list)
    fanout_seconds: float = 0.0
    merge_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def slowest_shard_seconds(self) -> float:
        """The straggler shard's search time (0.0 with no shards)."""
        return max(self.shard_seconds, default=0.0)

    @property
    def skew_seconds(self) -> float:
        """Slowest minus fastest shard time — the fork-join skew.

        Skew needs at least two shards to compare; with zero or one
        shard there is no straggler, so the skew is defined as 0.0.
        """
        if len(self.shard_seconds) < 2:
            return 0.0
        return max(self.shard_seconds) - min(self.shard_seconds)

    @classmethod
    def from_span(cls, root: "Span") -> "ComponentTimings":
        """Derive the breakdown from an ``isn.execute`` span tree.

        The ISN records spans with the exact timestamps its direct
        measurements use, so the values produced here equal the legacy
        directly-constructed timings bit-for-bit.  Component spans the
        tree lacks (e.g. no ``fanout`` on a cache hit) contribute 0.0.
        """
        parse_seconds = 0.0
        fanout_seconds = 0.0
        merge_seconds = 0.0
        shard_seconds: List[float] = []
        for child in root.children:
            if child.name == "parse":
                parse_seconds = child.duration
            elif child.name == "fanout":
                fanout_seconds = child.duration
                shard_seconds = [
                    grandchild.duration
                    for grandchild in child.children
                    if grandchild.name == "shard"
                ]
            elif child.name == "merge":
                merge_seconds = child.duration
        return cls(
            parse_seconds=parse_seconds,
            shard_seconds=shard_seconds,
            fanout_seconds=fanout_seconds,
            merge_seconds=merge_seconds,
            total_seconds=root.duration,
        )
