"""Execution-backend configuration for the native engine.

The paper's central finding is that index-serving nodes are
compute-bound: query throughput scales with intra-node parallelism.
The native engine therefore offers two interchangeable execution
backends for its partition fan-out, selected by one declarative
:class:`ExecutionConfig` instead of scattered ``num_threads`` kwargs:

- ``"threads"`` — the seed's :class:`~concurrent.futures.ThreadPoolExecutor`
  fan-out.  Faithful to the original measurements, but per-partition
  scoring serializes on the GIL, so wall-clock scaling with workers is
  limited to the numpy-released sections of the kernel.
- ``"processes"`` — a pool of worker processes attached *read-only* to
  the index's hot state (postings arrays, block-max metadata, document
  lengths) exported once into :mod:`multiprocessing.shared_memory`.
  Scoring runs GIL-free; dispatches carry batches of
  ``(query, partition)`` work items to amortize IPC, and results come
  back as compact top-k arrays.  Results are bit-identical — doc ids
  *and* float scores — to the thread backend under every traversal
  strategy.

Both backends are interpreted by the same
:class:`~repro.engine.isn.IndexServingNode`; hedging, deadlines,
circuit breakers, and overload control keep their semantics either way.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

__all__ = ["ExecutionConfig", "EXECUTION_BACKENDS"]

#: The supported execution backends.
EXECUTION_BACKENDS = ("threads", "processes")

#: Default number of (query, partition) work items per process-pool
#: dispatch in batch execution; large enough that pickling/IPC is a
#: small fraction of scoring time, small enough to load-balance.
DEFAULT_BATCH_SIZE = 32


@dataclass(frozen=True, kw_only=True)
class ExecutionConfig:
    """How the native ISN executes its partition fan-out.

    Attributes
    ----------
    backend:
        ``"threads"`` (default; the seed's thread-pool fan-out) or
        ``"processes"`` (GIL-free worker pool over a shared-memory
        index).
    workers:
        Worker count.  ``None`` keeps the backend's default: the
        partition count, doubled under a hedging policy on the thread
        backend so backups are not starved by the primaries they race.
    batch_size:
        Maximum ``(query, partition)`` work items per process-pool
        dispatch in batch execution (ignored by the thread backend,
        which has no IPC to amortize).
    start_method:
        :mod:`multiprocessing` start method for the process backend.
        ``None`` picks ``"fork"`` when the platform offers it (cheapest
        attach) and ``"spawn"`` otherwise.
    probe_interval_s:
        Liveness-probe period of the process pool's health monitor: a
        worker killed between dispatches is detected and respawned
        within one interval.  ``None`` disables background probing
        (the pre-dispatch liveness check still runs).  Ignored by the
        thread backend.
    """

    backend: str = "threads"
    workers: Optional[int] = None
    batch_size: int = DEFAULT_BATCH_SIZE
    start_method: Optional[str] = None
    probe_interval_s: Optional[float] = 0.25

    def __post_init__(self) -> None:
        if self.backend not in EXECUTION_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"choose from {EXECUTION_BACKENDS}"
            )
        if self.workers is not None and self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(
                f"unknown start_method {self.start_method!r}"
            )
        if self.probe_interval_s is not None and self.probe_interval_s < 0:
            raise ValueError("probe_interval_s must be non-negative")

    @property
    def use_processes(self) -> bool:
        """True when the process backend is selected."""
        return self.backend == "processes"


def resolve_execution(
    execution: Optional[ExecutionConfig],
    num_threads: Optional[int],
    owner: str,
) -> Optional[ExecutionConfig]:
    """Fold a deprecated ``num_threads`` kwarg into an ExecutionConfig.

    The pre-redesign API spelled worker counts as ad-hoc
    ``num_threads`` kwargs on :class:`EngineConfig`,
    :class:`SearchServiceConfig`, and the ISN.  This shim keeps those
    spellings working — mapped onto
    ``ExecutionConfig(backend="threads", workers=num_threads)`` with a
    :class:`DeprecationWarning` — while rejecting ambiguous calls that
    set both the old and the new knob.
    """
    if num_threads is None:
        return execution
    if num_threads <= 0:
        raise ValueError("num_threads must be positive")
    if execution is not None:
        raise TypeError(
            f"{owner}: pass either execution=ExecutionConfig(...) or the "
            "deprecated num_threads, not both"
        )
    warnings.warn(
        f"{owner}: num_threads is deprecated; use "
        "execution=ExecutionConfig(backend=\"threads\", "
        f"workers={num_threads}) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return ExecutionConfig(backend="threads", workers=num_threads)
