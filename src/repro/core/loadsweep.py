"""Response time vs. offered load (figure F3).

Sweeps the open-loop arrival rate against one simulated server
configuration and records the latency summary at each point — the
classic hockey-stick curve whose knee defines the server's usable
operating region, and on which the p99 diverges far before the mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cluster.simulation import ClusterConfig, run_open_loop
from repro.metrics.summary import LatencySummary
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import ServiceDemandModel


@dataclass(frozen=True)
class LoadPoint:
    """One (offered load → latency) measurement."""

    offered_qps: float
    achieved_qps: float
    utilization: float
    summary: LatencySummary


def run_load_sweep(
    config: ClusterConfig,
    demands: ServiceDemandModel,
    rates: Sequence[float],
    num_queries: int = 5_000,
    warmup_fraction: float = 0.1,
    seed: int = 0,
) -> List[LoadPoint]:
    """Simulate each offered rate and summarize the latencies.

    All points share the same seed (common random numbers), so the
    curve's shape reflects load alone, not sampling noise.
    """
    if not rates:
        raise ValueError("need at least one rate")
    if any(rate <= 0 for rate in rates):
        raise ValueError("rates must be positive")
    points: List[LoadPoint] = []
    for rate in rates:
        scenario = WorkloadScenario(
            arrivals=PoissonArrivals(rate),
            demands=demands,
            num_queries=num_queries,
        )
        result = run_open_loop(config, scenario, seed=seed)
        points.append(
            LoadPoint(
                offered_qps=float(rate),
                achieved_qps=result.achieved_qps(),
                utilization=result.utilization(),
                summary=result.summary(warmup_fraction=warmup_fraction),
            )
        )
    return points
