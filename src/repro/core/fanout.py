"""Cluster fan-out study (extension figure F12): tail at scale.

Shards the collection across ``N`` index serving nodes and measures
end-to-end latency as ``N`` grows, holding the whole-query work and
the arrival rate fixed.  Two opposing forces shape the curve:

- per-node work falls as ``1/N``, so latency improves with ``N``;
- the query waits for the **slowest** of ``N`` nodes, so independent
  per-node disturbances (shard imbalance, network jitter) accumulate
  into the critical path — the "tail at scale" effect.

The measurable signatures: the sharding *speedup* is sublinear
(``speedup(N) < N`` and the efficiency ``speedup/N`` decays), and the
mean fan-out skew grows both absolutely with ``N`` and as a fraction
of the remaining latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cluster.fanout import FanoutConfig, run_fanout_open_loop
from repro.cluster.server import PartitionModelConfig
from repro.metrics.summary import LatencySummary
from repro.servers.spec import ServerSpec
from repro.sim.network import NetworkModel, NoDelay
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import ServiceDemandModel


@dataclass(frozen=True)
class FanoutPoint:
    """One cluster size's latency outcome."""

    num_servers: int
    summary: LatencySummary
    mean_fanout_skew: float

    @property
    def tail_ratio(self) -> float:
        """p99 / p50 at this cluster size."""
        return self.summary.tail_ratio

    @property
    def skew_fraction(self) -> float:
        """Mean fan-out skew as a fraction of mean latency."""
        if self.summary.mean == 0:
            return 0.0
        return self.mean_fanout_skew / self.summary.mean


def fanout_scaling_study(
    spec: ServerSpec,
    demands: ServiceDemandModel,
    server_counts: Sequence[int],
    rate_qps: float,
    partitioning: PartitionModelConfig = PartitionModelConfig(),
    network: NetworkModel = NoDelay(),
    num_queries: int = 5_000,
    warmup_fraction: float = 0.1,
    seed: int = 0,
) -> List[FanoutPoint]:
    """F12: latency vs. cluster width at fixed whole-query work."""
    if not server_counts:
        raise ValueError("need at least one server count")
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    points: List[FanoutPoint] = []
    for num_servers in server_counts:
        config = FanoutConfig(
            num_servers=num_servers,
            spec=spec,
            partitioning=partitioning,
            network=network,
        )
        scenario = WorkloadScenario(
            arrivals=PoissonArrivals(rate_qps),
            demands=demands,
            num_queries=num_queries,
        )
        result = run_fanout_open_loop(config, scenario, seed=seed)
        points.append(
            FanoutPoint(
                num_servers=num_servers,
                summary=result.summary(warmup_fraction=warmup_fraction),
                mean_fanout_skew=result.mean_fanout_skew(),
            )
        )
    return points
