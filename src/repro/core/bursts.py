"""Bursty-traffic study (extension figure F18).

The paper motivates QoS "even at the peak incoming traffic load".
Real search traffic is burstier than Poisson — flash crowds and
diurnal swings — which we model with a two-state Markov-modulated
Poisson process.  This study compares Poisson and MMPP arrivals *at
the same average rate* and sweeps partitions under both.

Two regimes emerge:

- **moderate bursts** (burst-state rate well under capacity): the tail
  inflates modestly and partitioning still helps;
- **peak-heavy bursts** (burst rate near capacity): the p99 becomes
  queue-dominated during bursts, and because partitioning *inflates
  total work* (per-partition overhead + merge), higher partition
  counts make the burst tail **worse** — the partition count must be
  provisioned for the peak load, not the average, exactly the "QoS at
  peak traffic" regime the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from repro.cluster.server import PartitionModelConfig
from repro.cluster.simulation import ClusterConfig, run_open_loop
from repro.metrics.summary import LatencySummary
from repro.servers.spec import ServerSpec
from repro.workload.arrivals import MMPPArrivals, PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import ServiceDemandModel


@dataclass(frozen=True)
class BurstPoint:
    """One (arrival process, partition count) outcome."""

    arrival_kind: str
    num_partitions: int
    summary: LatencySummary
    utilization: float


def make_mmpp(
    average_rate: float,
    burst_factor: float = 4.0,
    burst_time_share: float = 0.15,
    mean_burst_dwell: float = 0.5,
) -> MMPPArrivals:
    """Build an MMPP whose long-run average rate is ``average_rate``.

    The process spends ``burst_time_share`` of the time in a burst
    state running at ``burst_factor ×`` the base rate; the base rate is
    solved so the time-weighted average equals ``average_rate``.
    """
    if average_rate <= 0:
        raise ValueError("average_rate must be positive")
    if burst_factor <= 1.0:
        raise ValueError("burst_factor must exceed 1")
    if not 0.0 < burst_time_share < 1.0:
        raise ValueError("burst_time_share must be in (0, 1)")
    base_share = 1.0 - burst_time_share
    base_rate = average_rate / (base_share + burst_time_share * burst_factor)
    mean_base_dwell = mean_burst_dwell * base_share / burst_time_share
    return MMPPArrivals(
        base_rate=base_rate,
        burst_rate=base_rate * burst_factor,
        mean_base_dwell=mean_base_dwell,
        mean_burst_dwell=mean_burst_dwell,
    )


def burst_study(
    spec: ServerSpec,
    demands: ServiceDemandModel,
    partition_counts: Sequence[int],
    average_rate: float,
    burst_factor: float = 4.0,
    cost_model: PartitionModelConfig = PartitionModelConfig(),
    num_queries: int = 6_000,
    warmup_fraction: float = 0.1,
    seed: int = 0,
) -> List[BurstPoint]:
    """F18: Poisson vs equal-average-rate MMPP across partitions."""
    if not partition_counts:
        raise ValueError("need at least one partition count")
    if average_rate <= 0:
        raise ValueError("average_rate must be positive")
    arrival_processes = (
        ("poisson", PoissonArrivals(average_rate)),
        ("mmpp", make_mmpp(average_rate, burst_factor=burst_factor)),
    )
    points: List[BurstPoint] = []
    for num_partitions in partition_counts:
        for kind, arrivals in arrival_processes:
            config = ClusterConfig(
                spec=spec,
                partitioning=replace(
                    cost_model, num_partitions=num_partitions
                ),
            )
            scenario = WorkloadScenario(
                arrivals=arrivals,
                demands=demands,
                num_queries=num_queries,
            )
            result = run_open_loop(config, scenario, seed=seed)
            points.append(
                BurstPoint(
                    arrival_kind=kind,
                    num_partitions=num_partitions,
                    summary=result.summary(warmup_fraction=warmup_fraction),
                    utilization=result.utilization(),
                )
            )
    return points
