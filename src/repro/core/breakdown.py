"""Latency component breakdown vs. partition count (figure F8).

Decomposes mean latency — and, separately, the latency of the query at
the p99 — into the fork-join pipeline's components: core-queue wait,
parallel service, straggler skew, merge wait, merge service, and
network.  The figure explains *why* partitioning reshapes the tail:
parallel service shrinks with P while skew and merge grow.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from repro.cluster.results import BREAKDOWN_COMPONENTS
from repro.cluster.server import PartitionModelConfig
from repro.cluster.simulation import ClusterConfig, run_open_loop
from repro.servers.spec import ServerSpec
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import ServiceDemandModel


@dataclass(frozen=True)
class BreakdownPoint:
    """Component breakdown at one partition count."""

    num_partitions: int
    mean_components: Dict[str, float]
    p99_query_components: Dict[str, float]

    @property
    def mean_latency(self) -> float:
        """Sum of the mean components (= mean latency)."""
        return sum(self.mean_components.values())


def breakdown_vs_partitions(
    spec: ServerSpec,
    demands: ServiceDemandModel,
    partition_counts: Sequence[int],
    rate_qps: float,
    cost_model: PartitionModelConfig = PartitionModelConfig(),
    num_queries: int = 5_000,
    warmup_fraction: float = 0.1,
    seed: int = 0,
) -> List[BreakdownPoint]:
    """F8: per-component latency means across the partition sweep."""
    if not partition_counts:
        raise ValueError("need at least one partition count")
    points: List[BreakdownPoint] = []
    for num_partitions in partition_counts:
        config = ClusterConfig(
            spec=spec,
            partitioning=replace(cost_model, num_partitions=num_partitions),
        )
        scenario = WorkloadScenario(
            arrivals=PoissonArrivals(rate_qps),
            demands=demands,
            num_queries=num_queries,
        )
        result = run_open_loop(config, scenario, seed=seed)
        points.append(
            BreakdownPoint(
                num_partitions=num_partitions,
                mean_components=result.breakdown_means(warmup_fraction),
                p99_query_components=result.breakdown_at_percentile(
                    99.0, warmup_fraction
                ),
            )
        )
    return points
