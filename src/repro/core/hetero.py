"""Mixed-fleet study (extension figure F22): big.LITTLE web search.

Extends the paper's low-power question to fleet composition: given
the same aggregate compute budget, compare

- an all-big fleet (the conventional deployment),
- an all-little fleet (the paper's low-power deployment), and
- a mixed fleet with cost-aware routing (cheap queries — most of
  them — to little servers; the expensive tail to big servers).

Expected shape: all-little wins on power but pays tail latency at
P=1-per-server; the mixed fleet recovers (most of) the big fleet's
tail — because only expensive queries need fast cores — at a fraction
of its power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.hetero import (
    HeterogeneousConfig,
    run_heterogeneous_open_loop,
)
from repro.cluster.server import PartitionModelConfig
from repro.metrics.summary import LatencySummary
from repro.servers.spec import ServerSpec
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import ServiceDemandModel


@dataclass(frozen=True)
class FleetPoint:
    """One fleet composition's latency/power outcome."""

    label: str
    num_big: int
    num_little: int
    summary: LatencySummary
    total_power_watts: float
    energy_per_query_joules: float
    big_traffic_share: float


def fleet_composition_study(
    big_spec: ServerSpec,
    little_spec: ServerSpec,
    demands: ServiceDemandModel,
    rate_qps: float,
    all_big: int,
    mixed_big: int,
    mixed_little: int,
    all_little: Optional[int] = None,
    threshold_quantile: float = 0.8,
    partitioning: PartitionModelConfig = PartitionModelConfig(),
    num_queries: int = 6_000,
    warmup_fraction: float = 0.1,
    seed: int = 0,
) -> List[FleetPoint]:
    """F22: all-big vs all-little vs cost-routed mixed fleet.

    ``all_little`` defaults to the little-server count matching the
    all-big fleet's compute capacity.  The mixed fleet's routing
    threshold is the ``threshold_quantile`` of the demand distribution
    (estimated by sampling), so the big group receives roughly the top
    ``1 - threshold_quantile`` of queries by cost.
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    if not 0.0 < threshold_quantile < 1.0:
        raise ValueError("threshold_quantile must be in (0, 1)")
    if all_little is None:
        ratio = big_spec.compute_capacity / little_spec.compute_capacity
        all_little = max(1, int(round(all_big * ratio)))

    sample = demands.demands(20_000, np.random.default_rng(987654321))
    threshold = float(np.quantile(sample, threshold_quantile))

    scenario = WorkloadScenario(
        arrivals=PoissonArrivals(rate_qps),
        demands=demands,
        num_queries=num_queries,
    )

    configurations = [
        (
            "all-big",
            HeterogeneousConfig(
                big_spec=big_spec,
                num_big=all_big,
                little_spec=little_spec,
                num_little=0,
                partitioning=partitioning,
                demand_threshold=0.0,  # everything routes to big
            ),
        ),
        (
            "all-little",
            HeterogeneousConfig(
                big_spec=big_spec,
                num_big=0,
                little_spec=little_spec,
                num_little=all_little,
                partitioning=partitioning,
                demand_threshold=float("inf"),  # everything to little
            ),
        ),
        (
            f"mixed (top {100 * (1 - threshold_quantile):.0f}% to big)",
            HeterogeneousConfig(
                big_spec=big_spec,
                num_big=mixed_big,
                little_spec=little_spec,
                num_little=mixed_little,
                partitioning=partitioning,
                demand_threshold=threshold,
            ),
        ),
    ]

    points: List[FleetPoint] = []
    for label, config in configurations:
        result = run_heterogeneous_open_loop(config, scenario, seed=seed)
        total = max(1, result.routed_to_big + result.routed_to_little)
        points.append(
            FleetPoint(
                label=label,
                num_big=config.num_big,
                num_little=config.num_little,
                summary=result.summary(warmup_fraction=warmup_fraction),
                total_power_watts=result.total_power_watts,
                energy_per_query_joules=result.energy_per_query_joules(),
                big_traffic_share=result.routed_to_big / total,
            )
        )
    return points
