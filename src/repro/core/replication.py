"""Replica selection and hedging study (extension figure F16).

On a replicated cluster with GC-like per-replica hiccups, compares the
broker's tail-taming options:

- replica **selection**: random vs. round-robin vs. least-outstanding
  (join-the-shortest-queue);
- **hedged requests**: duplicate a shard request that misses a
  deadline, take the first answer.

Expected shape (Dean & Barroso's "tail at scale"): least-outstanding
beats random at no extra work; hedging with a ~p95 deadline cuts the
p99 dramatically for a few percent of duplicated requests — because
per-replica hiccups are independent, so a second replica is almost
never paused at the same time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.cluster.replication import (
    HedgeConfig,
    ReplicaSelection,
    ReplicatedClusterConfig,
    run_replicated_open_loop,
)
from repro.metrics.summary import LatencySummary
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import ServiceDemandModel


@dataclass(frozen=True)
class ReplicationPoint:
    """One broker-policy configuration's outcome."""

    label: str
    selection: ReplicaSelection
    hedge_delay: Optional[float]
    summary: LatencySummary
    hedge_fraction: float


def replication_policy_study(
    base_config: ReplicatedClusterConfig,
    demands: ServiceDemandModel,
    rate_qps: float,
    hedge_delays: Sequence[float] = (),
    num_queries: int = 5_000,
    warmup_fraction: float = 0.1,
    seed: int = 0,
) -> List[ReplicationPoint]:
    """F16: every selection policy, then hedging on the best-known one.

    Returns one point per selection policy (no hedging) followed by one
    point per hedge delay (least-outstanding selection).
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    scenario = WorkloadScenario(
        arrivals=PoissonArrivals(rate_qps),
        demands=demands,
        num_queries=num_queries,
    )

    points: List[ReplicationPoint] = []
    for selection in ReplicaSelection:
        config = replace(base_config, selection=selection, hedge=None)
        result = run_replicated_open_loop(config, scenario, seed=seed)
        points.append(
            ReplicationPoint(
                label=selection.value,
                selection=selection,
                hedge_delay=None,
                summary=result.summary(warmup_fraction=warmup_fraction),
                hedge_fraction=result.hedge_fraction,
            )
        )
    for delay in hedge_delays:
        config = replace(
            base_config,
            selection=ReplicaSelection.LEAST_OUTSTANDING,
            hedge=HedgeConfig(delay_s=delay),
        )
        result = run_replicated_open_loop(config, scenario, seed=seed)
        points.append(
            ReplicationPoint(
                label=f"hedge@{delay * 1000:.0f}ms",
                selection=ReplicaSelection.LEAST_OUTSTANDING,
                hedge_delay=float(delay),
                summary=result.summary(warmup_fraction=warmup_fraction),
                hedge_fraction=result.hedge_fraction,
            )
        )
    return points
