"""Prediction-aware scheduling studies (figure F29).

The fig6 question revisited with a scheduler in the loop: a low-power
server needs many partitions before its tail catches the big server's.
Deadline-driven early termination changes that trade — queries
*predicted* to blow the budget are truncated to the affordable work,
so the little server's crossover (the partition count where its p99
first meets the QoS bar) moves left.  The DES mirror of the native
Block-Max WAND depth cap is :class:`~repro.predict.scheduler.
DeadlineCappedDemand`; this module sweeps it across (server, P) points
and reports the served-work fraction next to the latency win, so the
quality cost of truncation stays visible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.cluster.server import PartitionModelConfig
from repro.cluster.simulation import ClusterConfig, run_open_loop
from repro.metrics.summary import LatencySummary
from repro.predict.scheduler import DeadlineCappedDemand, DeadlineScheduler
from repro.servers.spec import ServerSpec
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import ServiceDemandModel

__all__ = [
    "ScheduledComparisonPoint",
    "compare_servers_vs_partitions_scheduled",
    "crossover_partitions",
]


@dataclass(frozen=True)
class ScheduledComparisonPoint:
    """One (server, partition count) measurement under a scheduler.

    ``served_fraction`` is the share of the workload's true scoring
    demand the deadline cap actually served (1.0 when nothing was
    truncated) — the result-quality price of the latency numbers.
    """

    server_name: str
    num_partitions: int
    summary: LatencySummary
    utilization: float
    served_fraction: float


def compare_servers_vs_partitions_scheduled(
    specs: Sequence[ServerSpec],
    demands: ServiceDemandModel,
    partition_counts: Sequence[int],
    rate_qps: float,
    scheduler: Optional[DeadlineScheduler] = None,
    cost_model: PartitionModelConfig = PartitionModelConfig(),
    num_queries: int = 5_000,
    warmup_fraction: float = 0.1,
    seed: int = 0,
) -> List[ScheduledComparisonPoint]:
    """The F6 partition sweep with an optional deadline scheduler.

    Mirrors :func:`~repro.core.lowpower.compare_servers_vs_partitions`
    point for point — same seed, same arrival and demand draws — but
    wraps the demand model in a per-point
    :class:`~repro.predict.scheduler.DeadlineCappedDemand` whose
    affordable-work budget reflects that point's ``core_speed`` and
    intra-query parallelism ``min(num_cores, P)``.  Because the wrapper
    draws the base demands first, ``scheduler=None`` reproduces the
    plain study's numbers exactly, and scheduled points differ from
    unscheduled ones only where a query was truncated.
    """
    if not specs:
        raise ValueError("need at least one server spec")
    if not partition_counts:
        raise ValueError("need at least one partition count")
    if scheduler is not None and scheduler.deadline_s is None:
        raise ValueError("a scheduled comparison needs a deadline_s")
    points: List[ScheduledComparisonPoint] = []
    for spec in specs:
        for num_partitions in partition_counts:
            point_demands: ServiceDemandModel = demands
            capped: Optional[DeadlineCappedDemand] = None
            if scheduler is not None:
                capped = DeadlineCappedDemand(
                    base=demands,
                    scheduler=scheduler,
                    core_speed=spec.core_speed,
                    parallelism=min(spec.num_cores, num_partitions),
                )
                point_demands = capped
            config = ClusterConfig(
                spec=spec,
                partitioning=replace(
                    cost_model, num_partitions=num_partitions
                ),
            )
            scenario = WorkloadScenario(
                arrivals=PoissonArrivals(rate_qps),
                demands=point_demands,
                num_queries=num_queries,
            )
            result = run_open_loop(config, scenario, seed=seed)
            points.append(
                ScheduledComparisonPoint(
                    server_name=spec.name,
                    num_partitions=num_partitions,
                    summary=result.summary(warmup_fraction=warmup_fraction),
                    utilization=result.utilization(),
                    served_fraction=(
                        capped.last_served_fraction
                        if capped is not None
                        else 1.0
                    ),
                )
            )
    return points


def crossover_partitions(
    points: Sequence[ScheduledComparisonPoint],
    server_name: str,
    p99_target_s: float,
    min_served_fraction: float = 0.0,
) -> Optional[int]:
    """The smallest qualifying partition count for ``server_name``.

    A point qualifies when its p99 meets ``p99_target_s`` *and* its
    served-work fraction is at least ``min_served_fraction`` — a
    scheduler is not allowed to "win" the crossover by discarding the
    workload.  Returns ``None`` when no partition count qualifies.
    """
    if p99_target_s <= 0:
        raise ValueError("p99_target_s must be positive")
    if not 0.0 <= min_served_fraction <= 1.0:
        raise ValueError("min_served_fraction must be in [0, 1]")
    qualifying = [
        point.num_partitions
        for point in points
        if point.server_name == server_name
        and point.summary.p99 <= p99_target_s
        and point.served_fraction >= min_served_fraction
    ]
    return min(qualifying) if qualifying else None
