"""The paper's studies: characterization, partitioning, low power.

This package is the reproduction's primary contribution layer.  Each
module implements one study from the paper's evaluation:

- :mod:`characterization` — service-time distributions and their
  drivers (figures F1/F2, table T2);
- :mod:`calibration` — fits the simulator's service-demand model to
  native-engine measurements (the native → simulated bridge);
- :mod:`loadsweep` — response time vs. offered load (figure F3);
- :mod:`partitioning` — the intra-server partition sweep (figure F4);
- :mod:`capacity` — QoS-bounded maximum throughput (figure F5);
- :mod:`lowpower` — big vs. low-power server comparison and energy
  (figures F6/F7);
- :mod:`breakdown` — latency component breakdown (figure F8);
- :mod:`reporting` — plain-text tables/series shared by all benchmarks.
"""

from repro.core.calibration import (
    CalibrationResult,
    calibrate_from_measurements,
    calibrate_isn,
    cost_model_from_calibration,
    demand_model_from_calibration,
    lognormal_model_from_measurements,
)
from repro.core.capacity import CapacityPoint, capacity_vs_partitions, find_max_qps
from repro.core.characterization import (
    IndexScalingRow,
    ServiceTimeCharacterization,
    TermCountBucket,
    VolumeBucket,
    characterize_service_times,
    index_scaling_study,
    service_time_by_term_count,
    service_time_by_volume,
)
from repro.core.breakdown import BreakdownPoint, breakdown_vs_partitions
from repro.core.bursts import BurstPoint, burst_study, make_mmpp
from repro.core.caching import (
    CachingPoint,
    caching_latency_study,
    hit_rate_vs_capacity,
)
from repro.core.dvfs import DvfsPoint, dvfs_study
from repro.core.fanout import FanoutPoint, fanout_scaling_study
from repro.core.hetero import FleetPoint, fleet_composition_study
from repro.core.hiccups import HiccupPoint, hiccup_study
from repro.core.loadsweep import LoadPoint, run_load_sweep
from repro.core.lowpower import (
    EnergyPoint,
    ServerComparisonPoint,
    compare_servers_vs_partitions,
    matched_qos_energy,
)
from repro.core.partitioning import (
    ImbalancePoint,
    PartitioningPoint,
    imbalance_sensitivity,
    run_partitioning_sweep,
)
from repro.core.provisioning import ProvisioningRow, provisioning_study
from repro.core.replication import ReplicationPoint, replication_policy_study
from repro.core.report import ReportOptions, characterization_report
from repro.core.reporting import format_series, format_table
from repro.core.strategies import StrategyBalance, partition_balance_study

__all__ = [
    "CalibrationResult",
    "calibrate_from_measurements",
    "calibrate_isn",
    "cost_model_from_calibration",
    "demand_model_from_calibration",
    "lognormal_model_from_measurements",
    "ServiceTimeCharacterization",
    "TermCountBucket",
    "VolumeBucket",
    "characterize_service_times",
    "service_time_by_term_count",
    "service_time_by_volume",
    "index_scaling_study",
    "LoadPoint",
    "run_load_sweep",
    "FanoutPoint",
    "fanout_scaling_study",
    "DvfsPoint",
    "dvfs_study",
    "HiccupPoint",
    "hiccup_study",
    "FleetPoint",
    "fleet_composition_study",
    "PartitioningPoint",
    "run_partitioning_sweep",
    "ImbalancePoint",
    "imbalance_sensitivity",
    "CapacityPoint",
    "find_max_qps",
    "capacity_vs_partitions",
    "EnergyPoint",
    "IndexScalingRow",
    "ServerComparisonPoint",
    "compare_servers_vs_partitions",
    "matched_qos_energy",
    "BreakdownPoint",
    "breakdown_vs_partitions",
    "CachingPoint",
    "caching_latency_study",
    "hit_rate_vs_capacity",
    "format_table",
    "format_series",
    "StrategyBalance",
    "partition_balance_study",
    "ReplicationPoint",
    "replication_policy_study",
    "BurstPoint",
    "burst_study",
    "make_mmpp",
    "ProvisioningRow",
    "provisioning_study",
    "ReportOptions",
    "characterization_report",
]
