"""Calibrating the simulator's service-demand model from native runs.

The discrete-event studies are only as good as their service demands.
Calibration runs the *native* engine serially over a query sample,
regresses service time against matched postings volume (the affine
work model ``time ≈ base + per_posting × volume``), and packages the
coefficients so the simulator's :class:`IndexDerivedDemand` reproduces
both the scale and the query-cost correlation of the real engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analysis.distributions import fit_lognormal
from repro.analysis.stats import linear_fit
from repro.corpus.querylog import QueryLog
from repro.engine.driver import QueryMeasurement, replay_serial
from repro.engine.isn import IndexServingNode
from repro.index.inverted import InvertedIndex
from repro.metrics.summary import LatencySummary, summarize
from repro.workload.servicetime import IndexDerivedDemand, LognormalDemand


@dataclass(frozen=True)
class CalibrationResult:
    """The fitted affine work model and its quality.

    ``base_seconds`` is the per-query fixed cost (parse, setup, result
    assembly); ``per_posting_seconds`` the marginal cost of traversing
    one posting.  ``r_squared`` reports how much of the service-time
    variance the postings volume explains.
    """

    base_seconds: float
    per_posting_seconds: float
    r_squared: float
    num_measurements: int
    service_summary: LatencySummary

    def predicted_demand(self, matched_volume: int) -> float:
        """Model-predicted service demand for a given postings volume."""
        return self.base_seconds + self.per_posting_seconds * matched_volume


def calibrate_from_measurements(
    measurements: Sequence[QueryMeasurement],
) -> CalibrationResult:
    """Fit the affine work model to existing serial measurements."""
    if len(measurements) < 2:
        raise ValueError("calibration needs at least two measurements")
    volumes = [measurement.matched_volume for measurement in measurements]
    times = [measurement.service_seconds for measurement in measurements]
    intercept, slope, r_squared = linear_fit(volumes, times)
    # Clamp to physical (non-negative) coefficients: tiny corpora can
    # produce a slightly negative intercept from noise.
    return CalibrationResult(
        base_seconds=max(0.0, intercept),
        per_posting_seconds=max(0.0, slope),
        r_squared=r_squared,
        num_measurements=len(measurements),
        service_summary=summarize(times),
    )


def calibrate_isn(
    isn: IndexServingNode,
    query_log: QueryLog,
    num_queries: int = 200,
    repeats: int = 3,
    seed: int = 0,
) -> CalibrationResult:
    """Measure a popularity-weighted query sample and fit the model."""
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    rng = np.random.default_rng(seed)
    queries = query_log.sample_stream(num_queries, rng)
    measurements = replay_serial(isn, queries, repeats=repeats)
    return calibrate_from_measurements(measurements)


def demand_model_from_calibration(
    calibration: CalibrationResult,
    index: InvertedIndex,
    query_log: QueryLog,
) -> IndexDerivedDemand:
    """Build the simulator demand model carrying the calibrated costs."""
    return IndexDerivedDemand(
        index=index,
        query_log=query_log,
        base_seconds=calibration.base_seconds,
        per_posting_seconds=calibration.per_posting_seconds,
    )


def cost_model_from_calibration(
    calibration: CalibrationResult,
    merge_per_hit_seconds: float = 2e-6,
    top_k: int = 10,
    min_overhead_fraction: float = 0.03,
) -> "PartitionModelConfig":
    """Derive the simulator's partitioning cost model from calibration.

    Each shard search pays roughly the per-query fixed cost (parse is
    shared, but per-shard setup, cursor opening, and heap allocation are
    not), so the per-partition overhead ``α`` is the calibrated
    ``base_seconds``.  The regression intercept is noisy — the fixed
    cost is tiny next to the per-posting term — so ``α`` is floored at
    ``min_overhead_fraction`` of the median measured service time (the
    per-shard setup cost is certainly not *zero*).  Merge cost scales
    with the ``top_k`` hits each extra partition contributes.
    """
    from repro.cluster.server import PartitionModelConfig

    floor = min_overhead_fraction * calibration.service_summary.p50
    return PartitionModelConfig(
        num_partitions=1,
        partition_overhead=max(calibration.base_seconds, floor),
        merge_base=merge_per_hit_seconds * top_k,
        merge_per_partition=merge_per_hit_seconds * top_k,
    )


def lognormal_model_from_measurements(
    measurements: Sequence[QueryMeasurement],
) -> LognormalDemand:
    """Fit a parametric log-normal demand model to serial measurements.

    Useful when an experiment wants the measured *distribution* without
    binding to a specific index/query-log pair.
    """
    times = [measurement.service_seconds for measurement in measurements]
    fit = fit_lognormal(times)
    return LognormalDemand(mu=fit.mu, sigma=fit.sigma)
