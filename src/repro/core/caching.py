"""Query result caching study (extension figure F11).

The benchmark's front-end caches result pages; with Zipfian query
popularity a small cache absorbs a large traffic share.  This study
characterizes (a) the hit rate as a function of cache capacity and
(b) how a cache reshapes the latency distribution at fixed load — the
mean collapses with the hit rate while the p99, which is made of the
long *missing* queries, barely moves.  That asymmetry is why caching
complements rather than replaces intra-server partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.cache.lru import LRUCache
from repro.cluster.simulation import ClusterConfig, run_open_loop
from repro.corpus.querylog import QueryLog
from repro.metrics.summary import LatencySummary
from repro.workload.arrivals import PoissonArrivals
from repro.workload.cached import CachedDemand
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import IndexDerivedDemand


def hit_rate_vs_capacity(
    query_log: QueryLog,
    capacities: Sequence[int],
    num_queries: int = 30_000,
    seed: int = 0,
) -> List[float]:
    """Steady-state LRU hit rate at each cache capacity.

    Replays one popularity-sampled stream per capacity (same seed, so
    streams are identical) and counts hits after a warm-up quarter.
    """
    if not capacities:
        raise ValueError("need at least one capacity")
    if any(capacity <= 0 for capacity in capacities):
        raise ValueError("capacities must be positive")
    rng = np.random.default_rng(seed)
    stream = [query.query_id for query in query_log.sample_stream(num_queries, rng)]
    warmup = num_queries // 4
    rates: List[float] = []
    for capacity in capacities:
        cache: LRUCache[int, bool] = LRUCache(capacity)
        hits = 0
        counted = 0
        for position, query_id in enumerate(stream):
            hit = cache.get(query_id) is not None
            if not hit:
                cache.put(query_id, True)
            if position >= warmup:
                counted += 1
                hits += int(hit)
        rates.append(hits / counted if counted else 0.0)
    return rates


@dataclass(frozen=True)
class CachingPoint:
    """Latency summary with and without the result cache."""

    cache_capacity: int
    hit_rate: float
    summary: LatencySummary
    utilization: float


def caching_latency_study(
    config: ClusterConfig,
    base_demand: IndexDerivedDemand,
    cache_capacities: Sequence[int],
    rate_qps: float,
    hit_cost_seconds: float = 5e-5,
    num_queries: int = 6_000,
    warmup_fraction: float = 0.1,
    seed: int = 0,
) -> List[CachingPoint]:
    """F11: latency at fixed load across cache capacities.

    Capacity 0 is accepted as "no cache" and runs the base demand
    model directly.
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    points: List[CachingPoint] = []
    for capacity in cache_capacities:
        if capacity == 0:
            demands = base_demand
            hit_rate = 0.0
        else:
            cached = CachedDemand(
                base=base_demand,
                cache_capacity=capacity,
                hit_cost_seconds=hit_cost_seconds,
            )
            demands = cached
            hit_rate = cached.measured_hit_rate(seed=seed)
        scenario = WorkloadScenario(
            arrivals=PoissonArrivals(rate_qps),
            demands=demands,
            num_queries=num_queries,
        )
        result = run_open_loop(config, scenario, seed=seed)
        points.append(
            CachingPoint(
                cache_capacity=capacity,
                hit_rate=hit_rate,
                summary=result.summary(warmup_fraction=warmup_fraction),
                utilization=result.utilization(),
            )
        )
    return points
