"""Plain-text table and series rendering.

Every benchmark regenerates its table/figure as aligned text via these
two functions, so bench output is directly comparable run to run and
diff-able against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> str:
    """Render an aligned text table.

    Numbers are right-aligned with compact formatting; strings left-
    aligned.  ``title`` adds a heading line when given.
    """
    rendered_rows: List[List[str]] = [[_render(cell) for cell in row] for row in rows]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered_rows))
        if rendered_rows
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)).rstrip()
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[Cell],
    series: Sequence[tuple],
) -> str:
    """Render a figure as a table of (x, series...) points.

    ``series`` is a sequence of ``(label, values)`` pairs, each the same
    length as ``x_values``.
    """
    for label, values in series:
        if len(values) != len(x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} points, "
                f"expected {len(x_values)}"
            )
    headers = [x_label] + [label for label, _ in series]
    rows = [
        [x] + [values[i] for _, values in series]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)
