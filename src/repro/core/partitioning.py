"""The intra-server partitioning sweep (figure F4).

The paper's central study: hold the server and offered load fixed,
sweep the partition count, and watch the response-time percentiles.
The expected shape — and the paper's finding — is that the tail
(p99) falls steeply as the first few partitions parallelize the
intrinsically long queries, then flattens (or climbs back) once the
per-partition overhead and core contention dominate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

from repro.cluster.server import PartitionModelConfig
from repro.cluster.simulation import ClusterConfig, run_open_loop
from repro.metrics.summary import LatencySummary
from repro.servers.spec import ServerSpec
from repro.sim.network import NetworkModel, NoDelay
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import ServiceDemandModel


@dataclass(frozen=True)
class PartitioningPoint:
    """One partition count's latency and efficiency outcome."""

    num_partitions: int
    summary: LatencySummary
    utilization: float
    achieved_qps: float

    @property
    def tail_ratio(self) -> float:
        """p99 / p50 at this partition count."""
        return self.summary.tail_ratio


@dataclass(frozen=True)
class ImbalancePoint:
    """One shard-skew level's latency outcome."""

    imbalance_concentration: float
    summary: LatencySummary
    mean_straggler_skew: float


def imbalance_sensitivity(
    spec: ServerSpec,
    demands: ServiceDemandModel,
    concentrations: Sequence[float],
    rate_qps: float,
    num_partitions: int = 8,
    cost_model: PartitionModelConfig = PartitionModelConfig(),
    num_queries: int = 5_000,
    warmup_fraction: float = 0.1,
    seed: int = 0,
) -> List[ImbalancePoint]:
    """F21: tail latency vs shard work skew at fixed P and load.

    ``concentrations`` are Dirichlet concentrations of the per-query
    work split (higher = more even); sweeping them quantifies how much
    of partitioning's tail win survives skewed shards — the latency
    consequence of the F14 strategy study.
    """
    if not concentrations:
        raise ValueError("need at least one concentration")
    if any(value <= 0 for value in concentrations):
        raise ValueError("concentrations must be positive")
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    points: List[ImbalancePoint] = []
    for concentration in concentrations:
        config = ClusterConfig(
            spec=spec,
            partitioning=replace(
                cost_model,
                num_partitions=num_partitions,
                imbalance_concentration=concentration,
            ),
        )
        scenario = WorkloadScenario(
            arrivals=PoissonArrivals(rate_qps),
            demands=demands,
            num_queries=num_queries,
        )
        result = run_open_loop(config, scenario, seed=seed)
        skews = [record.straggler_skew for record in result.records]
        points.append(
            ImbalancePoint(
                imbalance_concentration=float(concentration),
                summary=result.summary(warmup_fraction=warmup_fraction),
                mean_straggler_skew=float(sum(skews) / len(skews)),
            )
        )
    return points


def run_partitioning_sweep(
    spec: ServerSpec,
    demands: ServiceDemandModel,
    partition_counts: Sequence[int],
    rate_qps: float,
    cost_model: PartitionModelConfig = PartitionModelConfig(),
    network: NetworkModel = NoDelay(),
    num_queries: int = 5_000,
    warmup_fraction: float = 0.1,
    seed: int = 0,
) -> List[PartitioningPoint]:
    """Sweep ``partition_counts`` at fixed server and offered load.

    ``cost_model`` supplies the partitioning cost coefficients; its
    ``num_partitions`` field is overridden per point.  All points share
    one seed, so arrivals and per-query demands are identical across
    the sweep (common random numbers).
    """
    if not partition_counts:
        raise ValueError("need at least one partition count")
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    points: List[PartitioningPoint] = []
    for num_partitions in partition_counts:
        config = ClusterConfig(
            spec=spec,
            partitioning=replace(cost_model, num_partitions=num_partitions),
            network=network,
        )
        scenario = WorkloadScenario(
            arrivals=PoissonArrivals(rate_qps),
            demands=demands,
            num_queries=num_queries,
        )
        result = run_open_loop(config, scenario, seed=seed)
        points.append(
            PartitioningPoint(
                num_partitions=num_partitions,
                summary=result.summary(warmup_fraction=warmup_fraction),
                utilization=result.utilization(),
                achieved_qps=result.achieved_qps(),
            )
        )
    return points
