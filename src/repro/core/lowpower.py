"""Low-power vs. conventional server study (figures F6/F7).

The paper's second headline result: a low-power server's slow cores
make it uncompetitive at one partition per server, but *intra-query
parallelism is a substitute for core speed* — with enough partitions
its response times converge to the big server's.  F6 sweeps partitions
for both server specs at the same offered load; F7 compares energy per
query at matched QoS operating points.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.cluster.server import PartitionModelConfig
from repro.cluster.simulation import ClusterConfig, run_open_loop
from repro.core.capacity import find_max_qps
from repro.metrics.summary import LatencySummary
from repro.servers.power import PowerModel
from repro.servers.spec import ServerSpec
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import ServiceDemandModel


@dataclass(frozen=True)
class ServerComparisonPoint:
    """One (server, partition count) latency measurement."""

    server_name: str
    num_partitions: int
    summary: LatencySummary
    utilization: float


def compare_servers_vs_partitions(
    specs: Sequence[ServerSpec],
    demands: ServiceDemandModel,
    partition_counts: Sequence[int],
    rate_qps: float,
    cost_model: PartitionModelConfig = PartitionModelConfig(),
    num_queries: int = 5_000,
    warmup_fraction: float = 0.1,
    seed: int = 0,
) -> List[ServerComparisonPoint]:
    """F6: partition sweep for each server at the same offered load.

    The workload (seed) is shared across every point, so differences
    are purely architectural.
    """
    if not specs:
        raise ValueError("need at least one server spec")
    if not partition_counts:
        raise ValueError("need at least one partition count")
    points: List[ServerComparisonPoint] = []
    for spec in specs:
        for num_partitions in partition_counts:
            config = ClusterConfig(
                spec=spec,
                partitioning=replace(
                    cost_model, num_partitions=num_partitions
                ),
            )
            scenario = WorkloadScenario(
                arrivals=PoissonArrivals(rate_qps),
                demands=demands,
                num_queries=num_queries,
            )
            result = run_open_loop(config, scenario, seed=seed)
            points.append(
                ServerComparisonPoint(
                    server_name=spec.name,
                    num_partitions=num_partitions,
                    summary=result.summary(warmup_fraction=warmup_fraction),
                    utilization=result.utilization(),
                )
            )
    return points


@dataclass(frozen=True)
class EnergyPoint:
    """F7 row: one server's matched-QoS operating point and energy."""

    server_name: str
    num_partitions: int
    qps: float
    p99_seconds: float
    utilization: float
    power_watts: float
    energy_per_query_joules: float
    meets_qos: bool


def matched_qos_energy(
    specs: Sequence[ServerSpec],
    demands: ServiceDemandModel,
    qos_p99_seconds: float,
    partition_counts: Sequence[int],
    cost_model: PartitionModelConfig = PartitionModelConfig(),
    num_queries: int = 4_000,
    seed: int = 0,
) -> List[EnergyPoint]:
    """F7: for each server, its best QoS-compliant operating point.

    For every spec, every partition count is capacity-searched under
    the QoS target and the highest-throughput compliant point is kept;
    power comes from the linear utilization model at that point.
    """
    if not specs:
        raise ValueError("need at least one server spec")
    rows: List[EnergyPoint] = []
    for spec in specs:
        best: Optional[EnergyPoint] = None
        for num_partitions in partition_counts:
            config = ClusterConfig(
                spec=spec,
                partitioning=replace(
                    cost_model, num_partitions=num_partitions
                ),
            )
            capacity = find_max_qps(
                config,
                demands,
                qos_p99_seconds,
                num_queries=num_queries,
                seed=seed,
            )
            if capacity.max_qps <= 0:
                continue
            power_model = PowerModel(spec)
            power = power_model.power_at(min(1.0, capacity.utilization_at_max))
            candidate = EnergyPoint(
                server_name=spec.name,
                num_partitions=num_partitions,
                qps=capacity.max_qps,
                p99_seconds=capacity.p99_at_max,
                utilization=capacity.utilization_at_max,
                power_watts=power,
                energy_per_query_joules=power / capacity.max_qps,
                meets_qos=True,
            )
            if best is None or candidate.qps > best.qps:
                best = candidate
        if best is None:
            best = EnergyPoint(
                server_name=spec.name,
                num_partitions=max(partition_counts),
                qps=0.0,
                p99_seconds=float("inf"),
                utilization=0.0,
                power_watts=PowerModel(spec).power_at(0.0),
                energy_per_query_joules=float("inf"),
                meets_qos=False,
            )
        rows.append(best)
    return rows
