"""Service-time characterization of the native benchmark.

Implements the paper's characterization figures:

- **F1** — the service-time distribution: heavy-tailed, log-normal
  body, large p99/p50 ratio;
- **F2** — what drives service time: query term count and, more
  fundamentally, the matched postings volume;
- **T2** — how service time scales with index (corpus) size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.distributions import ExponentialFit, LognormalFit, fit_exponential, fit_lognormal
from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.querylog import QueryLog, QueryLogGenerator
from repro.engine.driver import QueryMeasurement, replay_serial
from repro.engine.isn import IndexServingNode
from repro.index.partitioner import partition_index
from repro.index.stats import IndexStatistics, compute_statistics
from repro.metrics.summary import LatencySummary, summarize


@dataclass(frozen=True)
class ServiceTimeCharacterization:
    """The F1 result: distribution statistics and parametric fits."""

    summary: LatencySummary
    lognormal: LognormalFit
    exponential: ExponentialFit
    measurements: List[QueryMeasurement]

    @property
    def tail_ratio(self) -> float:
        """p99 / p50 of the measured service times."""
        return self.summary.tail_ratio

    @property
    def lognormal_fits_better(self) -> bool:
        """True when log-normal beats exponential on KS distance."""
        return self.lognormal.ks_distance < self.exponential.ks_distance

    def samples(self) -> np.ndarray:
        """Measured service times in seconds."""
        return np.array(
            [measurement.service_seconds for measurement in self.measurements]
        )


def characterize_service_times(
    isn: IndexServingNode,
    query_log: QueryLog,
    num_queries: int = 500,
    repeats: int = 1,
    seed: int = 0,
) -> ServiceTimeCharacterization:
    """Replay a popularity-weighted stream serially and characterize it."""
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    rng = np.random.default_rng(seed)
    stream = query_log.sample_stream(num_queries, rng)
    measurements = replay_serial(isn, stream, repeats=repeats)
    times = [measurement.service_seconds for measurement in measurements]
    return ServiceTimeCharacterization(
        summary=summarize(times),
        lognormal=fit_lognormal(times),
        exponential=fit_exponential(times),
        measurements=measurements,
    )


@dataclass(frozen=True)
class TermCountBucket:
    """F2a row: service-time statistics for queries of one term count."""

    term_count: int
    num_queries: int
    mean_seconds: float
    p99_seconds: float
    mean_volume: float


def service_time_by_term_count(
    measurements: Sequence[QueryMeasurement],
) -> List[TermCountBucket]:
    """Group measurements by raw query term count."""
    if not measurements:
        raise ValueError("no measurements to bucket")
    buckets: dict = {}
    for measurement in measurements:
        buckets.setdefault(measurement.num_raw_terms, []).append(measurement)
    rows: List[TermCountBucket] = []
    for term_count in sorted(buckets):
        group = buckets[term_count]
        times = np.array([m.service_seconds for m in group])
        rows.append(
            TermCountBucket(
                term_count=term_count,
                num_queries=len(group),
                mean_seconds=float(times.mean()),
                p99_seconds=float(np.percentile(times, 99, method="lower")),
                mean_volume=float(
                    np.mean([m.matched_volume for m in group])
                ),
            )
        )
    return rows


@dataclass(frozen=True)
class VolumeBucket:
    """F2b row: service-time statistics per matched-volume quantile."""

    low_volume: int
    high_volume: int
    num_queries: int
    mean_seconds: float


def service_time_by_volume(
    measurements: Sequence[QueryMeasurement], num_buckets: int = 4
) -> List[VolumeBucket]:
    """Group measurements into matched-volume quantile buckets."""
    if not measurements:
        raise ValueError("no measurements to bucket")
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    ordered = sorted(measurements, key=lambda m: m.matched_volume)
    boundaries = np.linspace(0, len(ordered), num_buckets + 1).astype(int)
    rows: List[VolumeBucket] = []
    for bucket_index in range(num_buckets):
        group = ordered[boundaries[bucket_index] : boundaries[bucket_index + 1]]
        if not group:
            continue
        rows.append(
            VolumeBucket(
                low_volume=group[0].matched_volume,
                high_volume=group[-1].matched_volume,
                num_queries=len(group),
                mean_seconds=float(
                    np.mean([m.service_seconds for m in group])
                ),
            )
        )
    return rows


@dataclass(frozen=True)
class IndexScalingRow:
    """T2 row: one corpus size's index and service-time statistics."""

    num_documents: int
    index_stats: IndexStatistics
    service_summary: LatencySummary


def index_scaling_study(
    corpus_configs: Sequence[CorpusConfig],
    queries_per_size: int = 100,
    repeats: int = 1,
    seed: int = 0,
) -> List[IndexScalingRow]:
    """Build an index per corpus config and characterize each (T2).

    All configs should share the same vocabulary so the query log stays
    comparable across sizes.
    """
    if not corpus_configs:
        raise ValueError("need at least one corpus config")
    rows: List[IndexScalingRow] = []
    for config in corpus_configs:
        generator = CorpusGenerator(config)
        collection = generator.generate()
        partitioned = partition_index(collection, 1)
        query_log = QueryLogGenerator(generator.vocabulary).generate()
        with IndexServingNode(partitioned) as isn:
            characterization = characterize_service_times(
                isn,
                query_log,
                num_queries=queries_per_size,
                repeats=repeats,
                seed=seed,
            )
        rows.append(
            IndexScalingRow(
                num_documents=len(collection),
                index_stats=compute_statistics(
                    partitioned[0].index, include_compressed_size=False
                ),
                service_summary=characterization.summary,
            )
        )
    return rows
