"""GC-pause study (extension figure F15).

The benchmark's index serving node is a JVM process, and stop-the-world
garbage collection pauses are a well-known source of its tail latency.
This study injects a calibrated pause process into the simulated server
and re-runs the partition sweep.  The finding it demonstrates: pauses
put a **floor** under the tail that intra-server partitioning cannot
remove — a pause freezes every partition's core at once, so the
mechanism that shortens intrinsically-long queries is powerless against
it.  (The remedy in practice is heap tuning or more ISNs, not more
partitions.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.cluster.server import PartitionModelConfig
from repro.cluster.simulation import ClusterConfig, run_open_loop
from repro.metrics.summary import LatencySummary
from repro.servers.spec import ServerSpec
from repro.sim.hiccups import HiccupConfig
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import ServiceDemandModel


@dataclass(frozen=True)
class HiccupPoint:
    """One (pauses on/off, partition count) latency outcome."""

    num_partitions: int
    hiccups_enabled: bool
    summary: LatencySummary


def hiccup_study(
    spec: ServerSpec,
    demands: ServiceDemandModel,
    partition_counts: Sequence[int],
    rate_qps: float,
    hiccups: HiccupConfig,
    cost_model: PartitionModelConfig = PartitionModelConfig(),
    num_queries: int = 5_000,
    warmup_fraction: float = 0.1,
    seed: int = 0,
) -> List[HiccupPoint]:
    """F15: partition sweep with and without GC-style pauses.

    Returns two points per partition count (pauses off, then on), all
    sharing the same workload seed.
    """
    if not partition_counts:
        raise ValueError("need at least one partition count")
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    points: List[HiccupPoint] = []
    for num_partitions in partition_counts:
        for pause_config in (None, hiccups):
            config = ClusterConfig(
                spec=spec,
                partitioning=replace(
                    cost_model, num_partitions=num_partitions
                ),
                hiccups=pause_config,
            )
            scenario = WorkloadScenario(
                arrivals=PoissonArrivals(rate_qps),
                demands=demands,
                num_queries=num_queries,
            )
            result = run_open_loop(config, scenario, seed=seed)
            points.append(
                HiccupPoint(
                    num_partitions=num_partitions,
                    hiccups_enabled=pause_config is not None,
                    summary=result.summary(warmup_fraction=warmup_fraction),
                )
            )
    return points
