"""Cluster provisioning table (extension table T3).

The datacenter-level consequence of the low-power result: to serve a
target aggregate load under a tail-latency SLA, how many servers —
and how many watts — does each server class need?  Per-node capacity
comes from the QoS-bounded throughput search (each node at its best
partition count); node counts are ``ceil(target / per-node capacity)``;
power is the linear model at each node's operating utilization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.cluster.server import PartitionModelConfig
from repro.cluster.simulation import ClusterConfig
from repro.core.capacity import find_max_qps
from repro.servers.power import PowerModel
from repro.servers.spec import ServerSpec
from repro.workload.servicetime import ServiceDemandModel


@dataclass(frozen=True)
class ProvisioningRow:
    """One server class's deployment for the target load."""

    server_name: str
    best_partitions: int
    per_node_qps: float
    nodes_needed: int
    node_utilization: float
    total_power_watts: float
    watts_per_kqps: float
    meets_qos: bool


def provisioning_study(
    specs: Sequence[ServerSpec],
    demands: ServiceDemandModel,
    target_qps: float,
    qos_p99_seconds: float,
    partition_counts: Sequence[int] = (1, 2, 4, 8, 16),
    cost_model: PartitionModelConfig = PartitionModelConfig(),
    num_queries: int = 4_000,
    seed: int = 0,
) -> List[ProvisioningRow]:
    """T3: nodes and power per server class for ``target_qps``.

    Each class is evaluated at its best partition count (highest
    QoS-compliant per-node throughput); a class that cannot meet the
    QoS at any partition count is reported with ``meets_qos=False``.
    """
    if target_qps <= 0:
        raise ValueError("target_qps must be positive")
    if not specs:
        raise ValueError("need at least one server spec")
    rows: List[ProvisioningRow] = []
    for spec in specs:
        best: Optional[tuple] = None
        for num_partitions in partition_counts:
            config = ClusterConfig(
                spec=spec,
                partitioning=replace(
                    cost_model, num_partitions=num_partitions
                ),
            )
            capacity = find_max_qps(
                config,
                demands,
                qos_p99_seconds,
                num_queries=num_queries,
                seed=seed,
            )
            if capacity.max_qps <= 0:
                continue
            if best is None or capacity.max_qps > best[0]:
                best = (
                    capacity.max_qps,
                    num_partitions,
                    capacity.utilization_at_max,
                )
        if best is None:
            rows.append(
                ProvisioningRow(
                    server_name=spec.name,
                    best_partitions=0,
                    per_node_qps=0.0,
                    nodes_needed=0,
                    node_utilization=0.0,
                    total_power_watts=float("inf"),
                    watts_per_kqps=float("inf"),
                    meets_qos=False,
                )
            )
            continue
        per_node_qps, best_partitions, utilization_at_max = best
        nodes = math.ceil(target_qps / per_node_qps)
        # Spread the load evenly over the deployed nodes: actual
        # per-node utilization scales down from the capacity point.
        per_node_load = target_qps / nodes
        node_utilization = utilization_at_max * per_node_load / per_node_qps
        power_model = PowerModel(spec)
        node_power = power_model.power_at(min(1.0, node_utilization))
        total_power = node_power * nodes
        rows.append(
            ProvisioningRow(
                server_name=spec.name,
                best_partitions=best_partitions,
                per_node_qps=per_node_qps,
                nodes_needed=nodes,
                node_utilization=node_utilization,
                total_power_watts=total_power,
                watts_per_kqps=total_power / (target_qps / 1_000.0),
                meets_qos=True,
            )
        )
    return rows
