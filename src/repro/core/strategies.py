"""Partition-strategy ablation (extension figure F14).

The benchmark assigns documents to intra-server partitions in crawl
order; whether that behaves like round-robin or like contiguous ranges
matters because crawls have topical locality.  This study partitions a
corpus (optionally with crawl-order topic drift) under each strategy
and measures, per query, how evenly the query's matched postings
spread across shards.  Skewed shards mean one partition task carries
most of the work — exactly the fork-join straggler that erases the
tail-latency benefit of partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.corpus.documents import DocumentCollection
from repro.corpus.querylog import QueryLog
from repro.index.partitioner import PartitionStrategy, partition_index
from repro.search.query import QueryParser
from repro.text.analyzer import Analyzer


@dataclass(frozen=True)
class StrategyBalance:
    """Shard work balance of one partitioning strategy.

    ``imbalance`` is the mean over queries of
    ``max_shard_volume / mean_shard_volume`` — 1.0 is a perfect split,
    ``P`` the worst case (all work on one shard).
    """

    strategy: PartitionStrategy
    num_partitions: int
    imbalance: float
    worst_query_imbalance: float
    mean_shard_documents: float
    shard_document_spread: int


def partition_balance_study(
    collection: DocumentCollection,
    query_log: QueryLog,
    num_partitions: int,
    strategies: Sequence[PartitionStrategy] = tuple(PartitionStrategy),
    num_queries: int = 200,
    analyzer: Analyzer | None = None,
    seed: int = 0,
) -> List[StrategyBalance]:
    """F14: per-strategy shard work balance on ``collection``."""
    if num_partitions <= 1:
        raise ValueError("balance needs at least two partitions")
    if not strategies:
        raise ValueError("need at least one strategy")
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")

    rng = np.random.default_rng(seed)
    stream = query_log.sample_stream(num_queries, rng)

    rows: List[StrategyBalance] = []
    for strategy in strategies:
        partitioned = partition_index(
            collection, num_partitions, analyzer=analyzer, strategy=strategy
        )
        parser = QueryParser(partitioned[0].index.analyzer)
        ratios: List[float] = []
        for query in stream:
            terms = list(parser.parse(query.text).terms)
            volumes = np.array(
                [
                    shard.index.matched_postings_volume(terms)
                    for shard in partitioned
                ],
                dtype=np.float64,
            )
            mean_volume = volumes.mean()
            if mean_volume == 0:
                continue  # query matches nothing anywhere
            ratios.append(float(volumes.max() / mean_volume))
        if not ratios:
            raise ValueError("no query matched any shard")
        shard_sizes = [shard.num_documents for shard in partitioned]
        rows.append(
            StrategyBalance(
                strategy=strategy,
                num_partitions=num_partitions,
                imbalance=float(np.mean(ratios)),
                worst_query_imbalance=float(np.max(ratios)),
                mean_shard_documents=float(np.mean(shard_sizes)),
                shard_document_spread=int(max(shard_sizes) - min(shard_sizes)),
            )
        )
    return rows
