"""DVFS study (extension figure F13): frequency vs. partitioning.

The low-power result (F6) compares two machines; DVFS asks the same
question *within* one machine: if the big server's cores are clocked
down (cubic dynamic-power savings), how much response time is lost —
and can intra-server partitioning buy it back?  For each frequency
factor we report latency and energy per query at a fixed load, plus
the smallest partition count that restores the full-frequency p99.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.cluster.server import PartitionModelConfig
from repro.cluster.simulation import ClusterConfig, run_open_loop
from repro.metrics.summary import LatencySummary
from repro.servers.power import PowerModel
from repro.servers.spec import ServerSpec
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import ServiceDemandModel


@dataclass(frozen=True)
class DvfsPoint:
    """One frequency setting's latency/energy outcome."""

    frequency_factor: float
    num_partitions: int
    summary: LatencySummary
    utilization: float
    power_watts: float
    energy_per_query_joules: float
    compensating_partitions: Optional[int]


def _simulate(
    spec: ServerSpec,
    demands: ServiceDemandModel,
    cost_model: PartitionModelConfig,
    num_partitions: int,
    rate_qps: float,
    num_queries: int,
    warmup_fraction: float,
    seed: int,
):
    config = ClusterConfig(
        spec=spec,
        partitioning=replace(cost_model, num_partitions=num_partitions),
    )
    scenario = WorkloadScenario(
        arrivals=PoissonArrivals(rate_qps),
        demands=demands,
        num_queries=num_queries,
    )
    result = run_open_loop(config, scenario, seed=seed)
    return result.summary(warmup_fraction), result.utilization()


def dvfs_study(
    spec: ServerSpec,
    demands: ServiceDemandModel,
    frequency_factors: Sequence[float],
    rate_qps: float,
    cost_model: PartitionModelConfig = PartitionModelConfig(),
    compensation_partitions: Sequence[int] = (1, 2, 4, 8, 16),
    num_queries: int = 5_000,
    warmup_fraction: float = 0.1,
    seed: int = 0,
) -> List[DvfsPoint]:
    """F13: sweep core frequency at fixed load and partition count 1.

    For every down-clocked point, additionally search
    ``compensation_partitions`` for the smallest partition count whose
    p99 is back at (or below) the full-frequency P=1 p99; None when no
    tried count compensates.
    """
    if not frequency_factors:
        raise ValueError("need at least one frequency factor")
    if any(factor <= 0 for factor in frequency_factors):
        raise ValueError("frequency factors must be positive")
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")

    baseline_summary, _ = _simulate(
        spec, demands, cost_model, 1, rate_qps, num_queries,
        warmup_fraction, seed,
    )
    target_p99 = baseline_summary.p99

    points: List[DvfsPoint] = []
    for factor in frequency_factors:
        scaled = spec.scaled(factor)
        summary, utilization = _simulate(
            scaled, demands, cost_model, 1, rate_qps, num_queries,
            warmup_fraction, seed,
        )
        power = PowerModel(scaled).power_at(min(1.0, utilization))
        compensating: Optional[int] = None
        if summary.p99 <= target_p99:
            compensating = 1
        else:
            for num_partitions in sorted(compensation_partitions):
                if num_partitions == 1:
                    continue
                candidate, _ = _simulate(
                    scaled, demands, cost_model, num_partitions, rate_qps,
                    num_queries, warmup_fraction, seed,
                )
                if candidate.p99 <= target_p99:
                    compensating = num_partitions
                    break
        points.append(
            DvfsPoint(
                frequency_factor=float(factor),
                num_partitions=1,
                summary=summary,
                utilization=utilization,
                power_watts=power,
                energy_per_query_joules=power / rate_qps,
                compensating_partitions=compensating,
            )
        )
    return points
