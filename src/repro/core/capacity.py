"""QoS-bounded maximum throughput (figure F5).

Web search provisions for a tail-latency SLA, so "throughput" means
*the largest sustainable QPS whose p99 stays under the target*.  The
search is a bisection over the offered rate, each probe being a full
open-loop simulation — slow but honest, since no closed form exists
for fork-join p99 under Zipf-skewed demands.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.cluster.server import PartitionModelConfig
from repro.cluster.simulation import ClusterConfig, run_open_loop
from repro.servers.spec import ServerSpec
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import ServiceDemandModel


@dataclass(frozen=True)
class CapacityPoint:
    """The QoS-bounded capacity of one configuration."""

    num_partitions: int
    max_qps: float
    p99_at_max: float
    qos_p99_seconds: float
    utilization_at_max: float


def _p99_at_rate(
    config: ClusterConfig,
    demands: ServiceDemandModel,
    rate: float,
    num_queries: int,
    warmup_fraction: float,
    seed: int,
) -> tuple:
    scenario = WorkloadScenario(
        arrivals=PoissonArrivals(rate), demands=demands, num_queries=num_queries
    )
    result = run_open_loop(config, scenario, seed=seed)
    return (
        result.summary(warmup_fraction=warmup_fraction).p99,
        result.utilization(),
    )


def find_max_qps(
    config: ClusterConfig,
    demands: ServiceDemandModel,
    qos_p99_seconds: float,
    num_queries: int = 4_000,
    warmup_fraction: float = 0.1,
    tolerance_qps: float = 1.0,
    seed: int = 0,
) -> CapacityPoint:
    """Bisect the offered rate for the largest QoS-compliant load.

    The upper bracket is the server's work-conservation limit
    (``capacity / total work per query``); if even a trickle load
    violates the QoS the returned ``max_qps`` is 0.
    """
    if qos_p99_seconds <= 0:
        raise ValueError("qos_p99_seconds must be positive")
    mean_work = config.partitioning.total_work(demands.mean_demand())
    saturation = config.spec.compute_capacity / mean_work
    low = 0.0
    high = saturation * 0.98  # bisection stays in the stable region

    p99_low, util_low = _p99_at_rate(
        config, demands, max(high * 0.01, tolerance_qps), num_queries,
        warmup_fraction, seed,
    )
    if p99_low > qos_p99_seconds:
        return CapacityPoint(
            num_partitions=config.partitioning.num_partitions,
            max_qps=0.0,
            p99_at_max=p99_low,
            qos_p99_seconds=qos_p99_seconds,
            utilization_at_max=util_low,
        )

    best_rate = max(high * 0.01, tolerance_qps)
    best_p99, best_util = p99_low, util_low
    low = best_rate
    while high - low > tolerance_qps:
        middle = (low + high) / 2.0
        p99, util = _p99_at_rate(
            config, demands, middle, num_queries, warmup_fraction, seed
        )
        if p99 <= qos_p99_seconds:
            low, best_rate, best_p99, best_util = middle, middle, p99, util
        else:
            high = middle
    return CapacityPoint(
        num_partitions=config.partitioning.num_partitions,
        max_qps=best_rate,
        p99_at_max=best_p99,
        qos_p99_seconds=qos_p99_seconds,
        utilization_at_max=best_util,
    )


def capacity_vs_partitions(
    spec: ServerSpec,
    demands: ServiceDemandModel,
    partition_counts: Sequence[int],
    qos_p99_seconds: float,
    cost_model: PartitionModelConfig = PartitionModelConfig(),
    num_queries: int = 4_000,
    tolerance_qps: float = 2.0,
    seed: int = 0,
) -> List[CapacityPoint]:
    """F5: QoS-bounded capacity at each partition count."""
    if not partition_counts:
        raise ValueError("need at least one partition count")
    points: List[CapacityPoint] = []
    for num_partitions in partition_counts:
        config = ClusterConfig(
            spec=spec,
            partitioning=replace(cost_model, num_partitions=num_partitions),
        )
        points.append(
            find_max_qps(
                config,
                demands,
                qos_p99_seconds,
                num_queries=num_queries,
                tolerance_qps=tolerance_qps,
                seed=seed,
            )
        )
    return points
