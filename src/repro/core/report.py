"""One-call characterization report.

``characterization_report`` runs the native characterization pipeline
end to end — index statistics, workload profile, service-time
distribution, drivers, calibration — and renders one Markdown document.
It is the "give me the paper's Section 3 for *my* configuration" entry
point, used by downstream adopters who bring their own corpus or query
log.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.core.calibration import calibrate_from_measurements
from repro.core.characterization import (
    characterize_service_times,
    service_time_by_term_count,
    service_time_by_volume,
)
from repro.core.reporting import format_table
from repro.corpus.loganalysis import profile_query_log
from repro.engine.service import SearchService
from repro.index.stats import compute_statistics


@dataclass(frozen=True)
class ReportOptions:
    """Sampling depth of the report's measurements."""

    num_queries: int = 300
    repeats: int = 2
    profile_stream_length: int = 30_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_queries <= 0 or self.repeats <= 0:
            raise ValueError("num_queries and repeats must be positive")
        if self.profile_stream_length <= 0:
            raise ValueError("profile_stream_length must be positive")


def characterization_report(
    service: SearchService,
    options: ReportOptions = ReportOptions(),
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Characterize ``service`` and render a Markdown report.

    When ``path`` is given the report is also written there.  The
    service should be a single-partition instance (serial service times
    are the characterization's raw material).
    """
    index = service.partitioned[0].index
    stats = compute_statistics(index, include_compressed_size=True)
    profile = profile_query_log(
        service.query_log,
        stream_length=options.profile_stream_length,
        seed=options.seed,
    )
    characterization = characterize_service_times(
        service.isn,
        service.query_log,
        num_queries=options.num_queries,
        repeats=options.repeats,
        seed=options.seed,
    )
    calibration = calibrate_from_measurements(characterization.measurements)
    summary = characterization.summary.scaled(1000.0)

    sections = []
    sections.append("# Web search benchmark characterization report\n")
    sections.append(
        f"Configuration: {stats.num_documents} documents, "
        f"{service.partitioned.num_partitions} partition(s), "
        f"{profile.num_unique_queries} unique queries.\n"
    )

    sections.append("## Index statistics\n")
    sections.append(
        "```\n"
        + format_table(
            ["parameter", "value"],
            [[k, v] for k, v in stats.as_rows().items()],
        )
        + "\n```\n"
    )

    sections.append("## Workload profile\n")
    sections.append(
        "```\n"
        + format_table(
            ["property", "value"],
            [
                ["mean terms per query",
                 round(profile.mean_terms_per_query, 2)],
                ["popularity Zipf exponent (measured)",
                 round(profile.estimated_popularity_exponent, 3)],
                ["top 1% traffic share",
                 round(profile.top_1pct_traffic_share, 3)],
                ["top 10% traffic share",
                 round(profile.top_10pct_traffic_share, 3)],
            ],
        )
        + "\n```\n"
    )

    sections.append("## Service-time distribution\n")
    better = (
        "log-normal"
        if characterization.lognormal_fits_better
        else "exponential"
    )
    sections.append(
        "```\n"
        + format_table(
            ["statistic", "value (ms)"],
            [
                ["mean", summary.mean],
                ["p50", summary.p50],
                ["p90", summary.p90],
                ["p99", summary.p99],
                ["max", summary.max],
            ],
        )
        + "\n```\n"
        + f"\np99/p50 tail ratio: {characterization.tail_ratio:.2f}; "
        f"better parametric fit: **{better}** "
        f"(KS {characterization.lognormal.ks_distance:.3f} vs "
        f"{characterization.exponential.ks_distance:.3f}).\n"
    )

    sections.append("## What drives service time\n")
    term_rows = [
        [row.term_count, row.num_queries, row.mean_seconds * 1000]
        for row in service_time_by_term_count(characterization.measurements)
    ]
    volume_rows = [
        [f"[{row.low_volume}, {row.high_volume}]",
         row.mean_seconds * 1000]
        for row in service_time_by_volume(
            characterization.measurements, num_buckets=4
        )
    ]
    sections.append(
        "```\n"
        + format_table(["terms", "queries", "mean_ms"], term_rows)
        + "\n\n"
        + format_table(["volume quartile", "mean_ms"], volume_rows)
        + "\n```\n"
    )

    sections.append("## Simulator calibration\n")
    sections.append(
        f"Affine work model: `time ≈ "
        f"{calibration.base_seconds * 1000:.3f} ms + "
        f"{calibration.per_posting_seconds * 1e9:.1f} ns × postings` "
        f"(R² = {calibration.r_squared:.3f}, "
        f"{calibration.num_measurements} measurements).\n"
    )

    report = "\n".join(sections)
    if path is not None:
        Path(path).write_text(report, encoding="utf-8")
    return report
