"""Traversal strategies and per-query traversal statistics.

The engine evaluates ranked disjunctions three ways:

- ``EXHAUSTIVE`` — the benchmark-faithful baseline: every posting of
  every query term is scored (Lucene's classic DAAT; TAAT is the
  vectorized equivalent).  Service time is proportional to the matched
  postings volume — the paper's work model.
- ``WAND`` — Broder et al.'s weak-AND: documents whose summed per-term
  score *upper bounds* cannot beat the current top-k threshold are
  skipped without scoring.
- ``BLOCK_MAX_WAND`` — Ding & Suel's refinement: postings are grouped
  into fixed-size blocks carrying local maxima, so the traversal moves
  a *shallow* pointer over block metadata and descends into a block
  only when its much tighter local upper bound can still beat the
  threshold.

All three return bit-identical top-k results; they differ only in how
many documents they score, which is exactly the pruning-vs-work
tradeoff the fig25 ablation sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["TraversalStrategy", "TraversalStats"]


class TraversalStrategy(Enum):
    """How the query's postings are traversed and pruned."""

    EXHAUSTIVE = "exhaustive"
    WAND = "wand"
    BLOCK_MAX_WAND = "block_max_wand"

    @property
    def algorithm(self) -> str:
        """The :class:`~repro.search.executor.Searcher` algorithm name."""
        if self is TraversalStrategy.EXHAUSTIVE:
            return "daat"
        return self.value

    @property
    def prunes(self) -> bool:
        """True when the strategy skips documents (WAND family)."""
        return self is not TraversalStrategy.EXHAUSTIVE

    @classmethod
    def coerce(cls, value: "TraversalStrategy | str") -> "TraversalStrategy":
        """Normalize a strategy from an enum member or a name.

        Accepts the enum values (``"exhaustive"``, ``"wand"``,
        ``"block_max_wand"``), dashed spellings (``"block-max-wand"``),
        and the legacy executor algorithm names (``"daat"``/``"taat"``
        are exhaustive traversals).
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            name = value.strip().lower().replace("-", "_")
            name = {"daat": "exhaustive", "taat": "exhaustive"}.get(name, name)
            try:
                return cls(name)
            except ValueError:
                pass
        raise ValueError(
            f"unknown traversal strategy {value!r}; choose from "
            f"{[member.value for member in cls]}"
        )


@dataclass
class TraversalStats:
    """Per-query traversal accounting filled in by the scoring loops.

    ``docs_scored`` counts documents whose full score was computed;
    ``pivot_skips`` counts WAND pivot advances that skipped candidates
    without scoring; ``block_skips`` counts whole postings blocks
    bypassed by block-max metadata (BMW only).
    """

    docs_scored: int = 0
    pivot_skips: int = 0
    block_skips: int = 0
    #: True when a deadline budget stopped the traversal early
    #: (approximate top-k); always False on an exact run.
    truncated: bool = False
