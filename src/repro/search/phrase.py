"""Phrase query evaluation over a positional index.

A phrase query ("web search benchmark") matches documents containing
the terms at consecutive positions.  Evaluation is the classic
positional intersection: intersect the doc-id postings of all phrase
terms, then within each candidate document check for positions
``p, p+1, …, p+n-1``.  Matches are scored with BM25 using the *phrase
frequency* as the term frequency, mirroring Lucene's PhraseQuery.

Phrase evaluation touches the same postings as a conjunctive query
plus the position lists, so it is strictly more expensive — one of the
functionality cost contrasts the characterization reports.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.index.positional import PositionalIndex, PositionalPostings
from repro.search.scoring import BM25Scorer
from repro.search.topk import SearchHit, TopKHeap


def phrase_frequency(
    position_lists: List[np.ndarray],
) -> int:
    """Count occurrences of the full phrase given per-term positions.

    ``position_lists[i]`` holds the positions of phrase term ``i`` in
    one document; an occurrence starts at ``p`` iff term ``i`` occurs
    at ``p + i`` for every ``i``.
    """
    if not position_lists:
        return 0
    candidates = position_lists[0]
    for offset, positions in enumerate(position_lists[1:], start=1):
        shifted = positions - offset
        candidates = np.intersect1d(candidates, shifted, assume_unique=True)
        if candidates.size == 0:
            return 0
    return int(candidates.size)


def parse_phrase(analyzer, text: str) -> Tuple[str, ...]:
    """Analyze a phrase string into its ordered term sequence.

    Unlike bag-of-words parsing, duplicates are kept and order matters.
    """
    return tuple(analyzer.analyze(text))


def score_phrase(
    positional: PositionalIndex,
    phrase_terms: Tuple[str, ...],
    k: int = 10,
    scorer: Optional[BM25Scorer] = None,
) -> List[SearchHit]:
    """Evaluate a phrase query; returns the top-k hits, best first.

    Single-term "phrases" degrade gracefully to ordinary term queries.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if not phrase_terms:
        return []
    index = positional.index
    if scorer is None:
        scorer = BM25Scorer(
            num_documents=index.num_documents,
            average_doc_length=index.average_doc_length,
        )

    term_postings: List[PositionalPostings] = []
    for term in phrase_terms:
        postings = positional.positions_for(term)
        if postings is None:
            return []  # a missing term can never form the phrase
        term_postings.append(postings)

    # Candidate docs: intersection of all terms' doc ids.
    candidates = term_postings[0].doc_ids
    for postings in term_postings[1:]:
        candidates = np.intersect1d(
            candidates, postings.doc_ids, assume_unique=True
        )
        if candidates.size == 0:
            return []

    # The phrase's idf: Lucene sums the constituent terms' idfs.
    idf = sum(
        scorer.idf(index.document_frequency(term)) for term in phrase_terms
    )

    heap = TopKHeap(k)
    doc_lengths = index.doc_lengths
    for doc_id in candidates:
        frequency = phrase_frequency(
            [
                postings.positions_in(int(doc_id))
                for postings in term_postings
            ]
        )
        if frequency == 0:
            continue
        score = scorer.score(frequency, int(doc_lengths[doc_id]), idf)
        heap.offer(int(doc_id), score)
    return heap.results()
