"""Merging per-shard top-k results.

With intra-server partitioning, each shard returns its local top-k; the
merge keeps the global best k by score.  The benchmark (like Lucene's
multi-segment search at the time) merges by score with shard-local
statistics, which is exactly what this function does — the ranking
deviation this introduces versus an unpartitioned index is one of the
functional behaviours the characterization study measures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.search.topk import SearchHit, TopKHeap


def merge_shard_results(
    shard_hits: Iterable[Sequence[SearchHit]], k: int
) -> List[SearchHit]:
    """Merge per-shard hit lists into the global top-k (best first).

    Doc ids must already be collection-global (``ShardSearcher`` does
    this); ties break toward the lower doc id, as in single-index search.
    """
    heap = TopKHeap(k)
    for hits in shard_hits:
        for hit in hits:
            heap.offer(hit.doc_id, hit.score)
    return heap.results()
