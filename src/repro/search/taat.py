"""Term-at-a-time (TAAT) query evaluation.

TAAT processes one full posting list at a time, accumulating partial
scores in a dense per-document array.  It is the classic alternative
to DAAT; we vectorize the accumulation with numpy, which makes TAAT the
fastest execution path in this pure-Python engine and a useful
cross-check of DAAT's results (both must produce identical rankings).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.index.inverted import InvertedIndex
from repro.search.query import ParsedQuery, QueryMode
from repro.search.scoring import BM25Scorer, Scorer, resolve_idf
from repro.search.topk import SearchHit, TopKHeap


def score_taat(
    index: InvertedIndex,
    query: ParsedQuery,
    scorer: Scorer | None = None,
) -> List[SearchHit]:
    """Evaluate ``query`` term-at-a-time; returns top-k hits, best first."""
    if query.is_empty or index.num_documents == 0:
        return []
    if scorer is None:
        scorer = BM25Scorer(
            num_documents=index.num_documents,
            average_doc_length=index.average_doc_length,
        )

    scores = np.zeros(index.num_documents, dtype=np.float64)
    match_counts = np.zeros(index.num_documents, dtype=np.int32)
    doc_lengths = index.doc_lengths
    terms_found = 0

    for term in query.terms:
        info = index.term_info(term)
        if info is None:
            continue
        postings = index.postings_for_id(info.term_id)
        if len(postings) == 0:
            continue
        terms_found += 1
        idf = resolve_idf(scorer, term, info.document_frequency)
        doc_ids = postings.doc_ids
        contributions = _vector_scores(
            scorer, postings.frequencies, doc_lengths[doc_ids], idf
        )
        scores[doc_ids] += contributions
        match_counts[doc_ids] += 1

    if terms_found == 0:
        return []
    if query.mode is QueryMode.AND:
        if terms_found < len(query.terms):
            return []
        candidates = np.flatnonzero(match_counts == terms_found)
    else:
        candidates = np.flatnonzero(match_counts > 0)

    heap = TopKHeap(query.k)
    for doc_id in candidates:
        heap.offer(int(doc_id), float(scores[doc_id]))
    return heap.results()


def _vector_scores(
    scorer: Scorer,
    frequencies: np.ndarray,
    doc_lengths: np.ndarray,
    idf: float,
) -> np.ndarray:
    """Vectorized scoring of one term's postings.

    Scorers exposing ``score_block`` (BM25) get the closed-form numpy
    path; any other scorer falls back to a per-posting Python loop
    (still correct, just slower).
    """
    score_block = getattr(scorer, "score_block", None)
    if score_block is not None:
        return score_block(frequencies, doc_lengths, idf)
    return np.array(
        [
            scorer.score(int(frequency), int(length), idf)
            for frequency, length in zip(frequencies, doc_lengths)
        ],
        dtype=np.float64,
    )
