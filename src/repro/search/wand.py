"""WAND early-terminated disjunctive evaluation.

WAND (Broder et al., CIKM 2003) skips documents that cannot enter the
current top-k by comparing the sum of per-term score *upper bounds*
against the heap threshold.  The benchmark itself evaluates exhaustively
(Lucene gained WAND much later), so this module serves two roles in the
reproduction:

1. a correctness cross-check — WAND must return the same top-k scores
   as exhaustive DAAT;
2. the substrate for the "future work" ablation comparing exhaustive
   vs. dynamically-pruned evaluation under partitioning (and the base
   algorithm :mod:`repro.search.block_max_wand` refines with per-block
   bounds).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.index.inverted import InvertedIndex
from repro.search.query import ParsedQuery, QueryMode
from repro.search.scoring import BM25Scorer, resolve_idf
from repro.search.strategy import TraversalStats
from repro.search.topk import SearchHit, TopKHeap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry


class _WandCursor:
    """Postings cursor carrying a per-term score upper bound.

    Exhaustion is explicit: callers must check :attr:`exhausted` before
    touching :attr:`current`.  (An earlier revision returned a
    ``1 << 62`` sentinel from ``current`` when exhausted; arithmetic on
    the sentinel could silently leak into seek targets and doc-length
    lookups, so it now raises instead.)
    """

    __slots__ = ("doc_ids", "frequencies", "position", "idf", "max_score")

    def __init__(self, postings, idf: float, max_score: float):
        self.doc_ids = postings.doc_ids
        self.frequencies = postings.frequencies
        self.position = 0
        self.idf = idf
        self.max_score = max_score

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.doc_ids)

    @property
    def current(self) -> int:
        if self.exhausted:
            raise IndexError("cursor is exhausted; check .exhausted first")
        return int(self.doc_ids[self.position])

    def seek(self, target: int) -> None:
        """Advance to the first posting with doc id >= target."""
        if self.exhausted:
            return
        self.position = int(
            np.searchsorted(self.doc_ids[self.position :], target)
            + self.position
        )


def score_wand(
    index: InvertedIndex,
    query: ParsedQuery,
    scorer: Optional[BM25Scorer] = None,
    metrics: Optional["MetricsRegistry"] = None,
    stats: Optional[TraversalStats] = None,
) -> List[SearchHit]:
    """Evaluate a disjunctive query with WAND pruning.

    Only ``QueryMode.OR`` queries are supported (WAND is a disjunctive
    algorithm; conjunctive queries already skip aggressively).  With
    ``metrics``, the number of fully-scored documents and of pivot
    skips are added to the registry once per call; ``stats``, when
    given, receives the same per-query numbers.
    """
    if query.mode is not QueryMode.OR:
        raise ValueError("score_wand supports OR queries only")
    if query.is_empty or index.num_documents == 0:
        return []
    if scorer is None:
        scorer = BM25Scorer(
            num_documents=index.num_documents,
            average_doc_length=index.average_doc_length,
        )

    cursors: List[_WandCursor] = []
    for term in query.terms:
        info = index.term_info(term)
        if info is None:
            continue
        postings = index.postings_for_id(info.term_id)
        if len(postings) == 0:
            continue
        idf = resolve_idf(scorer, term, info.document_frequency)
        cursors.append(_WandCursor(postings, idf, scorer.max_score(idf)))
    if not cursors:
        return []

    heap = TopKHeap(query.k)
    doc_lengths = index.doc_lengths
    docs_scored = 0
    pivot_skips = 0

    while True:
        live = [cursor for cursor in cursors if not cursor.exhausted]
        if not live:
            break
        live.sort(key=lambda cursor: cursor.current)

        # Find the pivot: the first cursor at which the running sum of
        # upper bounds exceeds the heap threshold.  The strict test is
        # safe because BM25's max_score is a strict supremum (k1 > 0):
        # a document whose bound merely ties the threshold cannot
        # actually reach it.
        threshold = heap.threshold()
        upper_bound = 0.0
        pivot_index = -1
        for cursor_index, cursor in enumerate(live):
            upper_bound += cursor.max_score
            if upper_bound > threshold:
                pivot_index = cursor_index
                break
        if pivot_index < 0:
            break  # no document can beat the threshold anymore
        pivot_doc = live[pivot_index].current

        if live[0].current == pivot_doc:
            # All cursors up to the pivot sit on pivot_doc: score it.
            # Summation runs in sorted-cursor order, which for cursors
            # tied on pivot_doc is their original term order (the sort
            # is stable) — the same order exhaustive DAAT sums in, so
            # float rounding matches bit for bit.
            score = 0.0
            for cursor in live:
                if cursor.exhausted or cursor.current != pivot_doc:
                    break
                score += scorer.score(
                    int(cursor.frequencies[cursor.position]),
                    int(doc_lengths[pivot_doc]),
                    cursor.idf,
                )
            heap.offer(pivot_doc, score)
            docs_scored += 1
            for cursor in live:
                if not cursor.exhausted and cursor.current == pivot_doc:
                    cursor.seek(pivot_doc + 1)
        else:
            # Skip the leading cursors straight to the pivot document.
            pivot_skips += 1
            for cursor in live[:pivot_index]:
                cursor.seek(pivot_doc)

    if stats is not None:
        stats.docs_scored += docs_scored
        stats.pivot_skips += pivot_skips
    if metrics is not None:
        metrics.counter("wand.docs_scored").add(docs_scored)
        metrics.counter("wand.pivot_skips").add(pivot_skips)
    return heap.results()
