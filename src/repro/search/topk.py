"""Bounded top-k heap for result accumulation."""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True, order=True)
class SearchHit:
    """One ranked result: a document id and its relevance score.

    Ordering is by ``(score, -doc_id)`` — ties in score rank the lower
    doc id first, matching the benchmark's stable tie-breaking.
    """

    score: float
    doc_id: int

    def sort_key(self) -> tuple:
        return (-self.score, self.doc_id)


class TopKHeap:
    """Keeps the ``k`` best ``(score, doc_id)`` entries seen so far.

    Internally a min-heap of size ≤ k over ``(score, -doc_id)`` so the
    weakest retained hit is at the root; :meth:`threshold` exposes its
    score, which WAND-style early termination uses as the pruning bound.
    """

    def __init__(self, k: int):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        # Heap entries are (score, -doc_id): on equal scores, the entry
        # with the *higher* doc id is the weaker one and is evicted first.
        self._heap: List[tuple] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        """True once ``k`` hits are retained."""
        return len(self._heap) >= self.k

    def threshold(self) -> float:
        """Score a new hit must exceed to enter a full heap.

        Returns ``-inf`` while the heap is not yet full.
        """
        if not self.is_full:
            return float("-inf")
        return self._heap[0][0]

    def offer(self, doc_id: int, score: float) -> bool:
        """Consider a hit; returns True if it was retained."""
        entry = (score, -doc_id)
        if not self.is_full:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def results(self) -> List[SearchHit]:
        """Return retained hits, best first (score desc, doc id asc)."""
        ordered = sorted(self._heap, reverse=True)
        return [
            SearchHit(score=score, doc_id=-negated_id)
            for score, negated_id in ordered
        ]
