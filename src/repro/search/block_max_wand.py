"""Block-Max WAND early-terminated disjunctive evaluation.

Block-Max WAND (Ding & Suel, SIGIR 2011) refines WAND's pruning with
*per-block* score upper bounds.  Plain WAND compares the heap threshold
against term-global bounds, which are hopelessly loose for common
terms: one high-tf posting anywhere in a list inflates the bound for
the entire list.  BMW instead consults the
:class:`~repro.index.blockmax.BlockMetadata` the index keeps per
postings block (last doc id, max tf, min doc length):

1. **Shallow pointer movement** — per-cursor block pointers advance
   over the block summary arrays (one ``searchsorted`` per cursor per
   pivot) without touching postings.
2. **Deep descent only into candidate blocks** — the pivot document is
   scored only when the *sum of local block bounds* can still beat the
   threshold; otherwise the traversal jumps every contributing cursor
   past the earliest block boundary in one skip.
3. **Vectorized block scoring** — on first descent into a block the
   whole block's contributions are computed with the scorer's
   ``score_block`` and memoized, so repeated hits in a hot block cost
   an array lookup.

Pivot selection is identical to :func:`repro.search.wand.score_wand`
(global bounds, strict ``>`` test — safe because BM25's global bound is
a strict supremum for ``k1 > 0``).  Block bounds, by contrast, are
*achievable*: ``score(max_tf, min_doc_length)`` is attained whenever
one posting realizes both extremes, and the top-k heap admits
threshold-tied documents with smaller doc ids.  The block-skip test is
therefore strict the other way: skip only when ``block_upper <
threshold``, descend on ties.  Under these rules BMW returns the same
top-k — ids *and* bit-identical scores — as exhaustive DAAT, while
scoring a subset of the documents plain WAND scores.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.index.blockmax import BlockMetadata
from repro.index.inverted import InvertedIndex
from repro.search.query import ParsedQuery, QueryMode
from repro.search.scoring import BM25Scorer, resolve_idf
from repro.search.strategy import TraversalStats
from repro.search.topk import SearchHit, TopKHeap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry


class _BlockMaxCursor:
    """Postings cursor with block metadata and a shallow block pointer.

    Like :class:`repro.search.wand._WandCursor`, exhaustion is explicit:
    ``current`` raises on an exhausted cursor instead of returning a
    sentinel doc id.
    """

    __slots__ = (
        "doc_ids",
        "frequencies",
        "position",
        "idf",
        "max_score",
        "blocks",
        "block_bounds",
        "block_index",
        "_block_scores",
    )

    def __init__(
        self,
        postings,
        idf: float,
        max_score: float,
        blocks: BlockMetadata,
        block_bounds: np.ndarray,
    ):
        self.doc_ids = postings.doc_ids
        self.frequencies = postings.frequencies
        self.position = 0
        self.idf = idf
        self.max_score = max_score
        self.blocks = blocks
        self.block_bounds = block_bounds
        # Shallow pointer: index of the last block looked up.  Pivot
        # documents are non-decreasing over a BMW run, so the pointer
        # only ever moves forward.
        self.block_index = 0
        self._block_scores: Dict[int, np.ndarray] = {}

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.doc_ids)

    @property
    def current(self) -> int:
        if self.exhausted:
            raise IndexError("cursor is exhausted; check .exhausted first")
        return int(self.doc_ids[self.position])

    def seek(self, target: int) -> None:
        """Advance (deep) to the first posting with doc id >= target."""
        if self.exhausted:
            return
        self.position = int(
            np.searchsorted(self.doc_ids[self.position :], target)
            + self.position
        )

    def shallow_seek(self, target: int) -> Optional[int]:
        """Advance the block pointer to the block containing ``target``.

        Returns the block index whose last doc id is >= ``target`` —
        the only block that could hold ``target`` — or ``None`` when
        every remaining block ends before it.  Touches only the block
        summary array, never the postings.
        """
        last_doc_ids = self.blocks.last_doc_ids
        block = int(
            np.searchsorted(last_doc_ids[self.block_index :], target)
            + self.block_index
        )
        self.block_index = block
        if block >= self.blocks.num_blocks:
            return None
        return block

    def score_current(self, scorer, doc_lengths: np.ndarray) -> float:
        """Score the posting under the cursor, via the block cache.

        The first touch of a block computes the whole block's
        contributions in one vectorized ``score_block`` call (falling
        back to the scalar path for scorers without one) and memoizes
        the array; the result is bit-identical to a scalar
        ``scorer.score`` call by ``score_block``'s contract.
        """
        block_size = self.blocks.block_size
        block = self.position // block_size
        cached = self._block_scores.get(block)
        if cached is None:
            start = block * block_size
            end = min(start + block_size, len(self.doc_ids))
            frequencies = self.frequencies[start:end]
            lengths = doc_lengths[self.doc_ids[start:end]]
            score_block = getattr(scorer, "score_block", None)
            if score_block is not None:
                cached = score_block(frequencies, lengths, self.idf)
            else:
                cached = np.array(
                    [
                        scorer.score(int(frequency), int(length), self.idf)
                        for frequency, length in zip(frequencies, lengths)
                    ],
                    dtype=np.float64,
                )
            self._block_scores[block] = cached
        return float(cached[self.position - block * block_size])


class _PagedBlockMaxCursor:
    """A block-max cursor over tiered (paged) postings.

    Same interface and same traversal arithmetic as
    :class:`_BlockMaxCursor`, but the postings live behind a
    :class:`~repro.index.store.TieredPostings` view and are paged in
    block-at-a-time.  The trick that makes paging cheap is **lazy
    seeking**: ``seek`` only records the target; resolution happens on
    the next ``current``/``exhausted`` read, *shallowly* when possible.
    The resident per-block first/last doc ids locate the only block
    that can hold the target, and when the target lands on or before a
    block's first posting the current doc id is known from metadata
    alone — a cursor that is merely being skipped over never fetches.
    Only a mid-block landing or an actual scoring descent pages the
    block in, so the traversal fetches exactly the blocks it descends
    into.

    Because the resolved (block, offset) sequence — and the per-block
    score arrays — are identical to the resident cursor's, results stay
    bit-identical; only the I/O schedule changes.
    """

    __slots__ = (
        "tiered",
        "idf",
        "max_score",
        "blocks",
        "block_bounds",
        "block_index",
        "_target",
        "_block",
        "_doc_ids",
        "_frequencies",
        "_offset",
        "_resolved",
        "_block_scores",
    )

    def __init__(
        self,
        tiered_postings,
        idf: float,
        max_score: float,
        blocks: BlockMetadata,
        block_bounds: np.ndarray,
    ):
        self.tiered = tiered_postings
        self.idf = idf
        self.max_score = max_score
        self.blocks = blocks
        self.block_bounds = block_bounds
        self.block_index = 0
        self._target = 0  # pending lazy-seek target (monotone)
        self._block = 0  # block holding the current posting, once resolved
        self._doc_ids: Optional[np.ndarray] = None
        self._frequencies: Optional[np.ndarray] = None
        self._offset = 0
        self._resolved = False
        self._block_scores: Dict[int, np.ndarray] = {}

    def _load(self) -> None:
        """Page the resolved block in (through the index's block cache)."""
        if self._doc_ids is None:
            self._doc_ids, self._frequencies = self.tiered.block(self._block)

    def _resolve(self) -> None:
        """Locate the first posting with doc id >= the pending target."""
        if self._resolved:
            return
        last_doc_ids = self.blocks.last_doc_ids
        block = int(
            np.searchsorted(last_doc_ids[self._block :], self._target)
            + self._block
        )
        if block >= self.blocks.num_blocks:
            self._block = block
            self._doc_ids = None
            self._frequencies = None
            self._resolved = True
            return
        if block != self._block:
            self._block = block
            self._doc_ids = None
            self._frequencies = None
            self._offset = 0
        first = int(self.tiered.info.first_doc_ids[block])
        if first >= self._target and self._doc_ids is None:
            # The target precedes the block: its first posting is the
            # answer, and the resident metadata already knows its id.
            self._offset = 0
        else:
            # Mid-block landing (or block already resident): binary
            # search within the decoded block, forward-only.
            self._load()
            self._offset = int(
                np.searchsorted(self._doc_ids[self._offset :], self._target)
                + self._offset
            )
        self._resolved = True

    @property
    def exhausted(self) -> bool:
        self._resolve()
        return self._block >= self.blocks.num_blocks

    @property
    def current(self) -> int:
        self._resolve()
        if self._block >= self.blocks.num_blocks:
            raise IndexError("cursor is exhausted; check .exhausted first")
        if self._doc_ids is not None:
            return int(self._doc_ids[self._offset])
        return int(self.tiered.info.first_doc_ids[self._block])

    def seek(self, target: int) -> None:
        """Record a (deep) seek; resolution is deferred until needed."""
        if target > self._target:
            self._target = target
            self._resolved = False

    def shallow_seek(self, target: int) -> Optional[int]:
        """Advance the block pointer shallowly (metadata only).

        Identical to :meth:`_BlockMaxCursor.shallow_seek` — the summary
        arrays are resident on a tiered index, so this never fetches.
        """
        last_doc_ids = self.blocks.last_doc_ids
        block = int(
            np.searchsorted(last_doc_ids[self.block_index :], target)
            + self.block_index
        )
        self.block_index = block
        if block >= self.blocks.num_blocks:
            return None
        return block

    def score_current(self, scorer, doc_lengths: np.ndarray) -> float:
        """Score the posting under the cursor (pages its block in)."""
        self._resolve()
        self._load()
        cached = self._block_scores.get(self._block)
        if cached is None:
            frequencies = self._frequencies
            lengths = doc_lengths[self._doc_ids]
            score_block = getattr(scorer, "score_block", None)
            if score_block is not None:
                cached = score_block(frequencies, lengths, self.idf)
            else:
                cached = np.array(
                    [
                        scorer.score(int(frequency), int(length), self.idf)
                        for frequency, length in zip(frequencies, lengths)
                    ],
                    dtype=np.float64,
                )
            self._block_scores[self._block] = cached
        return float(cached[self._offset])


def score_block_max_wand(
    index: InvertedIndex,
    query: ParsedQuery,
    scorer: Optional[BM25Scorer] = None,
    metrics: Optional["MetricsRegistry"] = None,
    stats: Optional[TraversalStats] = None,
    max_docs_scored: Optional[int] = None,
) -> List[SearchHit]:
    """Evaluate a disjunctive query with Block-Max WAND pruning.

    Only ``QueryMode.OR`` queries are supported, mirroring
    :func:`~repro.search.wand.score_wand`.  With ``metrics``, the
    scored-document, pivot-skip, and block-skip totals are added to the
    registry once per call (same ``wand.*`` counter family as plain
    WAND, plus ``wand.block_skips``); ``stats``, when given, receives
    the same per-query numbers.

    ``max_docs_scored`` is the deadline scheduler's early-termination
    depth: the traversal stops once that many documents have been
    fully scored and returns the best-so-far heap (an *approximate*
    top-k).  ``None`` — the default — keeps the exact traversal, bit
    identical to exhaustive DAAT.  A truncated run sets
    ``stats.truncated``.
    """
    if query.mode is not QueryMode.OR:
        raise ValueError("score_block_max_wand supports OR queries only")
    if query.is_empty or index.num_documents == 0:
        return []
    if scorer is None:
        scorer = BM25Scorer(
            num_documents=index.num_documents,
            average_doc_length=index.average_doc_length,
        )

    # A tiered index pages postings block-at-a-time: use the paged
    # cursor so this traversal fetches only the blocks it descends
    # into.  Resident indexes keep the direct-array cursor.
    paged = hasattr(index, "tiered_postings_for_id")
    cursors: List[_BlockMaxCursor] = []
    for term in query.terms:
        info = index.term_info(term)
        if info is None:
            continue
        idf = resolve_idf(scorer, term, info.document_frequency)
        blocks = index.block_metadata_for_id(info.term_id)
        if blocks.num_blocks == 0:
            continue
        bounds = blocks.max_scores(scorer, idf)
        if paged:
            cursors.append(
                _PagedBlockMaxCursor(
                    index.tiered_postings_for_id(info.term_id),
                    idf,
                    scorer.max_score(idf),
                    blocks,
                    bounds,
                )
            )
            continue
        postings = index.postings_for_id(info.term_id)
        if len(postings) == 0:
            continue
        cursors.append(
            _BlockMaxCursor(
                postings,
                idf,
                scorer.max_score(idf),
                blocks,
                bounds,
            )
        )
    if not cursors:
        return []

    if max_docs_scored is not None and max_docs_scored <= 0:
        raise ValueError("max_docs_scored must be positive when given")

    heap = TopKHeap(query.k)
    doc_lengths = index.doc_lengths
    docs_scored = 0
    pivot_skips = 0
    block_skips = 0
    truncated = False

    while True:
        live = [cursor for cursor in cursors if not cursor.exhausted]
        if not live:
            break
        live.sort(key=lambda cursor: cursor.current)

        # Stage 1 — WAND pivot on term-global bounds, identical to
        # plain WAND so both algorithms walk the same pivot sequence
        # (which is what makes BMW's scored set a subset of WAND's).
        threshold = heap.threshold()
        upper_bound = 0.0
        pivot_index = -1
        for cursor_index, cursor in enumerate(live):
            upper_bound += cursor.max_score
            if upper_bound > threshold:
                pivot_index = cursor_index
                break
        if pivot_index < 0:
            break  # no document can beat the threshold anymore
        pivot_doc = live[pivot_index].current

        # Absorb trailing cursors sitting exactly on the pivot: they
        # contribute to its score, so their blocks belong in the local
        # bound (and they must move together on a block skip).
        pivot_end = pivot_index
        while (
            pivot_end + 1 < len(live)
            and live[pivot_end + 1].current == pivot_doc
        ):
            pivot_end += 1

        # Stage 2 — shallow refinement: sum the *local* block bounds of
        # every cursor that could contribute to pivot_doc, tracking the
        # earliest block boundary for the skip jump.
        block_upper = 0.0
        boundary: Optional[int] = None
        for cursor in live[: pivot_end + 1]:
            block = cursor.shallow_seek(pivot_doc)
            if block is None:
                continue  # cursor's remaining postings all precede pivot
            block_upper += float(cursor.block_bounds[block])
            last = int(cursor.blocks.last_doc_ids[block])
            if boundary is None or last < boundary:
                boundary = last

        if boundary is not None and block_upper < threshold:
            # Stage 3a — block skip.  Every document in
            # [pivot_doc, next_doc) lies inside the blocks just bounded,
            # so its score is <= block_upper < threshold and the heap
            # cannot admit it (ties are impossible under a strict
            # inequality).  Jump all contributing cursors past the
            # earliest boundary — or to the next cursor's document,
            # whichever is closer.
            block_skips += 1
            next_doc = boundary + 1
            if pivot_end + 1 < len(live):
                next_doc = min(next_doc, live[pivot_end + 1].current)
            for cursor in live[: pivot_end + 1]:
                cursor.seek(next_doc)
            continue

        # Stage 3b — deep descent (same as plain WAND, with block-cache
        # scoring).
        if live[0].current == pivot_doc:
            # Summation order among pivot-tied cursors is original term
            # order (stable sort), matching exhaustive DAAT bit for bit.
            score = 0.0
            for cursor in live:
                if cursor.exhausted or cursor.current != pivot_doc:
                    break
                score += cursor.score_current(scorer, doc_lengths)
            heap.offer(pivot_doc, score)
            docs_scored += 1
            for cursor in live:
                if not cursor.exhausted and cursor.current == pivot_doc:
                    cursor.seek(pivot_doc + 1)
            if max_docs_scored is not None and docs_scored >= max_docs_scored:
                # Deadline budget exhausted: return the best-so-far
                # heap instead of finishing the traversal.
                truncated = True
                break
        else:
            pivot_skips += 1
            for cursor in live[:pivot_index]:
                cursor.seek(pivot_doc)

    if stats is not None:
        stats.docs_scored += docs_scored
        stats.pivot_skips += pivot_skips
        stats.block_skips += block_skips
        stats.truncated = stats.truncated or truncated
    if metrics is not None:
        metrics.counter("wand.docs_scored").add(docs_scored)
        metrics.counter("wand.pivot_skips").add(pivot_skips)
        metrics.counter("wand.block_skips").add(block_skips)
    return heap.results()
