"""Document-at-a-time (DAAT) query evaluation.

DAAT is how Lucene — and hence the benchmark's index serving node —
evaluates ranked boolean queries: one cursor per query term advances in
lock-step over doc-id-sorted postings, scoring each candidate document
completely before moving on.  Service time is proportional to the total
postings volume traversed, which is the work model the paper's
characterization (and our simulator calibration) relies on.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.index.inverted import InvertedIndex
from repro.search.query import ParsedQuery, QueryMode
from repro.search.scoring import BM25Scorer, Scorer, resolve_idf
from repro.search.strategy import TraversalStats
from repro.search.topk import SearchHit, TopKHeap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry


class _Cursor:
    """A traversal cursor over one term's postings.

    ``scores`` optionally holds the precomputed per-posting score
    contributions (vectorized once up front when the scorer supports
    ``score_block``); exhaustive DAAT touches every posting anyway, so
    the batch computation is never wasted work.
    """

    __slots__ = ("doc_ids", "frequencies", "position", "idf", "scores")

    def __init__(self, postings, idf: float):
        self.doc_ids = postings.doc_ids
        self.frequencies = postings.frequencies
        self.position = 0
        self.idf = idf
        self.scores = None

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.doc_ids)

    @property
    def current(self) -> int:
        return int(self.doc_ids[self.position])

    @property
    def current_frequency(self) -> int:
        return int(self.frequencies[self.position])

    def advance(self) -> None:
        self.position += 1


def score_daat(
    index: InvertedIndex,
    query: ParsedQuery,
    scorer: Scorer | None = None,
    metrics: Optional["MetricsRegistry"] = None,
    stats: Optional[TraversalStats] = None,
) -> List[SearchHit]:
    """Evaluate ``query`` over ``index`` document-at-a-time.

    Returns the top-k hits (best first).  ``scorer`` defaults to BM25
    with the index's collection statistics.  With ``metrics``, the
    traversal's postings/candidate/heap-offer totals are added to the
    registry once after the loop, so the inner loop stays registry-free;
    ``stats``, when given, receives the per-query scored-document count.
    """
    if query.is_empty:
        return []
    if scorer is None:
        scorer = BM25Scorer(
            num_documents=index.num_documents,
            average_doc_length=index.average_doc_length,
        )

    cursors = _open_cursors(index, query.terms, scorer)
    if not cursors:
        return []
    if query.mode is QueryMode.AND and len(cursors) < len(query.terms):
        # A conjunctive query with a term absent from the index matches
        # nothing.
        return []

    heap = TopKHeap(query.k)
    doc_lengths = index.doc_lengths
    required = len(query.terms) if query.mode is QueryMode.AND else 1

    # Exhaustive traversal reads every posting, so when the scorer is
    # vectorizable the whole contribution array is computed in one numpy
    # pass per term (bit-identical to the scalar path by score_block's
    # contract) and the inner loop reduces to an array lookup.
    score_block = getattr(scorer, "score_block", None)
    if score_block is not None:
        for cursor in cursors:
            cursor.scores = score_block(
                cursor.frequencies, doc_lengths[cursor.doc_ids], cursor.idf
            )

    # Min-heap of (current_doc_id, cursor_index) drives the lock-step.
    frontier = [
        (cursor.current, cursor_index)
        for cursor_index, cursor in enumerate(cursors)
    ]
    heapq.heapify(frontier)
    candidates = 0
    offers = 0

    while frontier:
        doc_id = frontier[0][0]
        score = 0.0
        matched = 0
        candidates += 1
        # Pop every cursor positioned on doc_id, score, and re-push.
        while frontier and frontier[0][0] == doc_id:
            _, cursor_index = heapq.heappop(frontier)
            cursor = cursors[cursor_index]
            if cursor.scores is not None:
                score += float(cursor.scores[cursor.position])
            else:
                score += scorer.score(
                    cursor.current_frequency,
                    int(doc_lengths[doc_id]),
                    cursor.idf,
                )
            matched += 1
            cursor.advance()
            if not cursor.exhausted:
                heapq.heappush(frontier, (cursor.current, cursor_index))
        if matched >= required:
            heap.offer(doc_id, score)
            offers += 1

    if stats is not None:
        stats.docs_scored += candidates
    if metrics is not None:
        metrics.counter("daat.postings_traversed").add(
            sum(cursor.position for cursor in cursors)
        )
        metrics.counter("daat.candidates_scored").add(candidates)
        metrics.counter("daat.heap_offers").add(offers)
    return heap.results()


def _open_cursors(
    index: InvertedIndex, terms: Sequence[str], scorer: Scorer
) -> List[_Cursor]:
    cursors: List[_Cursor] = []
    for term in terms:
        info = index.term_info(term)
        if info is None:
            continue
        postings = index.postings_for_id(info.term_id)
        if len(postings) == 0:
            continue
        cursors.append(
            _Cursor(postings, resolve_idf(scorer, term, info.document_frequency))
        )
    return cursors
