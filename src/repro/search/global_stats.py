"""Global-statistics (distributed idf) scoring over a partitioned index.

With intra-server partitioning, each shard's document frequencies and
average document length drift from the collection-wide values, so
shard-local BM25 ranks slightly differently than the unpartitioned
index.  Distributed search engines fix this by scoring every shard with
*global* statistics.  :func:`global_scorer_factory` implements that:
it aggregates term statistics across all shards once, then hands every
shard searcher the same globally-weighted scorer, making partitioned
search rank **identically** to the unpartitioned index — an invariant
the test suite exploits heavily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.index.inverted import InvertedIndex
from repro.index.partitioner import PartitionedIndex
from repro.search.scoring import BM25Scorer, global_bm25_scorer


@dataclass(frozen=True)
class GlobalStats:
    """Collection-wide statistics aggregated over all shards."""

    num_documents: int
    average_doc_length: float
    term_document_frequencies: Dict[str, int]


def collect_global_stats(partitioned: PartitionedIndex) -> GlobalStats:
    """Aggregate document counts, lengths, and per-term dfs over shards."""
    num_documents = 0
    total_length = 0
    dfs: Dict[str, int] = {}
    for shard in partitioned:
        index = shard.index
        num_documents += index.num_documents
        total_length += int(index.doc_lengths.sum())
        for term in index.dictionary:
            info = index.dictionary.lookup(term)
            dfs[term] = dfs.get(term, 0) + info.document_frequency
    average = total_length / num_documents if num_documents else 0.0
    return GlobalStats(
        num_documents=num_documents,
        average_doc_length=average,
        term_document_frequencies=dfs,
    )


def global_scorer_factory(
    partitioned: PartitionedIndex, k1: float = 1.2, b: float = 0.75
) -> Callable[[InvertedIndex], BM25Scorer]:
    """Build a scorer factory that scores every shard with global stats.

    Pass the result as ``scorer_factory`` to
    :class:`~repro.search.executor.ShardSearcher` (or to the engine's
    index serving node) to enable distributed-idf scoring.
    """
    stats = collect_global_stats(partitioned)
    scorer = global_bm25_scorer(
        num_documents=stats.num_documents,
        average_doc_length=stats.average_doc_length,
        term_document_frequencies=stats.term_document_frequencies,
        k1=k1,
        b=b,
    )
    return lambda _index: scorer
