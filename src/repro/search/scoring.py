"""Relevance scoring functions.

The benchmark ranks with Lucene's similarity; we provide Okapi BM25
(Lucene's successor default and the standard in the literature) plus a
classic TF-IDF for comparison.  Scorers are stateless value objects
parameterized by collection statistics, so one scorer instance is built
per (index, query) evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Protocol

import numpy as np


class Scorer(Protocol):
    """Per-term document scorer protocol."""

    def idf(self, document_frequency: int) -> float:
        """Inverse document frequency weight of a term."""
        ...

    def score(self, term_frequency: int, doc_length: int, idf: float) -> float:
        """Score one (term, document) match."""
        ...


@dataclass(frozen=True)
class BM25Scorer:
    """Okapi BM25 with the standard Robertson parameters.

    Attributes
    ----------
    num_documents:
        ``N`` of the collection (or shard — the benchmark scores with
        shard-local statistics).
    average_doc_length:
        Mean analyzed document length of the collection/shard.
    k1:
        Term-frequency saturation; 1.2 is the classic default.
    b:
        Length normalization strength; 0.75 is the classic default.
    term_idf:
        Optional per-term idf overrides.  When set, traversal weights a
        term with ``term_idf[term]`` instead of the idf derived from the
        (shard-)local document frequency — this is **global-statistics
        scoring** (distributed idf): all shards of a partitioned index
        score with collection-wide statistics, making partitioned search
        return exactly the ranking of the unpartitioned index.
    """

    num_documents: int
    average_doc_length: float
    k1: float = 1.2
    b: float = 0.75
    term_idf: Optional[Mapping[str, float]] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.num_documents < 0:
            raise ValueError("num_documents must be non-negative")
        if self.k1 < 0 or not 0.0 <= self.b <= 1.0:
            raise ValueError("invalid BM25 parameters")

    def idf(self, document_frequency: int) -> float:
        """Lucene-style non-negative BM25 idf."""
        return math.log(
            1.0
            + (self.num_documents - document_frequency + 0.5)
            / (document_frequency + 0.5)
        )

    def score(self, term_frequency: int, doc_length: int, idf: float) -> float:
        """BM25 contribution of one term match."""
        if term_frequency <= 0:
            return 0.0
        average = self.average_doc_length if self.average_doc_length > 0 else 1.0
        normalizer = self.k1 * (
            1.0 - self.b + self.b * doc_length / average
        )
        return idf * term_frequency * (self.k1 + 1.0) / (term_frequency + normalizer)

    def score_block(
        self,
        frequencies: np.ndarray,
        doc_lengths: np.ndarray,
        idf: float,
    ) -> np.ndarray:
        """Vectorized :meth:`score` over a block of postings.

        Evaluates the identical float64 expression element-wise, in the
        same operation order as the scalar path, so the returned array
        is bit-for-bit equal to per-posting :meth:`score` calls — the
        property the block-max traversal's "bit-identical to exhaustive
        DAAT" contract rests on.  ``frequencies`` must be positive
        (postings lists never store zero counts).
        """
        average = self.average_doc_length if self.average_doc_length > 0 else 1.0
        frequencies = frequencies.astype(np.float64)
        normalizer = self.k1 * (
            1.0 - self.b + self.b * doc_lengths.astype(np.float64) / average
        )
        return idf * frequencies * (self.k1 + 1.0) / (frequencies + normalizer)

    def max_score(self, idf: float) -> float:
        """Upper bound of :meth:`score` over any document (tf → ∞, b-term → 0).

        Used by WAND-style early termination as a safe per-term bound.
        For ``k1 > 0`` the bound is a strict supremum: no finite tf
        attains it, which is what lets the pivot test use a strict
        comparison without dropping threshold-tied documents.
        """
        return idf * (self.k1 + 1.0)


def resolve_idf(scorer: Scorer, term: str, document_frequency: int) -> float:
    """Return the idf weight for ``term``.

    Honors the scorer's ``term_idf`` override table when present (global-
    statistics scoring); otherwise derives the idf from the supplied
    (typically shard-local) document frequency.
    """
    overrides = getattr(scorer, "term_idf", None)
    if overrides is not None:
        override = overrides.get(term)
        if override is not None:
            return override
    return scorer.idf(document_frequency)


def global_bm25_scorer(
    num_documents: int,
    average_doc_length: float,
    term_document_frequencies: Mapping[str, int],
    k1: float = 1.2,
    b: float = 0.75,
) -> BM25Scorer:
    """Build a BM25 scorer carrying collection-global term idfs.

    ``term_document_frequencies`` maps each term to its document
    frequency in the *full* collection (e.g. summed over all shards of a
    partitioned index).  Shards scoring with the returned scorer rank
    exactly as an unpartitioned index would.
    """
    reference = BM25Scorer(
        num_documents=num_documents,
        average_doc_length=average_doc_length,
        k1=k1,
        b=b,
    )
    term_idf = {
        term: reference.idf(document_frequency)
        for term, document_frequency in term_document_frequencies.items()
    }
    return BM25Scorer(
        num_documents=num_documents,
        average_doc_length=average_doc_length,
        k1=k1,
        b=b,
        term_idf=term_idf,
    )


@dataclass(frozen=True)
class TfIdfScorer:
    """Classic log-tf × idf scoring (for baseline comparisons)."""

    num_documents: int
    average_doc_length: float = 0.0  # unused; kept for protocol symmetry

    def idf(self, document_frequency: int) -> float:
        """Smoothed idf: ``log(1 + N / (1 + df))``."""
        return math.log(1.0 + self.num_documents / (1.0 + document_frequency))

    def score(self, term_frequency: int, doc_length: int, idf: float) -> float:
        """``(1 + log tf) * idf``; doc length is ignored."""
        if term_frequency <= 0:
            return 0.0
        return (1.0 + math.log(term_frequency)) * idf

    def max_score(self, idf: float) -> float:
        """A loose but safe upper bound for early termination.

        tf is bounded by the longest document; we use 1e6 as a corpus-
        independent cap, giving ``(1 + ln 1e6) * idf``.
        """
        return (1.0 + math.log(1e6)) * idf
