"""Query execution: parsing, scoring, traversal, top-k, and merging.

The index serving node's query path is: parse + analyze the query,
fetch the postings of each term, traverse them (document-at-a-time by
default), score candidates with BM25, keep the top-k in a bounded heap,
and — when the index is partitioned — merge the per-shard top-k lists.
Every stage lives in its own module here.
"""

from repro.search.block_max_wand import score_block_max_wand
from repro.search.daat import score_daat
from repro.search.global_stats import (
    GlobalStats,
    collect_global_stats,
    global_scorer_factory,
)
from repro.search.executor import SearchResult, Searcher, ShardSearcher
from repro.search.intersection import (
    intersect_adaptive,
    intersect_gallop,
    intersect_merge,
    score_conjunctive,
)
from repro.search.merger import merge_shard_results
from repro.search.phrase import parse_phrase, phrase_frequency, score_phrase
from repro.search.query import ParsedQuery, QueryMode, QueryParser
from repro.search.scoring import (
    BM25Scorer,
    Scorer,
    TfIdfScorer,
    global_bm25_scorer,
    resolve_idf,
)
from repro.search.strategy import TraversalStats, TraversalStrategy
from repro.search.taat import score_taat
from repro.search.topk import SearchHit, TopKHeap
from repro.search.wand import score_wand

__all__ = [
    "ParsedQuery",
    "QueryMode",
    "QueryParser",
    "BM25Scorer",
    "TfIdfScorer",
    "Scorer",
    "global_bm25_scorer",
    "resolve_idf",
    "GlobalStats",
    "collect_global_stats",
    "global_scorer_factory",
    "SearchHit",
    "TopKHeap",
    "score_daat",
    "score_taat",
    "score_wand",
    "score_block_max_wand",
    "TraversalStrategy",
    "TraversalStats",
    "score_phrase",
    "parse_phrase",
    "phrase_frequency",
    "score_conjunctive",
    "intersect_adaptive",
    "intersect_gallop",
    "intersect_merge",
    "Searcher",
    "ShardSearcher",
    "SearchResult",
    "merge_shard_results",
]
