"""Search execution facade over one index or one shard."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from repro.index.inverted import InvertedIndex
from repro.index.partitioner import IndexShard
from repro.obs.registry import MetricsRegistry
from repro.search.block_max_wand import score_block_max_wand
from repro.search.daat import score_daat
from repro.search.query import DEFAULT_TOP_K, ParsedQuery, QueryMode, QueryParser
from repro.search.scoring import BM25Scorer, Scorer
from repro.search.strategy import TraversalStats, TraversalStrategy
from repro.search.taat import score_taat
from repro.search.topk import SearchHit
from repro.search.wand import score_wand

#: Supported traversal algorithms.
ALGORITHMS = ("daat", "taat", "wand", "block_max_wand")


def _normalize_algorithm(value: Union[str, TraversalStrategy]) -> str:
    """Map a strategy enum or spelling variant to an algorithm name.

    ``"taat"`` stays a distinct algorithm (it is an exhaustive traversal
    with a different execution order), so only non-algorithm spellings
    go through :meth:`TraversalStrategy.coerce`.
    """
    if isinstance(value, TraversalStrategy):
        return value.algorithm
    if isinstance(value, str):
        normalized = value.strip().lower().replace("-", "_")
        if normalized in ALGORITHMS:
            return normalized
        try:
            return TraversalStrategy.coerce(normalized).algorithm
        except ValueError:
            return normalized  # __post_init__ reports the full choice list
    return value


class SearchCancelled(RuntimeError):
    """Raised when a search attempt observes its cancellation token.

    The hedged fan-out (:mod:`repro.engine.isn`) sets a loser attempt's
    token the moment a sibling wins; the attempt abandons its work at
    the next cancellation point instead of computing a result nobody
    will read.
    """


@dataclass(frozen=True)
class SearchResult:
    """The outcome of evaluating one query against one index/shard.

    Attributes
    ----------
    hits:
        Ranked hits, best first.  When produced by a
        :class:`ShardSearcher`, doc ids are collection-global.
    query:
        The parsed query that was evaluated.
    matched_volume:
        Total postings volume of the query's terms in this index —
        the per-query work proxy used for characterization/calibration.
    docs_scored:
        Documents fully scored by the traversal, or None when the
        algorithm does not report it (taat).
    blocks_skipped:
        Block-level skips taken by block-max traversal; None for
        algorithms without block metadata.
    blocks_fetched / bytes_read:
        Postings blocks paged in from the block store while evaluating
        this query, and their encoded bytes; None on a fully-resident
        index.  Measured as a cache-counter delta around the
        traversal, so concurrent queries on the same shard may shift
        fetches between each other's counts (totals stay exact).
    truncated:
        True when a deadline budget (``max_docs_scored``) stopped the
        traversal early, making the hits approximate; always False on
        an exact run.
    """

    hits: Tuple[SearchHit, ...]
    query: ParsedQuery
    matched_volume: int
    docs_scored: Optional[int] = None
    blocks_skipped: Optional[int] = None
    blocks_fetched: Optional[int] = None
    bytes_read: Optional[int] = None
    truncated: bool = False

    def doc_ids(self) -> List[int]:
        """Doc ids of the hits, best first."""
        return [hit.doc_id for hit in self.hits]

    def scores(self) -> List[float]:
        """Scores of the hits, best first."""
        return [hit.score for hit in self.hits]


@dataclass
class Searcher:
    """Evaluates queries against a single inverted index.

    Parameters
    ----------
    index:
        The index to search.
    algorithm:
        ``"daat"`` (benchmark-faithful, default), ``"taat"`` (vectorized),
        ``"wand"``, or ``"block_max_wand"`` (early-terminated; OR
        queries only).  A :class:`~repro.search.strategy.TraversalStrategy`
        (or one of its aliases, e.g. ``"exhaustive"``) is accepted and
        normalized to the algorithm name.
    scorer_factory:
        Builds the scorer from the index; defaults to BM25 with the
        index's collection statistics.
    metrics:
        Optional registry for per-query counters (queries evaluated,
        postings scanned, traversal heap operations).  None — the
        default — keeps the hot path counter-free.
    """

    index: InvertedIndex
    algorithm: Union[str, TraversalStrategy] = "daat"
    scorer_factory: Optional[Callable[[InvertedIndex], Scorer]] = None
    metrics: Optional[MetricsRegistry] = None
    _parser: QueryParser = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.algorithm = _normalize_algorithm(self.algorithm)
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; choose from {ALGORITHMS}"
            )
        self._parser = QueryParser(analyzer=self.index.analyzer)

    def parse(
        self,
        text: str,
        mode: QueryMode = QueryMode.OR,
        k: int = DEFAULT_TOP_K,
    ) -> ParsedQuery:
        """Parse raw text with the index's analyzer."""
        return self._parser.parse(text, mode=mode, k=k)

    def search(
        self,
        query: Union[str, ParsedQuery],
        mode: QueryMode = QueryMode.OR,
        k: int = DEFAULT_TOP_K,
        cancel: Optional[threading.Event] = None,
        max_docs_scored: Optional[int] = None,
    ) -> SearchResult:
        """Evaluate ``query`` (raw text or pre-parsed) and return results.

        ``cancel`` is an optional cancellation token: when set before
        the traversal starts, the attempt raises :class:`SearchCancelled`
        instead of doing the work (cancel-on-first-winner support for
        hedged fan-outs).

        ``max_docs_scored`` is the deadline scheduler's early-
        termination depth — honoured by ``block_max_wand`` (which
        returns the best-so-far heap once the budget is spent) and
        ignored by the exhaustive/WAND traversals, whose work is not
        budgetable without changing their result contract.
        """
        if cancel is not None and cancel.is_set():
            raise SearchCancelled(
                f"attempt cancelled before traversal of {query!r}"
            )
        if isinstance(query, str):
            query = self.parse(query, mode=mode, k=k)
        scorer = self._make_scorer()
        stats = TraversalStats()
        store_stats = getattr(self.index, "store_stats", None)
        store_before = store_stats() if store_stats is not None else None
        if self.algorithm == "taat":
            hits = score_taat(self.index, query, scorer)
            docs_scored: Optional[int] = None
            blocks_skipped: Optional[int] = None
        elif self.algorithm == "wand":
            hits = score_wand(
                self.index, query, scorer, metrics=self.metrics, stats=stats
            )
            docs_scored = stats.docs_scored
            blocks_skipped = None
        elif self.algorithm == "block_max_wand":
            hits = score_block_max_wand(
                self.index,
                query,
                scorer,
                metrics=self.metrics,
                stats=stats,
                max_docs_scored=max_docs_scored,
            )
            docs_scored = stats.docs_scored
            blocks_skipped = stats.block_skips
        else:
            hits = score_daat(
                self.index, query, scorer, metrics=self.metrics, stats=stats
            )
            docs_scored = stats.docs_scored
            blocks_skipped = None
        matched_volume = self.index.matched_postings_volume(list(query.terms))
        blocks_fetched: Optional[int] = None
        bytes_read: Optional[int] = None
        if store_before is not None:
            paging = store_stats().delta(store_before)
            blocks_fetched = paging.blocks_fetched
            bytes_read = paging.bytes_read
        if self.metrics is not None:
            self.metrics.counter("search.queries").add()
            self.metrics.counter("search.postings_scanned").add(matched_volume)
        return SearchResult(
            hits=tuple(hits),
            query=query,
            matched_volume=matched_volume,
            docs_scored=docs_scored,
            blocks_skipped=blocks_skipped,
            blocks_fetched=blocks_fetched,
            bytes_read=bytes_read,
            truncated=stats.truncated,
        )

    def _make_scorer(self) -> Scorer:
        if self.scorer_factory is not None:
            return self.scorer_factory(self.index)
        return BM25Scorer(
            num_documents=self.index.num_documents,
            average_doc_length=self.index.average_doc_length,
        )


@dataclass
class ShardSearcher:
    """Evaluates queries against one intra-server partition.

    Results are translated to collection-global doc ids so the merger
    can combine shards directly.
    """

    shard: IndexShard
    algorithm: Union[str, TraversalStrategy] = "daat"
    scorer_factory: Optional[Callable[[InvertedIndex], Scorer]] = None
    metrics: Optional[MetricsRegistry] = None
    _searcher: Searcher = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._searcher = Searcher(
            index=self.shard.index,
            algorithm=self.algorithm,
            scorer_factory=self.scorer_factory,
            metrics=self.metrics,
        )

    def search(
        self,
        query: Union[str, ParsedQuery],
        mode: QueryMode = QueryMode.OR,
        k: int = DEFAULT_TOP_K,
        cancel: Optional[threading.Event] = None,
        max_docs_scored: Optional[int] = None,
    ) -> SearchResult:
        """Search the shard; hits carry global doc ids.

        ``cancel`` is forwarded to the underlying searcher; a set token
        raises :class:`SearchCancelled` before the traversal begins.
        ``max_docs_scored`` is forwarded as the per-shard early-
        termination depth (Block-Max WAND only).
        """
        local = self._searcher.search(
            query,
            mode=mode,
            k=k,
            cancel=cancel,
            max_docs_scored=max_docs_scored,
        )
        global_hits = tuple(
            SearchHit(score=hit.score, doc_id=self.shard.to_global(hit.doc_id))
            for hit in local.hits
        )
        return SearchResult(
            hits=global_hits,
            query=local.query,
            matched_volume=local.matched_volume,
            docs_scored=local.docs_scored,
            blocks_skipped=local.blocks_skipped,
            blocks_fetched=local.blocks_fetched,
            bytes_read=local.bytes_read,
            truncated=local.truncated,
        )
