"""Query parsing and normalization."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from repro.text.analyzer import Analyzer, default_analyzer

#: Default result-page size; the benchmark returns 10 hits per query.
DEFAULT_TOP_K = 10


class QueryMode(Enum):
    """Boolean semantics of a multi-term query.

    The benchmark's index serving node evaluates queries disjunctively
    (``OR``) and ranks by score — a document matching any term is a
    candidate.  ``AND`` restricts candidates to documents containing
    every term.
    """

    OR = "or"
    AND = "and"


@dataclass(frozen=True)
class ParsedQuery:
    """An analyzed, executable query.

    Attributes
    ----------
    terms:
        Analyzed terms with duplicates removed, original order kept.
        (Duplicate query terms contribute once, matching Lucene's
        boolean-query deduplication of identical term clauses.)
    mode:
        Boolean semantics (:class:`QueryMode`).
    k:
        Number of results requested.
    """

    terms: Tuple[str, ...]
    mode: QueryMode = QueryMode.OR
    k: int = DEFAULT_TOP_K

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")

    @property
    def is_empty(self) -> bool:
        """True when analysis removed every term (e.g. all stopwords)."""
        return not self.terms


@dataclass(frozen=True)
class QueryParser:
    """Turns raw query strings into :class:`ParsedQuery` objects.

    Must be constructed with the same analyzer the index was built with;
    :class:`~repro.search.executor.Searcher` does this automatically.
    """

    analyzer: Analyzer = field(default_factory=default_analyzer)

    def parse(
        self,
        text: str,
        mode: QueryMode = QueryMode.OR,
        k: int = DEFAULT_TOP_K,
    ) -> ParsedQuery:
        """Analyze ``text`` and build a query with the given semantics."""
        terms = self.analyzer.analyze(text)
        deduped: List[str] = []
        seen = set()
        for term in terms:
            if term not in seen:
                seen.add(term)
                deduped.append(term)
        return ParsedQuery(terms=tuple(deduped), mode=mode, k=k)
