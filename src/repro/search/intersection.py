"""List intersection algorithms for conjunctive queries.

Conjunctive (AND) evaluation reduces to intersecting doc-id lists, and
the algorithm matters when list lengths are skewed — which, under a
Zipfian vocabulary, they almost always are.  Three classic algorithms:

- :func:`intersect_merge` — linear merge, O(n + m); best for lists of
  similar length;
- :func:`intersect_gallop` — small-vs-large galloping (exponential
  probe + binary search), O(n log(m/n)); best when one list is much
  shorter;
- :func:`intersect_adaptive` — picks between them by length ratio,
  and intersects k lists smallest-first so the candidate set shrinks
  as fast as possible.

``score_conjunctive`` runs a full AND query on top of the adaptive
intersection and must rank identically to DAAT in AND mode (the test
suite enforces it); the micro benchmarks compare the algorithms'
throughput on skewed lists.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.index.inverted import InvertedIndex
from repro.search.query import ParsedQuery, QueryMode
from repro.search.scoring import BM25Scorer, Scorer, resolve_idf
from repro.search.topk import SearchHit, TopKHeap

#: Length ratio beyond which galloping beats the linear merge.
GALLOP_RATIO = 8.0


def intersect_merge(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Linear two-pointer merge intersection of sorted unique arrays."""
    out: List[int] = []
    i = j = 0
    n, m = first.size, second.size
    while i < n and j < m:
        a, b = first[i], second[j]
        if a == b:
            out.append(int(a))
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return np.asarray(out, dtype=np.int64)


def gallop_to(haystack: np.ndarray, target: int, low: int) -> int:
    """First index ≥ ``low`` with ``haystack[index] >= target``.

    Exponential probing from ``low`` then binary search within the
    bracket — the "galloping" primitive.
    """
    n = haystack.size
    if low >= n:
        return n
    bound = 1
    while low + bound < n and haystack[low + bound] < target:
        bound <<= 1
    high = min(low + bound, n)
    return int(np.searchsorted(haystack[low:high], target) + low)


def intersect_gallop(small: np.ndarray, large: np.ndarray) -> np.ndarray:
    """Small-vs-large intersection: gallop through the long list."""
    out: List[int] = []
    position = 0
    for value in small:
        position = gallop_to(large, int(value), position)
        if position >= large.size:
            break
        if large[position] == value:
            out.append(int(value))
            position += 1
    return np.asarray(out, dtype=np.int64)


def intersect_adaptive(lists: Sequence[np.ndarray]) -> np.ndarray:
    """Intersect k sorted unique lists, smallest first, choosing the
    per-pair algorithm by length ratio."""
    if not lists:
        return np.empty(0, dtype=np.int64)
    ordered = sorted(lists, key=lambda array: array.size)
    result = np.asarray(ordered[0], dtype=np.int64)
    for other in ordered[1:]:
        if result.size == 0:
            return result
        if other.size >= GALLOP_RATIO * result.size:
            result = intersect_gallop(result, other)
        else:
            result = intersect_merge(result, other)
    return result


def score_conjunctive(
    index: InvertedIndex,
    query: ParsedQuery,
    scorer: Optional[Scorer] = None,
) -> List[SearchHit]:
    """AND-mode evaluation via adaptive intersection + post-scoring.

    Ranks identically to :func:`repro.search.daat.score_daat` in AND
    mode; the intersection-first structure is how engines actually run
    conjunctive queries when term frequencies are skewed.
    """
    if query.mode is not QueryMode.AND:
        raise ValueError("score_conjunctive handles AND queries only")
    if query.is_empty:
        return []
    if scorer is None:
        scorer = BM25Scorer(
            num_documents=index.num_documents,
            average_doc_length=index.average_doc_length,
        )

    term_postings = []
    for term in query.terms:
        info = index.term_info(term)
        if info is None:
            return []
        postings = index.postings_for_id(info.term_id)
        if len(postings) == 0:
            return []
        term_postings.append(
            (term, postings, resolve_idf(scorer, term, info.document_frequency))
        )

    candidates = intersect_adaptive(
        [postings.doc_ids for _, postings, _ in term_postings]
    )
    if candidates.size == 0:
        return []

    heap = TopKHeap(query.k)
    doc_lengths = index.doc_lengths
    for doc_id in candidates:
        score = 0.0
        for _, postings, idf in term_postings:
            score += scorer.score(
                postings.frequency_of(int(doc_id)),
                int(doc_lengths[doc_id]),
                idf,
            )
        heap.offer(int(doc_id), score)
    return heap.results()
