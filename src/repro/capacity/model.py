"""The analytical M/G/k capacity model.

Badue et al.'s capacity-planning result (PAPERS.md) is that per-shard
service-time *distributions* are sufficient to predict cluster-level
latency as a function of load — no full simulation needed.  This
module implements that idea for the benchmark's fork-join cluster:

1. **Per-replica queueing.**  Each replica of a shard group is a bank
   of ``num_cores`` cores serving whole-query jobs FCFS.  Mean waiting
   time uses the Allen–Cunneen M/G/k approximation — the M/M/k Erlang-C
   wait scaled by ``(Ca² + Cs²)/2`` — which is exact for M/M/k and
   within a few percent for the lognormal-ish service times measured on
   the native engine.  The *conditional* wait (given any wait) is
   approximated exponential, exactly as in M/M/k; replica groups pool
   into one ``k·replicas``-server queue, the standard approximation for
   least-outstanding routing (which behaves like join-shortest-queue,
   which approaches the pooled queue).  When the cost model has a
   nonzero merge step, the simulated server *re-queues* the merge task
   at its core bank, so a query pays the FCFS wait twice; the model
   mirrors that by stretching the conditional wait by the fitted
   revisit ratio (the two visits are strongly correlated — the
   dominant latency correction at small core counts).

2. **Fork-join across shards.**  A query completes when every shard
   answers, so cluster latency is the max of per-shard response times.
   Per-shard services of one query are *correlated* — the broker splits
   the query's demand across shards by a Dirichlet share vector — so
   the naive independence approximation ``F(t)^shards`` fails badly.
   Instead the model conditions on the split: per profile sample it
   draws the per-shard service vector, multiplies the independent
   per-shard *wait* completion probabilities along the row, and
   averages rows to get the cluster CDF, plus the broker's merge cost.

3. **Service-time distribution.**  The per-shard response is wait +
   unloaded service, where unloaded service is computed per profile
   sample through the same :class:`~repro.cluster.server.
   PartitionModelConfig` cost model the DES uses (pruning, storage
   fetches, per-partition overhead, merge), with cross-shard Dirichlet
   imbalance folded into the sample set.  Everything downstream is
   empirical over these samples, so heavy tails survive — the reason
   the model validates against the *p99*, not just the mean.

The model is deterministic: sample realization uses a fixed internal
seed, so two models built from the same inputs predict identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.analysis.queueing import erlang_c
from repro.cluster.server import PartitionModelConfig
from repro.servers.spec import ServerSpec
from repro.workload.servicetime import ServiceDemandModel

#: Samples drawn when fitting a profile from a parametric demand model.
DEFAULT_PROFILE_SAMPLES = 20_000

#: Internal seed for deterministic sample realization (imbalance draws).
_PROFILE_SEED = 0x5EED

#: Extra stationary-wait fraction the merge's core-bank revisit costs
#: (fully correlated with the arrival wait); fitted against
#: seed-pooled DES runs across 1-8 cores and 30-80% load.
_MERGE_REVISIT_RATIO = 0.8


@dataclass(frozen=True)
class ServiceTimeProfile:
    """A whole-query service-demand distribution (reference-core s).

    ``samples`` are per-query demands *before* sharding — the same
    quantity every :class:`~repro.workload.servicetime.
    ServiceDemandModel` generates and the DES consumes.  Build one
    from measurements (native service times at a known core speed are
    demands at speed 1.0) or from a fitted demand model.
    """

    samples: np.ndarray

    def __post_init__(self) -> None:
        data = np.asarray(self.samples, dtype=np.float64)
        if data.size < 2:
            raise ValueError("profile needs at least two samples")
        if np.any(data < 0):
            raise ValueError("service demands must be non-negative")
        if float(data.mean()) <= 0:
            raise ValueError("profile mean must be positive")
        object.__setattr__(self, "samples", data)

    @classmethod
    def from_demand_model(
        cls,
        demands: ServiceDemandModel,
        num_samples: int = DEFAULT_PROFILE_SAMPLES,
        seed: int = _PROFILE_SEED,
    ) -> "ServiceTimeProfile":
        """Realize a profile from a (possibly parametric) demand model."""
        if num_samples < 2:
            raise ValueError("num_samples must be at least 2")
        rng = np.random.default_rng(seed)
        return cls(samples=demands.demands(num_samples, rng))

    @classmethod
    def from_measurements(
        cls, service_seconds: Sequence[float]
    ) -> "ServiceTimeProfile":
        """Profile from measured native service times (speed-1.0 core)."""
        return cls(samples=np.asarray(service_seconds, dtype=np.float64))

    @classmethod
    def from_predictor(
        cls,
        predictor,
        features: Sequence,
        num_samples: int = DEFAULT_PROFILE_SAMPLES,
        seed: int = _PROFILE_SEED,
    ) -> "ServiceTimeProfile":
        """Profile from a calibrated service-time predictor.

        Closes the prediction → planning loop: instead of replaying a
        large query sample natively, resample ``features`` (any
        admission-time :class:`~repro.predict.features.QueryFeatures`
        sample, e.g. a calibration holdout) and multiply each point
        prediction by a draw from the predictor's log-normal residual
        error model.  The error term matters — without it the profile's
        tail (and thus every p99 this model predicts) would be
        optimistic by exactly the predictor's unexplained variance.

        ``predictor`` is duck-typed: anything with ``predict(features)``
        and ``residual_log_sigma`` works.
        """
        if not features:
            raise ValueError("from_predictor needs at least one feature row")
        if num_samples < 2:
            raise ValueError("num_samples must be at least 2")
        predictions = np.asarray(
            [predictor.predict(row) for row in features], dtype=np.float64
        )
        rng = np.random.default_rng(seed)
        choices = rng.integers(predictions.size, size=num_samples)
        noise = np.exp(
            predictor.residual_log_sigma * rng.standard_normal(num_samples)
        )
        return cls(samples=predictions[choices] * noise)

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def scv(self) -> float:
        """Squared coefficient of variation — the M/G/k correction."""
        mean = self.mean
        return float(self.samples.var() / (mean * mean))

    def quantile(self, q: float) -> float:
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        return float(np.quantile(self.samples, q))


@dataclass(frozen=True)
class CapacityPrediction:
    """The model's answer for one ``(qps, shards, replicas)`` point."""

    qps: float
    shards: int
    replicas: int
    utilization: float
    stable: bool
    probability_wait: float
    mean_wait_s: float
    p50_s: float
    p95_s: float
    p99_s: float

    def as_dict(self) -> dict:
        return {
            "qps": self.qps,
            "shards": self.shards,
            "replicas": self.replicas,
            "utilization": self.utilization,
            "stable": self.stable,
            "probability_wait": self.probability_wait,
            "mean_wait_s": self.mean_wait_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
        }


@dataclass(frozen=True)
class CapacityModel:
    """Analytical latency-vs-load model of the sharded, replicated cluster.

    Attributes
    ----------
    profile:
        Whole-query service-demand distribution.
    spec:
        Server model of every replica (cores × core speed).
    partitioning:
        Intra-server cost model — the same object the DES interprets,
        so pruning/storage/overhead calibration transfers unchanged.
    broker_merge_per_server:
        Broker merge cost per responding shard (seconds), added as a
        deterministic shift to every cluster quantile.
    imbalance_concentration:
        Dirichlet concentration of the cross-shard work split (mirrors
        ``FanoutConfig.server_imbalance_concentration``); per-shard
        demand samples are drawn as ``demand × share`` rather than
        ``demand / shards`` so shard-level variance survives.
    """

    profile: ServiceTimeProfile
    spec: ServerSpec
    partitioning: PartitionModelConfig = field(
        default_factory=PartitionModelConfig
    )
    broker_merge_per_server: float = 2e-5
    imbalance_concentration: float = 60.0

    def __post_init__(self) -> None:
        if self.broker_merge_per_server < 0:
            raise ValueError("broker_merge_per_server must be non-negative")
        if self.imbalance_concentration <= 0:
            raise ValueError("imbalance_concentration must be positive")

    # ------------------------------------------------------------------
    # Per-shard work and unloaded service time.

    def _shard_demand_matrix(self, shards: int) -> np.ndarray:
        """``(samples, shards)`` per-shard demands, row = one query.

        Each query's demand splits across shards by a Dirichlet share
        vector — the *same* split the DES applies — so one row's shard
        demands are strongly correlated (they sum to the query demand).
        Preserving that correlation is what makes the fork-join max
        tractable empirically: the naive independence approximation
        ``F_shard(t)^shards`` over-predicts cluster medians by ~2x
        because a query that is heavy on one shard is necessarily
        light on the others.
        """
        demands = self.profile.samples
        if shards == 1:
            return demands[:, np.newaxis]
        rng = np.random.default_rng(_PROFILE_SEED + shards)
        shares = rng.dirichlet(
            np.full(shards, self.imbalance_concentration),
            size=demands.size,
        )
        return demands[:, np.newaxis] * shares

    def _work_matrix(self, shards: int) -> np.ndarray:
        """Reference-core seconds each query costs each shard's replica."""
        return self.partitioning.total_work(self._shard_demand_matrix(shards))

    def _unloaded_service(self, shards: int) -> np.ndarray:
        """Unloaded (no-queueing) per-shard completion-time matrix.

        With one partition this is exact: the whole work runs on one
        core.  With ``P`` partitions the fork-join makespan is
        approximated wave-by-wave: ``ceil(P / cores)`` execution waves,
        each costing the expected *largest* Dirichlet task share of the
        scoring demand plus the per-partition overhead, with the merge
        serialized after.
        """
        config = self.partitioning
        demands = self._shard_demand_matrix(shards)
        scoring = config.effective_demand(demands)
        p = config.num_partitions
        if p == 1:
            span = scoring + config.partition_overhead
        else:
            rng = np.random.default_rng(_PROFILE_SEED + 7919 * p)
            shares = rng.dirichlet(
                np.full(p, config.imbalance_concentration), size=64
            )
            max_share = float(shares.max(axis=1).mean())
            waves = math.ceil(p / self.spec.num_cores)
            span = waves * (scoring * max_share + config.partition_overhead)
        return (span + config.merge_demand()) / self.spec.core_speed

    # ------------------------------------------------------------------
    # The queueing layer.

    def saturation_qps(self, shards: int, replicas: int) -> float:
        """Work-conservation capacity of the configuration (queries/s)."""
        self._validate(shards, replicas)
        mean_work = float(self._work_matrix(shards).mean())
        return replicas * self.spec.compute_capacity / mean_work

    def _response_model(
        self, qps: float, shards: int, replicas: int
    ) -> "_ResponseModel":
        """Queueing state + response-time CDF for one operating point.

        The shared substrate behind :meth:`predict` (which inverts the
        CDF for quantiles) and :meth:`attainment` (which evaluates it at
        an SLO).  ``cdf`` excludes the deterministic broker ``merge``
        shift; callers account for it (quantiles add it, attainment
        subtracts it from the SLO).
        """
        self._validate(shards, replicas)
        if qps <= 0:
            raise ValueError("qps must be positive")
        work = self._work_matrix(shards)
        mean_work = float(work.mean())
        scv = float(work.var() / (mean_work * mean_work))
        # The replica group pools into one k-server queue: k cores, each
        # serving whole queries at rate core_speed / mean_work.
        servers = self.spec.num_cores * replicas
        service_rate = self.spec.core_speed / mean_work
        utilization = qps / (servers * service_rate)
        if utilization >= 1.0:
            return _ResponseModel(
                utilization=utilization,
                stable=False,
                probability_wait=1.0,
                total_mean_wait=float("inf"),
                cdf=None,
                service_max=float("inf"),
                mean_response_s=float("inf"),
                merge=self.broker_merge_per_server * shards,
            )
        probability_wait = erlang_c(qps, service_rate, servers)
        drain = servers * service_rate - qps
        # Allen–Cunneen: the M/M/k mean wait scaled by (Ca^2 + Cs^2)/2
        # with Poisson arrivals (Ca^2 = 1).
        mean_wait = probability_wait / drain * (1.0 + scv) / 2.0
        # Conditional wait approximated exponential (exact for M/M/k):
        # theta solves  P_wait / theta = mean_wait.
        theta = probability_wait / mean_wait if mean_wait > 0 else float("inf")
        # A server with a nonzero merge step visits its core bank TWICE
        # per query — the merge task re-queues behind work that arrived
        # while scoring ran — so each shard pays a second FCFS wait on
        # top of the arrival wait.  The two visits are strongly
        # positively correlated (a query that queued on arrival returns
        # to a still-busy bank), so the total is modeled as
        # ``(1 + r) * W1`` rather than an independent convolution:
        # P(any wait) stays Pw and only the conditional scale grows.
        # r = 0.6 matches the DES within ~10% on both the median and
        # the p99 from 1 to 8 cores up to 80% load; the independence
        # form instead overshoots medians by ~40% at small k.
        revisit_ratio = (
            _MERGE_REVISIT_RATIO
            if self.partitioning.merge_demand() > 0
            else 0.0
        )
        total_mean_wait = mean_wait * (1.0 + revisit_ratio)
        conditional_scale = (
            theta / (1.0 + revisit_ratio) if np.isfinite(theta) else theta
        )
        service = self._unloaded_service(shards)  # (samples, shards)
        merge = self.broker_merge_per_server * shards

        def wait_cdf(slack: np.ndarray) -> np.ndarray:
            """P(total queueing delay <= slack), elementwise, slack >= 0.

            Zero-inflated exponential: ``P(W=0) = 1 - Pw``, conditional
            total wait Exp(theta / (1 + r)) covering both visits.
            """
            if not np.isfinite(conditional_scale):
                return np.ones_like(slack)
            pw = probability_wait
            return (1.0 - pw) + pw * (
                1.0 - np.exp(-conditional_scale * slack)
            )

        def cluster_cdf(t: float) -> float:
            """P(max over shards of wait + service <= t).

            Per-shard waits are independent across shards (each shard
            group queues separately), so conditioned on one query's
            per-shard services the completion probabilities multiply
            along a row; the outer mean integrates over the correlated
            service matrix.
            """
            slack = t - service
            reached = slack >= 0.0
            factor = np.where(
                reached, wait_cdf(np.maximum(slack, 0.0)), 0.0
            )
            return float(factor.prod(axis=1).mean())

        return _ResponseModel(
            utilization=utilization,
            stable=True,
            probability_wait=probability_wait,
            total_mean_wait=total_mean_wait,
            cdf=cluster_cdf,
            service_max=float(service.max()),
            mean_response_s=(
                total_mean_wait
                + float(service.max(axis=1).mean())
                + merge
            ),
            merge=merge,
        )

    def predict(
        self, qps: float, shards: int = 1, replicas: int = 1
    ) -> CapacityPrediction:
        """Predicted utilization and latency quantiles at ``qps``.

        An unstable point (offered work ≥ capacity) reports
        ``stable=False`` with infinite latencies rather than raising, so
        sweeps can plot the knee.
        """
        state = self._response_model(qps, shards, replicas)
        if not state.stable:
            return CapacityPrediction(
                qps=qps,
                shards=shards,
                replicas=replicas,
                utilization=state.utilization,
                stable=False,
                probability_wait=1.0,
                mean_wait_s=float("inf"),
                p50_s=float("inf"),
                p95_s=float("inf"),
                p99_s=float("inf"),
            )
        cluster_cdf = state.cdf

        def cluster_quantile(q: float) -> float:
            low = 0.0
            high = state.service_max + state.total_mean_wait + 1e-6
            while cluster_cdf(high) < q:
                high *= 2.0
                if high > 1e9:  # pragma: no cover - defensive
                    return float("inf")
            for _ in range(60):
                mid = (low + high) / 2.0
                if cluster_cdf(mid) < q:
                    low = mid
                else:
                    high = mid
            return high + state.merge

        return CapacityPrediction(
            qps=qps,
            shards=shards,
            replicas=replicas,
            utilization=state.utilization,
            stable=True,
            probability_wait=state.probability_wait,
            mean_wait_s=state.total_mean_wait,
            p50_s=cluster_quantile(0.50),
            p95_s=cluster_quantile(0.95),
            p99_s=cluster_quantile(0.99),
        )

    def attainment(
        self, qps: float, slo_s: float, shards: int = 1, replicas: int = 1
    ) -> float:
        """P(response time ≤ ``slo_s``) at the operating point.

        The CDF evaluated at the SLO — the model's prediction of SLO
        attainment with every replica up.  Unstable points attain 0.0:
        an overloaded queue eventually misses every deadline.
        """
        if slo_s <= 0:
            raise ValueError("slo_s must be positive")
        state = self._response_model(qps, shards, replicas)
        if not state.stable:
            return 0.0
        return min(1.0, state.cdf(max(0.0, slo_s - state.merge)))

    def expected_slo_attainment(
        self,
        qps: float,
        slo_s: float,
        shards: int,
        replicas: int,
        mttf_s: float,
        mttr_s: float,
    ) -> float:
        """Expected SLO attainment under replica MTTF/MTTR failures.

        Each replica is up with steady-state probability
        ``a = MTTF / (MTTF + MTTR)`` independently, so the number of
        survivors is Binomial(``replicas``, ``a``); the expectation
        averages the full-knowledge attainment at each survivor count
        (zero when none survive or the survivors are unstable at the
        offered load).  A first-order in-flight loss term is subtracted:
        a query resident for ``T`` seconds loses a serving replica —
        and with it the query — with probability ≈ ``shards · T/MTTF``.
        """
        if mttf_s <= 0:
            raise ValueError("mttf_s must be positive")
        if mttr_s < 0:
            raise ValueError("mttr_s must be non-negative")
        availability = mttf_s / (mttf_s + mttr_s)
        expected = 0.0
        for up in range(1, replicas + 1):
            weight = (
                math.comb(replicas, up)
                * availability**up
                * (1.0 - availability) ** (replicas - up)
            )
            if weight <= 0.0:
                continue
            state = self._response_model(qps, shards, up)
            if not state.stable:
                continue
            att = min(1.0, state.cdf(max(0.0, slo_s - state.merge)))
            crash_loss = min(
                1.0, shards * state.mean_response_s / mttf_s
            )
            expected += weight * att * (1.0 - crash_loss)
        return expected

    def replicas_for_slo(
        self,
        qps: float,
        p99_slo_s: float,
        shards: int = 1,
        max_replicas: int = 256,
        *,
        mttf_s: Optional[float] = None,
        mttr_s: Optional[float] = None,
        attainment_target: float = 0.99,
    ) -> int:
        """Smallest replica count whose predicted p99 meets the SLO.

        Without ``mttf_s``/``mttr_s`` this is the full-fleet inverse of
        :meth:`predict`.  With them, provisioning becomes
        *availability-aware*: the answer is the smallest N whose
        :meth:`expected_slo_attainment` over the Binomial survivor
        distribution meets ``attainment_target`` — N+k headroom, where
        k absorbs the replicas expected to be down at any instant.

        Raises ``ValueError`` when even ``max_replicas`` replicas miss
        the SLO — the SLO is below the unloaded service floor, or the
        search cap is too small for the offered load.
        """
        if p99_slo_s <= 0:
            raise ValueError("p99_slo_s must be positive")
        if max_replicas <= 0:
            raise ValueError("max_replicas must be positive")
        if (mttf_s is None) != (mttr_s is None):
            raise ValueError("mttf_s and mttr_s must be given together")
        if not 0.0 < attainment_target < 1.0:
            raise ValueError("attainment_target must be in (0, 1)")
        # Start at the stability floor instead of probing 1..n replicas
        # that cannot even carry the offered work.
        floor = max(1, math.ceil(qps / self.saturation_qps(shards, 1) + 1e-9))
        if mttf_s is None:
            for replicas in range(floor, max_replicas + 1):
                prediction = self.predict(
                    qps, shards=shards, replicas=replicas
                )
                if prediction.stable and prediction.p99_s <= p99_slo_s:
                    return replicas
        else:
            for replicas in range(floor, max_replicas + 1):
                expected = self.expected_slo_attainment(
                    qps,
                    p99_slo_s,
                    shards=shards,
                    replicas=replicas,
                    mttf_s=mttf_s,
                    mttr_s=mttr_s,
                )
                if expected >= attainment_target:
                    return replicas
        raise ValueError(
            f"no replica count <= {max_replicas} meets p99 <= "
            f"{p99_slo_s * 1000:.1f} ms at {qps:.0f} qps"
        )

    @staticmethod
    def _validate(shards: int, replicas: int) -> None:
        if shards <= 0:
            raise ValueError("shards must be positive")
        if replicas <= 0:
            raise ValueError("replicas must be positive")


@dataclass(frozen=True)
class _ResponseModel:
    """Internal: queueing state + response CDF for one operating point."""

    utilization: float
    stable: bool
    probability_wait: float
    total_mean_wait: float
    #: P(queueing + service max over shards <= t), or None if unstable.
    #: Excludes the deterministic broker ``merge`` shift.
    cdf: Optional[Callable[[float], float]]
    service_max: float
    mean_response_s: float
    merge: float
