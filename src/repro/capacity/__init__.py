"""Capacity planning: analytical queueing model + replica autoscaling.

The benchmark characterizes latency at *fixed* load points; serving
diurnal, million-user traffic needs the inverse question answered —
how many replicas does a given load require under a tail-latency SLO?
This package provides:

- :class:`ServiceTimeProfile` — a per-query service-demand
  distribution, fitted from a demand model, from native measurements,
  or from raw samples;
- :class:`CapacityModel` — an M/G/k-style analytical model predicting
  per-replica utilization and p50/p95/p99 latency as a function of
  offered QPS, shard count, and replica count, plus the inverse
  :meth:`CapacityModel.replicas_for_slo`;
- :func:`peak_replicas` / :func:`static_replica_hours` — the static
  peak-provisioning baseline an autoscaler is judged against.

The DES-side control loop that *acts* on the model lives in
:mod:`repro.sim.autoscale`; the diurnal + flash-crowd trace generator
that drives both lives in :mod:`repro.workload.diurnal`.
"""

from repro.capacity.model import (
    CapacityModel,
    CapacityPrediction,
    ServiceTimeProfile,
)
from repro.capacity.plan import (
    ProvisioningPlan,
    peak_replicas,
    plan_provisioning,
    static_replica_hours,
)

__all__ = [
    "CapacityModel",
    "CapacityPrediction",
    "ServiceTimeProfile",
    "ProvisioningPlan",
    "peak_replicas",
    "plan_provisioning",
    "static_replica_hours",
]
