"""Provisioning plans: static peak sizing vs model-driven schedules.

The baseline every autoscaler is judged against is *static peak
provisioning*: size the cluster for the worst minute of the day and pay
for it around the clock.  :func:`peak_replicas` computes that size from
a :class:`~repro.capacity.model.CapacityModel` and a rate envelope;
:func:`plan_provisioning` computes the model-driven alternative — an
interval-by-interval replica schedule sized against the envelope — and
the :class:`ProvisioningPlan` it returns reports the replica-hours each
approach spends, the quantity the fig. 27 headline compares.

These plans are *offline* (they size against the deterministic
envelope, with a safety margin for the stochastic excursion around it);
the *online* control loop that reacts to observed traffic lives in
:mod:`repro.sim.autoscale`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.capacity.model import CapacityModel
from repro.workload.diurnal import DiurnalArrivals


def peak_replicas(
    model: CapacityModel,
    arrivals: DiurnalArrivals,
    p99_slo_s: float,
    shards: int = 1,
    horizon_s: float | None = None,
    headroom: float = 1.1,
    max_replicas: int = 256,
) -> int:
    """Static sizing: replicas that meet the SLO at the envelope peak.

    ``headroom`` inflates the peak rate (default 10%) to cover the
    Poisson excursion above the deterministic envelope — the same
    margin an operator sizing from a rate chart would apply.
    """
    if headroom < 1.0:
        raise ValueError("headroom must be >= 1")
    peak_qps = arrivals.peak_envelope_qps(horizon_s) * headroom
    return model.replicas_for_slo(
        peak_qps, p99_slo_s, shards=shards, max_replicas=max_replicas
    )


def static_replica_hours(replicas: int, horizon_s: float) -> float:
    """Replica-hours a fixed fleet of ``replicas`` spends over the horizon."""
    if replicas <= 0:
        raise ValueError("replicas must be positive")
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    return replicas * horizon_s / 3600.0


@dataclass(frozen=True)
class ProvisioningPlan:
    """A model-driven replica schedule over a planning horizon.

    ``boundaries_s[i]`` is when ``replicas[i]`` takes effect; the last
    segment runs to ``horizon_s``.  ``static_replicas`` is the peak
    sizing the plan is judged against.
    """

    boundaries_s: Tuple[float, ...]
    replicas: Tuple[int, ...]
    horizon_s: float
    static_replicas: int

    def __post_init__(self) -> None:
        if len(self.boundaries_s) != len(self.replicas) or not self.replicas:
            raise ValueError("boundaries and replicas must align, non-empty")

    def replicas_at(self, t: float) -> int:
        """Planned replica count at time ``t``."""
        idx = int(np.searchsorted(self.boundaries_s, t, side="right")) - 1
        return self.replicas[max(idx, 0)]

    def replica_hours(self) -> float:
        """Replica-hours the schedule spends over the horizon."""
        edges = list(self.boundaries_s) + [self.horizon_s]
        total = 0.0
        for i, count in enumerate(self.replicas):
            total += count * max(0.0, edges[i + 1] - edges[i])
        return total / 3600.0

    def static_hours(self) -> float:
        return static_replica_hours(self.static_replicas, self.horizon_s)

    def savings_fraction(self) -> float:
        """Fraction of static peak replica-hours the plan avoids."""
        static = self.static_hours()
        return 1.0 - self.replica_hours() / static


def plan_provisioning(
    model: CapacityModel,
    arrivals: DiurnalArrivals,
    p99_slo_s: float,
    shards: int = 1,
    horizon_s: float | None = None,
    interval_s: float = 900.0,
    headroom: float = 1.1,
    max_replicas: int = 256,
) -> ProvisioningPlan:
    """Size each ``interval_s`` slice against the envelope's local peak.

    Each interval is provisioned for the *maximum* envelope rate inside
    it (times ``headroom``), so the plan never knowingly under-sizes a
    slice; flash crowds shorter than the interval still raise that
    interval's sizing because the maximum sees them.
    """
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    if headroom < 1.0:
        raise ValueError("headroom must be >= 1")
    horizon = float(horizon_s) if horizon_s is not None else arrivals.period_s
    static = peak_replicas(
        model,
        arrivals,
        p99_slo_s,
        shards=shards,
        horizon_s=horizon,
        headroom=headroom,
        max_replicas=max_replicas,
    )
    boundaries: List[float] = []
    counts: List[int] = []
    start = 0.0
    while start < horizon:
        end = min(start + interval_s, horizon)
        grid = np.linspace(start, end, num=32)
        local_peak = float(arrivals.envelope_qps(grid).max()) * headroom
        count = model.replicas_for_slo(
            local_peak, p99_slo_s, shards=shards, max_replicas=max_replicas
        )
        if counts and counts[-1] == count:
            pass  # extend the previous segment
        else:
            boundaries.append(start)
            counts.append(count)
        start = end
    return ProvisioningPlan(
        boundaries_s=tuple(boundaries),
        replicas=tuple(counts),
        horizon_s=horizon,
        static_replicas=static,
    )
