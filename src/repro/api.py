"""The blessed public surface of the reproduction.

Everything a user script needs lives here, under three entry points:

- :class:`SearchEngine` — the *native* benchmark: a real Python search
  stack (synthetic corpus, partitioned index, thread-pool fan-out)
  measured on the wall clock;
- :class:`ClusterModel` — the *simulated* benchmark: the same fork-join
  architecture in a discrete-event simulator, for sweeps the native
  engine is too slow or too noisy for;
- :class:`HedgingPolicy` — the tail-tolerance policy (deadlines,
  hedged requests, bounded retry) interpreted identically by both.

The resilience layer follows the same pattern: declarative
:class:`OverloadPolicy` (admission control / load shedding),
:class:`BreakerConfig` (per-shard circuit breakers), and
:class:`FaultPlan` (the chaos harness) objects are interpreted by both
the native engine and the simulated cluster.  A query refused by
admission control is a :class:`ShedResponse` — still a
:class:`QueryOutcome`, with ``coverage == 0.0`` and ``shed`` True.

Both entry points produce *query outcomes* satisfying the
:class:`QueryOutcome` protocol — ``latency_s``, ``coverage``, and
``doc_ids()`` — so analysis code is agnostic to which path produced a
result.  Supporting configuration types (corpus/query-log shapes,
workload models, straggler sources, server specs) are re-exported so
examples and notebooks need exactly one import::

    from repro.api import SearchEngine, ClusterModel, HedgingPolicy

The deeper modules (``repro.engine``, ``repro.cluster``, ...) remain
importable for research code that needs the internals, but this module
is the supported, stability-guaranteed surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Tuple, runtime_checkable

from repro.capacity import (
    CapacityModel,
    CapacityPrediction,
    ProvisioningPlan,
    ServiceTimeProfile,
    peak_replicas,
    plan_provisioning,
    static_replica_hours,
)
from repro.cluster.fanout import (
    FanoutConfig,
    FanoutQueryRecord,
    FanoutResult,
    run_fanout_open_loop,
)
from repro.cluster.server import PartitionModelConfig, StorageModelConfig
from repro.core.reporting import format_series, format_table
from repro.core.scheduling import (
    ScheduledComparisonPoint,
    compare_servers_vs_partitions_scheduled,
    crossover_partitions,
)
from repro.corpus.generator import CorpusConfig
from repro.corpus.querylog import QueryLog, QueryLogConfig
from repro.corpus.vocabulary import VocabularyConfig
from repro.engine.execution import (
    EXECUTION_BACKENDS,
    ExecutionConfig,
    resolve_execution,
)
from repro.engine.hedging import (
    DISABLED_POLICY,
    HedgingPolicy,
    ShardLatencyTracker,
)
from repro.engine.isn import IsnResponse
from repro.engine.service import (
    ResultPageEntry,
    SearchPage,
    SearchService,
    SearchServiceConfig,
)
from repro.index.partitioner import PartitionStrategy
from repro.index.store import TieredStorageConfig
from repro.predict.calibrate import PredictorCalibration, calibrate_predictor
from repro.predict.features import QueryFeatures, extract_features
from repro.predict.predictor import ServiceTimePredictor
from repro.predict.scheduler import DeadlineCappedDemand, DeadlineScheduler
from repro.resilience.admission import (
    AimdConfig,
    OverloadPolicy,
    ShedResponse,
)
from repro.resilience.breaker import BreakerConfig, BreakerState
from repro.resilience.faults import (
    ErrorBurst,
    FaultPlan,
    ShardCrash,
    ShardSlowdown,
)
from repro.metrics.summary import EMPTY_SUMMARY, LatencySummary, summarize
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.search.strategy import TraversalStrategy
from repro.servers.catalog import BIG_SERVER, MID_SERVER, SMALL_SERVER
from repro.servers.spec import ServerSpec
from repro.sim.autoscale import (
    AutoscaleConfig,
    AutoscaleResult,
    ModelPolicy,
    ReactivePolicy,
    StaticPolicy,
    run_autoscaled_cluster,
)
from repro.sim.failures import (
    SHED_REPLICA_CRASH,
    MttfMttrFailures,
    ReplicaFailureModel,
    TraceFailures,
    steady_state_availability,
)
from repro.sim.hiccups import HiccupConfig
from repro.sim.network import NetworkModel, NoDelay
from repro.sim.outages import OutageSpec
from repro.workload.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.workload.diurnal import DiurnalArrivals, FlashCrowd
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import LognormalDemand

__all__ = [
    # the three blessed entry points
    "SearchEngine",
    "ClusterModel",
    "HedgingPolicy",
    # their configs
    "EngineConfig",
    "ClusterConfig",
    "ExecutionConfig",
    "EXECUTION_BACKENDS",
    "DISABLED_POLICY",
    # the common outcome protocol and concrete outcome types
    "QueryOutcome",
    "IsnResponse",
    "SearchPage",
    "ResultPageEntry",
    "FanoutQueryRecord",
    "FanoutResult",
    "LatencySummary",
    "EMPTY_SUMMARY",
    "summarize",
    # resilience: overload control, circuit breaking, chaos
    "OverloadPolicy",
    "AimdConfig",
    "ShedResponse",
    "BreakerConfig",
    "BreakerState",
    "FaultPlan",
    "ShardCrash",
    "ShardSlowdown",
    "ErrorBurst",
    # corpus / workload / infrastructure building blocks
    "CorpusConfig",
    "VocabularyConfig",
    "QueryLogConfig",
    "QueryLog",
    "PartitionStrategy",
    "PartitionModelConfig",
    "StorageModelConfig",
    "TieredStorageConfig",
    "TraversalStrategy",
    "WorkloadScenario",
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "MMPPArrivals",
    "LognormalDemand",
    "ServerSpec",
    "BIG_SERVER",
    "MID_SERVER",
    "SMALL_SERVER",
    "NetworkModel",
    "NoDelay",
    "HiccupConfig",
    "OutageSpec",
    "ShardLatencyTracker",
    # capacity planning & autoscaling
    "CapacityModel",
    "CapacityPrediction",
    "ServiceTimeProfile",
    "ProvisioningPlan",
    "peak_replicas",
    "plan_provisioning",
    "static_replica_hours",
    "DiurnalArrivals",
    "FlashCrowd",
    "AutoscaleConfig",
    "AutoscaleResult",
    "StaticPolicy",
    "ReactivePolicy",
    "ModelPolicy",
    "run_autoscaled_cluster",
    # service-time prediction & deadline-aware scheduling
    "ServiceTimePredictor",
    "DeadlineScheduler",
    "DeadlineCappedDemand",
    "QueryFeatures",
    "extract_features",
    "PredictorCalibration",
    "calibrate_predictor",
    "ScheduledComparisonPoint",
    "compare_servers_vs_partitions_scheduled",
    "crossover_partitions",
    # replica failure & recovery
    "ReplicaFailureModel",
    "MttfMttrFailures",
    "TraceFailures",
    "steady_state_availability",
    "SHED_REPLICA_CRASH",
    # observability + reporting
    "Tracer",
    "MetricsRegistry",
    "format_table",
    "format_series",
]


@runtime_checkable
class QueryOutcome(Protocol):
    """What every query answer looks like, regardless of the path.

    :class:`IsnResponse` (native ISN), :class:`SearchPage` (rendered
    page), ``FrontendResponse`` (multi-ISN broker), and the simulator's
    per-query records all satisfy this protocol structurally — analysis
    code can mix outcomes from any of them.
    """

    @property
    def latency_s(self) -> float:
        """End-to-end latency in seconds."""
        ...

    @property
    def coverage(self) -> float:
        """Fraction of index shards reflected in the answer (≤ 1.0)."""
        ...

    def doc_ids(self) -> List[int]:
        """Result doc ids, best first (empty for time-only models)."""
        ...


@dataclass(frozen=True, kw_only=True)
class EngineConfig:
    """Keyword-only configuration of a native :class:`SearchEngine`.

    A thin, stable veneer over the internal service config: the same
    knobs, but all keyword-only so adding fields never breaks callers.

    ``execution`` selects the fan-out backend
    (:class:`ExecutionConfig`); the old ``num_threads`` spelling still
    works but warns and maps onto
    ``ExecutionConfig(backend="threads", workers=num_threads)``.
    """

    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    query_log: QueryLogConfig = field(default_factory=QueryLogConfig)
    num_partitions: int = 1
    partition_strategy: PartitionStrategy = PartitionStrategy.ROUND_ROBIN
    algorithm: "str | TraversalStrategy" = "daat"
    use_global_stats: bool = True
    num_threads: Optional[int] = None
    execution: Optional[ExecutionConfig] = None
    hedging: Optional[HedgingPolicy] = None
    overload: Optional[OverloadPolicy] = None
    breakers: Optional[BreakerConfig] = None
    faults: Optional[FaultPlan] = None
    tiered: Optional[TieredStorageConfig] = None
    scheduler: Optional[DeadlineScheduler] = None

    def __post_init__(self) -> None:
        # Warn at construction time (not first use) and fold the
        # deprecated spelling away so inner layers never re-warn.
        resolved = resolve_execution(
            self.execution, self.num_threads, "EngineConfig"
        )
        object.__setattr__(self, "execution", resolved)
        object.__setattr__(self, "num_threads", None)

    def to_service_config(self) -> SearchServiceConfig:
        """The internal config this maps onto."""
        return SearchServiceConfig(
            corpus=self.corpus,
            query_log=self.query_log,
            num_partitions=self.num_partitions,
            partition_strategy=self.partition_strategy,
            algorithm=self.algorithm,
            use_global_stats=self.use_global_stats,
            execution=self.execution,
            hedging=self.hedging,
            overload=self.overload,
            breakers=self.breakers,
            faults=self.faults,
            tiered=self.tiered,
            scheduler=self.scheduler,
        )


class SearchEngine:
    """The native benchmark behind one object.

    Builds the synthetic corpus, partitions and indexes it, and serves
    queries through the ISN's parallel (optionally tail-tolerant)
    fan-out.  Construct from an :class:`EngineConfig` or from keyword
    overrides directly::

        engine = SearchEngine(num_partitions=4)
        outcome = engine.search("web search ranking")
        outcome.latency_s, outcome.coverage, outcome.doc_ids()
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        *,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        **overrides,
    ):
        if config is None:
            config = EngineConfig(**overrides)
        elif overrides:
            raise TypeError(
                "pass either a config object or keyword overrides, not both"
            )
        self.config = config
        self._service = SearchService(
            config.to_service_config(), tracer=tracer, metrics=metrics
        )

    @property
    def service(self) -> SearchService:
        """The underlying service (escape hatch to the internals)."""
        return self._service

    @property
    def query_log(self) -> QueryLog:
        """The generated query log (Zipfian popularity, web length mix)."""
        return self._service.query_log

    @property
    def num_partitions(self) -> int:
        """Intra-server partitions of the served index."""
        return self._service.partitioned.num_partitions

    def search(self, text: str, k: int = 10) -> IsnResponse:
        """Answer a query through the parallel fan-out path."""
        return self._service.search(text, k=k)

    def search_batch(self, texts: List[str], k: int = 10) -> List[IsnResponse]:
        """Answer many queries in one fan-out wave.

        Identical results to per-query :meth:`search`; on the process
        execution backend work items are batched per dispatch, which is
        where cross-query throughput scaling comes from.
        """
        return self._service.search_batch(texts, k=k)

    def search_page(self, text: str, k: int = 10) -> SearchPage:
        """Answer a query and render the full result page."""
        return self._service.search_page(text, k=k)

    def document(self, doc_id: int):
        """Fetch the document behind a result's global doc id."""
        return self._service.document(doc_id)

    def health(self) -> dict:
        """Liveness snapshot: backend, worker-pool probe state (process
        backend; ``health.*`` metrics mirror it), breaker states."""
        return self._service.health()

    def close(self) -> None:
        """Deterministically release executors, worker processes, and
        shared-memory segments (idempotent; context manager does this)."""
        self._service.close()

    def __enter__(self) -> "SearchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True, kw_only=True)
class ClusterConfig:
    """Keyword-only configuration of a simulated :class:`ClusterModel`.

    ``num_servers`` shard groups × ``replicas_per_shard`` replicas,
    each an independent fork-join server with ``num_partitions``
    intra-server partitions.  ``hiccups``/``outages`` inject
    stragglers; ``hedging`` mitigates them.
    """

    num_servers: int = 1
    spec: ServerSpec = BIG_SERVER
    num_partitions: int = 1
    partitioning: Optional[PartitionModelConfig] = None
    network: NetworkModel = field(default_factory=NoDelay)
    broker_merge_per_server: float = 2e-5
    hedging: Optional[HedgingPolicy] = None
    replicas_per_shard: int = 1
    hiccups: Optional[HiccupConfig] = None
    outages: Tuple[OutageSpec, ...] = ()
    overload: Optional[OverloadPolicy] = None
    breakers: Optional[BreakerConfig] = None
    faults: Optional[FaultPlan] = None

    def to_fanout_config(self) -> FanoutConfig:
        """The internal config this maps onto."""
        partitioning = self.partitioning
        if partitioning is None:
            partitioning = PartitionModelConfig(
                num_partitions=self.num_partitions
            )
        elif partitioning.num_partitions != self.num_partitions and (
            self.num_partitions != 1
        ):
            raise ValueError(
                "set num_partitions either directly or via partitioning, "
                "not inconsistently in both"
            )
        return FanoutConfig(
            num_servers=self.num_servers,
            spec=self.spec,
            partitioning=partitioning,
            network=self.network,
            broker_merge_per_server=self.broker_merge_per_server,
            hedging=self.hedging,
            replicas_per_shard=self.replicas_per_shard,
            hiccups=self.hiccups,
            outages=self.outages,
            overload=self.overload,
            breakers=self.breakers,
            faults=self.faults,
        )


#: Default per-query demand model: mean ~14 ms, heavy lognormal tail —
#: the shape measured for the benchmark's query service times.
DEFAULT_DEMAND = LognormalDemand(mu=-4.6, sigma=0.8)


class ClusterModel:
    """The simulated benchmark cluster behind one object.

    Wraps the DES fan-out tier: the same fork-join architecture as the
    native engine, driven by a demand model instead of a real index, so
    load/partitioning/tail-tolerance sweeps run in milliseconds::

        model = ClusterModel(num_servers=4, hedging=HedgingPolicy(
            hedge_delay_s=0.01, deadline_s=0.2), replicas_per_shard=2,
            hiccups=HiccupConfig(mean_interval=1.0, pause_duration=0.03))
        result = model.run(rate_qps=100, num_queries=5_000)
        result.summary().p999, result.mean_coverage()
    """

    def __init__(self, config: Optional[ClusterConfig] = None, **overrides):
        if config is None:
            config = ClusterConfig(**overrides)
        elif overrides:
            raise TypeError(
                "pass either a config object or keyword overrides, not both"
            )
        self.config = config
        self._fanout = config.to_fanout_config()

    @property
    def fanout_config(self) -> FanoutConfig:
        """The internal config (escape hatch to the internals)."""
        return self._fanout

    def run(
        self,
        *,
        rate_qps: float,
        num_queries: int,
        demand: Optional[LognormalDemand] = None,
        arrivals: Optional[ArrivalProcess] = None,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> FanoutResult:
        """Simulate ``num_queries`` at ``rate_qps`` offered load.

        ``arrivals`` overrides the default Poisson process (pass
        :class:`DeterministicArrivals` for clocked arrivals); when set,
        ``rate_qps`` seeds that process only if it was built from it.
        """
        if arrivals is None:
            arrivals = PoissonArrivals(rate=rate_qps)
        scenario = WorkloadScenario(
            arrivals=arrivals,
            demands=demand if demand is not None else DEFAULT_DEMAND,
            num_queries=num_queries,
        )
        return run_fanout_open_loop(
            self._fanout, scenario, seed=seed, metrics=metrics
        )

    def run_scenario(
        self,
        scenario: WorkloadScenario,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> FanoutResult:
        """Simulate a fully specified workload scenario."""
        return run_fanout_open_loop(
            self._fanout, scenario, seed=seed, metrics=metrics
        )
