"""Per-query records and aggregate results of a cluster simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.metrics.summary import LatencySummary, summarize


@dataclass
class QueryRecord:
    """Timeline of one query through the simulated server.

    All times are absolute simulation seconds; ``nan`` until the
    corresponding stage happens.  The derived properties implement the
    component breakdown reported by the architecture-analysis figure.
    """

    query_id: int
    client_send: float
    demand: float
    server_arrival: float = float("nan")
    first_task_start: float = float("nan")
    earliest_task_end: float = float("nan")
    last_task_end: float = float("nan")
    merge_start: float = float("nan")
    merge_end: float = float("nan")
    client_receive: float = float("nan")
    coverage: float = 1.0

    @property
    def complete(self) -> bool:
        """True once the response reached the client."""
        return not np.isnan(self.client_receive)

    @property
    def latency(self) -> float:
        """End-to-end response time seen by the client."""
        return self.client_receive - self.client_send

    @property
    def latency_s(self) -> float:
        """Alias of :attr:`latency` (common query-outcome accessor)."""
        return self.latency

    def doc_ids(self) -> List[int]:
        """Doc ids of the answer — empty: the simulator models time, not
        content (protocol accessor shared with the native engine)."""
        return []

    @property
    def server_latency(self) -> float:
        """Time spent inside the server (excludes network)."""
        return self.merge_end - self.server_arrival

    @property
    def queue_wait(self) -> float:
        """Arrival → first partition task starting on a core."""
        return self.first_task_start - self.server_arrival

    @property
    def parallel_service(self) -> float:
        """First task start → earliest partition task completion."""
        return self.earliest_task_end - self.first_task_start

    @property
    def straggler_skew(self) -> float:
        """Earliest → last partition task completion (fork-join skew)."""
        return self.last_task_end - self.earliest_task_end

    @property
    def merge_wait(self) -> float:
        """Last task end → merge starting on a core."""
        return self.merge_start - self.last_task_end

    @property
    def merge_service(self) -> float:
        """Merge execution time."""
        return self.merge_end - self.merge_start

    @property
    def network_time(self) -> float:
        """Total client↔server network time."""
        return self.latency - self.server_latency


#: Component labels, in pipeline order, for breakdown reporting.
BREAKDOWN_COMPONENTS = (
    "queue_wait",
    "parallel_service",
    "straggler_skew",
    "merge_wait",
    "merge_service",
    "network_time",
)


@dataclass
class SimulationResult:
    """All per-query records of one simulation run plus run metadata."""

    records: List[QueryRecord]
    horizon: float
    core_busy_time: float
    num_cores: int
    label: str = ""

    def __post_init__(self) -> None:
        incomplete = [r.query_id for r in self.records if not r.complete]
        if incomplete:
            raise ValueError(
                f"{len(incomplete)} queries never completed "
                f"(first: {incomplete[:5]})"
            )

    def __len__(self) -> int:
        return len(self.records)

    def _selected(self, warmup_fraction: float) -> List[QueryRecord]:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        skip = int(len(self.records) * warmup_fraction)
        return self.records[skip:]

    def latencies(self, warmup_fraction: float = 0.0) -> np.ndarray:
        """Client-observed latencies, optionally dropping warm-up queries."""
        return np.array(
            [record.latency for record in self._selected(warmup_fraction)]
        )

    def summary(self, warmup_fraction: float = 0.0) -> LatencySummary:
        """Latency summary over the post-warm-up window."""
        return summarize(self.latencies(warmup_fraction))

    def achieved_qps(self) -> float:
        """Completed queries per second of simulated time."""
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        return len(self.records) / self.horizon

    def utilization(self) -> float:
        """Average core utilization over the run."""
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        return self.core_busy_time / (self.num_cores * self.horizon)

    def breakdown_means(self, warmup_fraction: float = 0.0) -> Dict[str, float]:
        """Mean seconds per latency component (sums to mean latency)."""
        selected = self._selected(warmup_fraction)
        if not selected:
            raise ValueError("no records after warm-up filtering")
        return {
            component: float(
                np.mean([getattr(record, component) for record in selected])
            )
            for component in BREAKDOWN_COMPONENTS
        }

    def breakdown_at_percentile(
        self, quantile: float, warmup_fraction: float = 0.0
    ) -> Dict[str, float]:
        """Component values of the query at the given latency percentile.

        Tail analysis wants to know *what the p99 query spent its time
        on*, which is not the per-component p99 (components of different
        queries don't co-occur).  This picks the actual query nearest
        the requested percentile and reports its components.
        """
        selected = self._selected(warmup_fraction)
        if not selected:
            raise ValueError("no records after warm-up filtering")
        latencies = np.array([record.latency for record in selected])
        order = np.argsort(latencies)
        position = min(
            len(order) - 1, int(round(quantile / 100.0 * (len(order) - 1)))
        )
        record = selected[int(order[position])]
        return {
            component: getattr(record, component)
            for component in BREAKDOWN_COMPONENTS
        }
