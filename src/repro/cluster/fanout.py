"""Simulated multi-server fan-out: the cluster tier of the benchmark.

The full benchmark architecture shards the collection across ``N``
index serving nodes; a broker broadcasts each query to all of them and
merges their pages.  This module models that tier in the DES: each ISN
is an independent fork-join server (own cores, own partitions), a query
completes when the *slowest* ISN responds plus broker merge — the
"tail at scale" structure where the cluster's latency is an order
statistic of per-node latencies.

With a :class:`~repro.engine.hedging.HedgingPolicy` (plus optionally
replicas, hiccups, or scripted outages as straggler sources) the broker
becomes *tail-tolerant*: shard requests carry deadlines, stragglers are
hedged to a different replica, and a deadline miss degrades the merge
to the shards that answered (``coverage`` < 1).  The same policy object
drives the native :class:`~repro.engine.isn.IndexServingNode`, keeping
the simulator calibrated against the engine's mitigation behaviour.
Without any tail feature configured, the simulation takes the original
analytic path and is bit-identical to the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cluster.results import QueryRecord
from repro.cluster.server import PartitionModelConfig, SimulatedServer
from repro.engine.hedging import HedgingPolicy, ShardLatencyTracker
from repro.metrics.summary import LatencySummary, summarize
from repro.obs.registry import MetricsRegistry
from repro.servers.spec import ServerSpec
from repro.sim.engine import EventHandle, Simulator
from repro.sim.hiccups import HiccupConfig, HiccupSchedule
from repro.sim.network import NetworkModel, NoDelay
from repro.sim.outages import FixedOutages, OutageSpec
from repro.sim.random import RandomStreams
from repro.workload.scenario import WorkloadScenario


@dataclass(frozen=True)
class FanoutConfig:
    """A homogeneous cluster of ISNs behind one broker.

    Attributes
    ----------
    num_servers:
        ISNs the collection is sharded across; each receives ``1/N`` of
        every query's work (document-sharded indexes scale down
        per-node postings volume linearly).
    spec:
        Server model of every ISN.
    partitioning:
        Intra-server partitioning cost model of every ISN.
    network:
        One-way delay model applied per hop (client→broker→ISN and
        back); the broker hop is where fan-out skew accumulates.
    broker_merge_per_server:
        Broker-side merge cost per responding ISN, in seconds.
    server_imbalance_concentration:
        Dirichlet concentration of each query's work split across
        servers — document sharding never splits a query's postings
        volume perfectly evenly, and this per-(query, server) jitter is
        what the broker's wait-for-the-slowest amplifies at scale.
    hedging:
        Optional tail-tolerance policy interpreted by the broker
        against simulated time — same object the native ISN consumes.
        None (or an inert policy) keeps the seed's plain fan-out.
    replicas_per_shard:
        Identical replicas per shard group.  Hedged backups go to a
        *different* replica than the primary (a whole-server pause
        freezes all its cores, so re-asking the same server cannot
        win); primaries pick the least-loaded replica.
    hiccups:
        Optional stop-the-world pause process applied independently to
        every replica — the stochastic straggler source.
    outages:
        Scripted per-replica stall windows — the deterministic
        straggler source (takes precedence over ``hiccups`` on the
        replicas it names).
    """

    num_servers: int
    spec: ServerSpec
    partitioning: PartitionModelConfig = field(
        default_factory=PartitionModelConfig
    )
    network: NetworkModel = field(default_factory=NoDelay)
    broker_merge_per_server: float = 2e-5
    server_imbalance_concentration: float = 60.0
    hedging: Optional[HedgingPolicy] = None
    replicas_per_shard: int = 1
    hiccups: Optional[HiccupConfig] = None
    outages: Tuple[OutageSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.num_servers <= 0:
            raise ValueError("num_servers must be positive")
        if self.broker_merge_per_server < 0:
            raise ValueError("broker_merge_per_server must be non-negative")
        if self.server_imbalance_concentration <= 0:
            raise ValueError("server_imbalance_concentration must be positive")
        if self.replicas_per_shard <= 0:
            raise ValueError("replicas_per_shard must be positive")
        for outage in self.outages:
            if outage.shard >= self.num_servers:
                raise ValueError(
                    f"outage names shard {outage.shard}; "
                    f"cluster has {self.num_servers}"
                )
            if outage.replica >= self.replicas_per_shard:
                raise ValueError(
                    f"outage names replica {outage.replica}; "
                    f"cluster has {self.replicas_per_shard} per shard"
                )

    @property
    def tail_tolerant(self) -> bool:
        """True when any tail feature moves us off the seed fast path."""
        return (
            (self.hedging is not None and self.hedging.enabled)
            or self.replicas_per_shard > 1
            or self.hiccups is not None
            or bool(self.outages)
        )


@dataclass
class FanoutQueryRecord:
    """Timeline of one query through the fan-out cluster.

    ``coverage`` and the hedge counters stay at their defaults on the
    plain path; the tail-tolerant broker fills them in.
    """

    query_id: int
    client_send: float
    total_demand: float
    isn_completions: List[float] = field(default_factory=list)
    client_receive: float = float("nan")
    coverage: float = 1.0
    hedges_issued: int = 0
    hedges_won: int = 0
    deadline_misses: int = 0

    @property
    def complete(self) -> bool:
        return not np.isnan(self.client_receive)

    @property
    def latency(self) -> float:
        """End-to-end response time."""
        return self.client_receive - self.client_send

    @property
    def latency_s(self) -> float:
        """Alias of :attr:`latency` (common query-outcome accessor)."""
        return self.latency

    def doc_ids(self) -> List[int]:
        """Empty — the simulator models time, not result content
        (protocol accessor shared with the native engine)."""
        return []

    @property
    def slowest_isn_completion(self) -> float:
        """When the straggler ISN finished."""
        return max(self.isn_completions)

    @property
    def fanout_skew(self) -> float:
        """Slowest minus fastest ISN completion."""
        return max(self.isn_completions) - min(self.isn_completions)


@dataclass
class FanoutResult:
    """All per-query records of one fan-out simulation."""

    records: List[FanoutQueryRecord]
    horizon: float
    num_servers: int

    def __len__(self) -> int:
        return len(self.records)

    def latencies(self, warmup_fraction: float = 0.0) -> np.ndarray:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        skip = int(len(self.records) * warmup_fraction)
        return np.array([r.latency for r in self.records[skip:]])

    def summary(self, warmup_fraction: float = 0.0) -> LatencySummary:
        return summarize(self.latencies(warmup_fraction))

    def mean_fanout_skew(self) -> float:
        """Average straggler skew across queries."""
        return float(np.mean([r.fanout_skew for r in self.records]))

    def mean_coverage(self, warmup_fraction: float = 0.0) -> float:
        """Mean fraction of shards merged per query."""
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        skip = int(len(self.records) * warmup_fraction)
        selected = self.records[skip:]
        if not selected:
            raise ValueError("no records after warm-up filtering")
        return float(np.mean([r.coverage for r in selected]))

    @property
    def hedges_issued(self) -> int:
        """Total backup requests the broker issued."""
        return sum(r.hedges_issued for r in self.records)

    @property
    def hedges_won(self) -> int:
        """Shard answers won by a backup request."""
        return sum(r.hedges_won for r in self.records)

    @property
    def deadline_misses(self) -> int:
        """Shard requests dropped for missing their deadline."""
        return sum(r.deadline_misses for r in self.records)


def run_fanout_open_loop(
    config: FanoutConfig,
    scenario: WorkloadScenario,
    seed: int = 0,
    metrics: Optional[MetricsRegistry] = None,
) -> FanoutResult:
    """Simulate the cluster under an open-loop arrival process.

    ``scenario`` demands are *whole-query* demands; each ISN executes
    ``demand / num_servers`` (its index slice) through its own
    fork-join partition model.

    With any tail feature configured (hedging policy, replicas,
    hiccups, outages) the simulation runs the event-driven
    tail-tolerant broker; otherwise it takes the seed's analytic path,
    which is bit-identical to pre-tail-tolerance builds.
    """
    if config.tail_tolerant:
        return _run_fanout_tail_tolerant(config, scenario, seed, metrics)
    streams = RandomStreams(seed)
    arrival_times, demands = scenario.realize(
        streams.stream("arrivals"), streams.stream("demands")
    )
    network_rng = streams.stream("network")

    sim = Simulator()
    records: List[FanoutQueryRecord] = []
    pending: dict = {}

    def make_isn_completion(record: FanoutQueryRecord) -> Callable:
        def on_complete(server_record: QueryRecord) -> None:
            arrival = server_record.merge_end + config.network.delay(
                network_rng
            )
            record.isn_completions.append(arrival)
            pending[record.query_id] -= 1
            if pending[record.query_id] == 0:
                merge_done = (
                    max(record.isn_completions)
                    + config.broker_merge_per_server * config.num_servers
                )
                record.client_receive = merge_done + config.network.delay(
                    network_rng
                )
                records.append(record)

        return on_complete

    servers = []
    completion_handlers = {}
    for server_index in range(config.num_servers):
        servers.append(
            SimulatedServer(
                sim,
                config.spec,
                config.partitioning,
                imbalance_rng=streams.stream(f"imbalance-{server_index}"),
                on_complete=lambda rec: completion_handlers[id(rec)](rec),
            )
        )

    shard_rng = streams.stream("server-imbalance")
    for query_id, (send_time, demand) in enumerate(zip(arrival_times, demands)):
        record = FanoutQueryRecord(
            query_id=query_id,
            client_send=float(send_time),
            total_demand=float(demand),
        )
        pending[query_id] = config.num_servers
        handler = make_isn_completion(record)
        if config.num_servers == 1:
            shares = np.ones(1)
        else:
            shares = shard_rng.dirichlet(
                np.full(
                    config.num_servers, config.server_imbalance_concentration
                )
            )
        for server, share in zip(servers, shares):
            server_record = QueryRecord(
                query_id=query_id,
                client_send=float(send_time),
                demand=float(demand) * float(share),
            )
            completion_handlers[id(server_record)] = handler
            arrival = float(send_time) + config.network.delay(network_rng)
            sim.schedule(arrival, server.handle_arrival, server_record)

    sim.run()
    incomplete = [r for r in pending.values() if r != 0]
    if incomplete:
        raise RuntimeError(f"{len(incomplete)} queries never completed")
    records.sort(key=lambda record: record.client_send)
    return FanoutResult(
        records=records, horizon=sim.now, num_servers=config.num_servers
    )


class _ShardState:
    """Broker-side state of one (query, shard) request."""

    __slots__ = (
        "answered",
        "missed",
        "hedges_issued",
        "tried",
        "hedge_handle",
        "deadline_handle",
    )

    def __init__(self) -> None:
        self.answered = False
        self.missed = False
        self.hedges_issued = 0
        self.tried: Set[int] = set()
        self.hedge_handle: Optional[EventHandle] = None
        self.deadline_handle: Optional[EventHandle] = None

    @property
    def decided(self) -> bool:
        return self.answered or self.missed


class _QueryState:
    """Broker-side state of one in-flight query."""

    __slots__ = ("record", "dispatch_time", "pending", "done", "shards")

    def __init__(self, record: FanoutQueryRecord, num_shards: int) -> None:
        self.record = record
        self.dispatch_time = float("nan")
        self.pending = num_shards
        self.done = False
        self.shards = [_ShardState() for _ in range(num_shards)]


def _replica_stalls(
    config: FanoutConfig,
    streams: RandomStreams,
    shard: int,
    replica: int,
):
    """The stall source for one replica: scripted outages beat hiccups."""
    windows = [
        (outage.start, outage.duration)
        for outage in config.outages
        if outage.shard == shard and outage.replica == replica
    ]
    if windows:
        return FixedOutages(windows)
    if config.hiccups is not None:
        return HiccupSchedule(
            config.hiccups, streams.stream(f"hiccups-{shard}-{replica}")
        )
    return None


def _run_fanout_tail_tolerant(
    config: FanoutConfig,
    scenario: WorkloadScenario,
    seed: int,
    metrics: Optional[MetricsRegistry] = None,
) -> FanoutResult:
    """Event-driven fan-out with deadlines, hedging, and replicas.

    The broker dispatches each shard request to the least-loaded
    replica, schedules cancellable hedge/deadline events against the
    simulator clock, re-issues stragglers to a *different* replica, and
    finishes a query when every shard is decided — answered or
    deadline-missed.  Late and loser answers are ignored (the DES
    cannot retract work already committed to a replica's cores, which
    mirrors a backend without mid-request cancellation).
    """
    policy = (
        config.hedging
        if config.hedging is not None and config.hedging.enabled
        else None
    )
    streams = RandomStreams(seed)
    arrival_times, demands = scenario.realize(
        streams.stream("arrivals"), streams.stream("demands")
    )
    network_rng = streams.stream("network")
    sim = Simulator()
    tracker = ShardLatencyTracker()
    records: List[FanoutQueryRecord] = []
    completion_handlers: Dict[int, Callable[[QueryRecord], None]] = {}

    servers: List[List[SimulatedServer]] = []
    for shard in range(config.num_servers):
        group = []
        for replica in range(config.replicas_per_shard):
            stream_name = (
                f"imbalance-{shard}"
                if replica == 0
                else f"imbalance-{shard}r{replica}"
            )
            group.append(
                SimulatedServer(
                    sim,
                    config.spec,
                    config.partitioning,
                    imbalance_rng=streams.stream(stream_name),
                    on_complete=lambda rec: completion_handlers.pop(id(rec))(
                        rec
                    ),
                    hiccups=_replica_stalls(config, streams, shard, replica),
                )
            )
        servers.append(group)

    shard_rng = streams.stream("server-imbalance")

    def dispatch_attempt(
        state: _QueryState, shard: int, demand: float, kind: str
    ) -> bool:
        """Send one attempt to an untried replica; False if none left."""
        shard_state = state.shards[shard]
        candidates = [
            replica
            for replica in range(config.replicas_per_shard)
            if replica not in shard_state.tried
        ]
        if not candidates:
            return False
        replica = min(
            candidates, key=lambda r: (servers[shard][r].outstanding, r)
        )
        shard_state.tried.add(replica)
        server_record = QueryRecord(
            query_id=state.record.query_id,
            client_send=state.record.client_send,
            demand=demand,
        )

        def on_server_done(
            rec: QueryRecord, state=state, shard=shard, kind=kind
        ) -> None:
            arrival = rec.merge_end + config.network.delay(network_rng)
            sim.schedule(arrival, on_answer, state, shard, kind)

        completion_handlers[id(server_record)] = on_server_done
        arrival = sim.now + config.network.delay(network_rng)
        sim.schedule(
            arrival, servers[shard][replica].handle_arrival, server_record
        )
        return True

    def on_answer(state: _QueryState, shard: int, kind: str) -> None:
        shard_state = state.shards[shard]
        if state.done or shard_state.decided:
            return  # a loser, or an answer past its deadline
        shard_state.answered = True
        if kind == "hedge":
            state.record.hedges_won += 1
        tracker.observe(sim.now - state.dispatch_time)
        if shard_state.hedge_handle is not None:
            shard_state.hedge_handle.cancel()
        if shard_state.deadline_handle is not None:
            shard_state.deadline_handle.cancel()
        state.record.isn_completions.append(sim.now)
        state.pending -= 1
        maybe_finish(state)

    def on_hedge_timer(
        state: _QueryState, shard: int, demand: float, delay: float
    ) -> None:
        shard_state = state.shards[shard]
        shard_state.hedge_handle = None
        if state.done or shard_state.decided:
            return
        if shard_state.hedges_issued >= policy.max_hedges:
            return
        if not dispatch_attempt(state, shard, demand, "hedge"):
            return  # every replica already tried
        shard_state.hedges_issued += 1
        state.record.hedges_issued += 1
        if shard_state.hedges_issued < policy.max_hedges:
            shard_state.hedge_handle = sim.schedule_after(
                delay, on_hedge_timer, state, shard, demand, delay
            )

    def on_deadline(state: _QueryState, shard: int) -> None:
        shard_state = state.shards[shard]
        if state.done or shard_state.answered:
            return
        shard_state.missed = True
        state.record.deadline_misses += 1
        if shard_state.hedge_handle is not None:
            shard_state.hedge_handle.cancel()
        state.pending -= 1
        maybe_finish(state)

    def maybe_finish(state: _QueryState) -> None:
        if state.pending > 0:
            return
        state.done = True
        answered = sum(1 for s in state.shards if s.answered)
        state.record.coverage = (
            answered / config.num_servers if config.num_servers else 1.0
        )
        merge_done = sim.now + config.broker_merge_per_server * answered
        state.record.client_receive = merge_done + config.network.delay(
            network_rng
        )
        records.append(state.record)

    def start_query(state: _QueryState) -> None:
        state.dispatch_time = sim.now
        if config.num_servers == 1:
            shares = np.ones(1)
        else:
            shares = shard_rng.dirichlet(
                np.full(
                    config.num_servers, config.server_imbalance_concentration
                )
            )
        hedge_delay = (
            policy.resolve_hedge_delay(tracker) if policy is not None else None
        )
        for shard, share in enumerate(shares):
            demand = state.record.total_demand * float(share)
            dispatch_attempt(state, shard, demand, "primary")
            shard_state = state.shards[shard]
            if (
                hedge_delay is not None
                and config.replicas_per_shard > 1
                and policy.max_hedges > 0
            ):
                shard_state.hedge_handle = sim.schedule_after(
                    hedge_delay, on_hedge_timer, state, shard, demand,
                    hedge_delay,
                )
            if policy is not None and policy.deadline_s is not None:
                shard_state.deadline_handle = sim.schedule_after(
                    policy.deadline_s, on_deadline, state, shard
                )

    states: List[_QueryState] = []
    for query_id, (send_time, demand) in enumerate(
        zip(arrival_times, demands)
    ):
        record = FanoutQueryRecord(
            query_id=query_id,
            client_send=float(send_time),
            total_demand=float(demand),
        )
        state = _QueryState(record, config.num_servers)
        states.append(state)
        sim.schedule(float(send_time), start_query, state)

    sim.run()
    unfinished = [state for state in states if not state.done]
    if unfinished:
        raise RuntimeError(f"{len(unfinished)} queries never completed")
    if metrics is not None:
        metrics.counter("fanout.queries").add(len(records))
        metrics.counter("fanout.hedges_issued").add(
            sum(r.hedges_issued for r in records)
        )
        metrics.counter("fanout.hedges_won").add(
            sum(r.hedges_won for r in records)
        )
        metrics.counter("fanout.deadline_misses").add(
            sum(r.deadline_misses for r in records)
        )
    records.sort(key=lambda record: record.client_send)
    return FanoutResult(
        records=records, horizon=sim.now, num_servers=config.num_servers
    )
