"""Simulated multi-server fan-out: the cluster tier of the benchmark.

The full benchmark architecture shards the collection across ``N``
index serving nodes; a broker broadcasts each query to all of them and
merges their pages.  This module models that tier in the DES: each ISN
is an independent fork-join server (own cores, own partitions), a query
completes when the *slowest* ISN responds plus broker merge — the
"tail at scale" structure where the cluster's latency is an order
statistic of per-node latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.cluster.results import QueryRecord
from repro.cluster.server import PartitionModelConfig, SimulatedServer
from repro.metrics.summary import LatencySummary, summarize
from repro.servers.spec import ServerSpec
from repro.sim.engine import Simulator
from repro.sim.network import NetworkModel, NoDelay
from repro.sim.random import RandomStreams
from repro.workload.scenario import WorkloadScenario


@dataclass(frozen=True)
class FanoutConfig:
    """A homogeneous cluster of ISNs behind one broker.

    Attributes
    ----------
    num_servers:
        ISNs the collection is sharded across; each receives ``1/N`` of
        every query's work (document-sharded indexes scale down
        per-node postings volume linearly).
    spec:
        Server model of every ISN.
    partitioning:
        Intra-server partitioning cost model of every ISN.
    network:
        One-way delay model applied per hop (client→broker→ISN and
        back); the broker hop is where fan-out skew accumulates.
    broker_merge_per_server:
        Broker-side merge cost per responding ISN, in seconds.
    server_imbalance_concentration:
        Dirichlet concentration of each query's work split across
        servers — document sharding never splits a query's postings
        volume perfectly evenly, and this per-(query, server) jitter is
        what the broker's wait-for-the-slowest amplifies at scale.
    """

    num_servers: int
    spec: ServerSpec
    partitioning: PartitionModelConfig = field(
        default_factory=PartitionModelConfig
    )
    network: NetworkModel = field(default_factory=NoDelay)
    broker_merge_per_server: float = 2e-5
    server_imbalance_concentration: float = 60.0

    def __post_init__(self) -> None:
        if self.num_servers <= 0:
            raise ValueError("num_servers must be positive")
        if self.broker_merge_per_server < 0:
            raise ValueError("broker_merge_per_server must be non-negative")
        if self.server_imbalance_concentration <= 0:
            raise ValueError("server_imbalance_concentration must be positive")


@dataclass
class FanoutQueryRecord:
    """Timeline of one query through the fan-out cluster."""

    query_id: int
    client_send: float
    total_demand: float
    isn_completions: List[float] = field(default_factory=list)
    client_receive: float = float("nan")

    @property
    def complete(self) -> bool:
        return not np.isnan(self.client_receive)

    @property
    def latency(self) -> float:
        """End-to-end response time."""
        return self.client_receive - self.client_send

    @property
    def slowest_isn_completion(self) -> float:
        """When the straggler ISN finished."""
        return max(self.isn_completions)

    @property
    def fanout_skew(self) -> float:
        """Slowest minus fastest ISN completion."""
        return max(self.isn_completions) - min(self.isn_completions)


@dataclass
class FanoutResult:
    """All per-query records of one fan-out simulation."""

    records: List[FanoutQueryRecord]
    horizon: float
    num_servers: int

    def __len__(self) -> int:
        return len(self.records)

    def latencies(self, warmup_fraction: float = 0.0) -> np.ndarray:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        skip = int(len(self.records) * warmup_fraction)
        return np.array([r.latency for r in self.records[skip:]])

    def summary(self, warmup_fraction: float = 0.0) -> LatencySummary:
        return summarize(self.latencies(warmup_fraction))

    def mean_fanout_skew(self) -> float:
        """Average straggler skew across queries."""
        return float(np.mean([r.fanout_skew for r in self.records]))


def run_fanout_open_loop(
    config: FanoutConfig,
    scenario: WorkloadScenario,
    seed: int = 0,
) -> FanoutResult:
    """Simulate the cluster under an open-loop arrival process.

    ``scenario`` demands are *whole-query* demands; each ISN executes
    ``demand / num_servers`` (its index slice) through its own
    fork-join partition model.
    """
    streams = RandomStreams(seed)
    arrival_times, demands = scenario.realize(
        streams.stream("arrivals"), streams.stream("demands")
    )
    network_rng = streams.stream("network")

    sim = Simulator()
    records: List[FanoutQueryRecord] = []
    pending: dict = {}

    def make_isn_completion(record: FanoutQueryRecord) -> Callable:
        def on_complete(server_record: QueryRecord) -> None:
            arrival = server_record.merge_end + config.network.delay(
                network_rng
            )
            record.isn_completions.append(arrival)
            pending[record.query_id] -= 1
            if pending[record.query_id] == 0:
                merge_done = (
                    max(record.isn_completions)
                    + config.broker_merge_per_server * config.num_servers
                )
                record.client_receive = merge_done + config.network.delay(
                    network_rng
                )
                records.append(record)

        return on_complete

    servers = []
    completion_handlers = {}
    for server_index in range(config.num_servers):
        servers.append(
            SimulatedServer(
                sim,
                config.spec,
                config.partitioning,
                imbalance_rng=streams.stream(f"imbalance-{server_index}"),
                on_complete=lambda rec: completion_handlers[id(rec)](rec),
            )
        )

    shard_rng = streams.stream("server-imbalance")
    for query_id, (send_time, demand) in enumerate(zip(arrival_times, demands)):
        record = FanoutQueryRecord(
            query_id=query_id,
            client_send=float(send_time),
            total_demand=float(demand),
        )
        pending[query_id] = config.num_servers
        handler = make_isn_completion(record)
        if config.num_servers == 1:
            shares = np.ones(1)
        else:
            shares = shard_rng.dirichlet(
                np.full(
                    config.num_servers, config.server_imbalance_concentration
                )
            )
        for server, share in zip(servers, shares):
            server_record = QueryRecord(
                query_id=query_id,
                client_send=float(send_time),
                demand=float(demand) * float(share),
            )
            completion_handlers[id(server_record)] = handler
            arrival = float(send_time) + config.network.delay(network_rng)
            sim.schedule(arrival, server.handle_arrival, server_record)

    sim.run()
    incomplete = [r for r in pending.values() if r != 0]
    if incomplete:
        raise RuntimeError(f"{len(incomplete)} queries never completed")
    records.sort(key=lambda record: record.client_send)
    return FanoutResult(
        records=records, horizon=sim.now, num_servers=config.num_servers
    )
