"""Simulated multi-server fan-out: the cluster tier of the benchmark.

The full benchmark architecture shards the collection across ``N``
index serving nodes; a broker broadcasts each query to all of them and
merges their pages.  This module models that tier in the DES: each ISN
is an independent fork-join server (own cores, own partitions), a query
completes when the *slowest* ISN responds plus broker merge — the
"tail at scale" structure where the cluster's latency is an order
statistic of per-node latencies.

With a :class:`~repro.engine.hedging.HedgingPolicy` (plus optionally
replicas, hiccups, or scripted outages as straggler sources) the broker
becomes *tail-tolerant*: shard requests carry deadlines, stragglers are
hedged to a different replica, and a deadline miss degrades the merge
to the shards that answered (``coverage`` < 1).  The same policy object
drives the native :class:`~repro.engine.isn.IndexServingNode`, keeping
the simulator calibrated against the engine's mitigation behaviour.
Without any tail feature configured, the simulation takes the original
analytic path and is bit-identical to the seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cluster.results import QueryRecord
from repro.cluster.server import PartitionModelConfig, SimulatedServer
from repro.engine.hedging import DISABLED_POLICY, HedgingPolicy, ShardLatencyTracker
from repro.metrics.summary import LatencySummary, summarize
from repro.obs.registry import MetricsRegistry
from repro.resilience.admission import (
    SHED_CODEL,
    AdmissionController,
    OverloadPolicy,
)
from repro.resilience.breaker import BreakerBoard, BreakerConfig, BreakerState
from repro.resilience.faults import FaultPlan
from repro.servers.spec import ServerSpec
from repro.sim.engine import EventHandle, Simulator
from repro.sim.hiccups import HiccupConfig, HiccupSchedule
from repro.sim.network import NetworkModel, NoDelay
from repro.sim.outages import FixedOutages, OutageSpec
from repro.sim.random import RandomStreams
from repro.workload.scenario import WorkloadScenario

#: Bucket edges for the broker's admission-queue-depth histogram.
QUEUE_DEPTH_BUCKETS = tuple(float(i) for i in range(0, 65, 4))


@dataclass(frozen=True)
class FanoutConfig:
    """A homogeneous cluster of ISNs behind one broker.

    Attributes
    ----------
    num_servers:
        ISNs the collection is sharded across; each receives ``1/N`` of
        every query's work (document-sharded indexes scale down
        per-node postings volume linearly).
    spec:
        Server model of every ISN.
    partitioning:
        Intra-server partitioning cost model of every ISN.
    network:
        One-way delay model applied per hop (client→broker→ISN and
        back); the broker hop is where fan-out skew accumulates.
    broker_merge_per_server:
        Broker-side merge cost per responding ISN, in seconds.
    server_imbalance_concentration:
        Dirichlet concentration of each query's work split across
        servers — document sharding never splits a query's postings
        volume perfectly evenly, and this per-(query, server) jitter is
        what the broker's wait-for-the-slowest amplifies at scale.
    hedging:
        Optional tail-tolerance policy interpreted by the broker
        against simulated time — same object the native ISN consumes.
        None (or an inert policy) keeps the seed's plain fan-out.
    replicas_per_shard:
        Identical replicas per shard group.  Hedged backups go to a
        *different* replica than the primary (a whole-server pause
        freezes all its cores, so re-asking the same server cannot
        win); primaries pick the least-loaded replica.
    hiccups:
        Optional stop-the-world pause process applied independently to
        every replica — the stochastic straggler source.
    outages:
        Scripted per-replica stall windows — the deterministic
        straggler source (takes precedence over ``hiccups`` on the
        replicas it names).
    overload:
        Optional admission-control policy interpreted by the broker:
        queries beyond the concurrency limit wait in a bounded queue or
        are shed with a refusal record (``coverage == 0``).
    breakers:
        Optional per-``(shard, replica)`` circuit-breaker config fed by
        injected errors, crash rejections, and deadline misses; a
        fenced-off replica is skipped by dispatch.
    faults:
        Optional chaos plan: crash windows reject new requests and
        stall in-flight ones, slowdowns scale dispatched demand, error
        bursts answer with failures drawn from the ``"faults"`` stream.
    """

    num_servers: int
    spec: ServerSpec
    partitioning: PartitionModelConfig = field(
        default_factory=PartitionModelConfig
    )
    network: NetworkModel = field(default_factory=NoDelay)
    broker_merge_per_server: float = 2e-5
    server_imbalance_concentration: float = 60.0
    hedging: Optional[HedgingPolicy] = None
    replicas_per_shard: int = 1
    hiccups: Optional[HiccupConfig] = None
    outages: Tuple[OutageSpec, ...] = ()
    overload: Optional[OverloadPolicy] = None
    breakers: Optional[BreakerConfig] = None
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.num_servers <= 0:
            raise ValueError("num_servers must be positive")
        if self.broker_merge_per_server < 0:
            raise ValueError("broker_merge_per_server must be non-negative")
        if self.server_imbalance_concentration <= 0:
            raise ValueError("server_imbalance_concentration must be positive")
        if self.replicas_per_shard <= 0:
            raise ValueError("replicas_per_shard must be positive")
        for outage in self.outages:
            if outage.shard >= self.num_servers:
                raise ValueError(
                    f"outage names shard {outage.shard}; "
                    f"cluster has {self.num_servers}"
                )
            if outage.replica >= self.replicas_per_shard:
                raise ValueError(
                    f"outage names replica {outage.replica}; "
                    f"cluster has {self.replicas_per_shard} per shard"
                )
        if self.faults is not None:
            faults = (
                self.faults.crashes
                + self.faults.slowdowns
                + self.faults.error_bursts
            )
            for fault in faults:
                if fault.shard >= self.num_servers:
                    raise ValueError(
                        f"fault names shard {fault.shard}; "
                        f"cluster has {self.num_servers}"
                    )
                if (
                    fault.replica is not None
                    and fault.replica >= self.replicas_per_shard
                ):
                    raise ValueError(
                        f"fault names replica {fault.replica}; "
                        f"cluster has {self.replicas_per_shard} per shard"
                    )

    @property
    def resilient(self) -> bool:
        """True when any overload/breaker/chaos feature is configured."""
        return (
            (self.overload is not None and self.overload.enabled)
            or self.breakers is not None
            or (self.faults is not None and self.faults.enabled)
        )

    @property
    def tail_tolerant(self) -> bool:
        """True when any tail feature moves us off the seed fast path."""
        return (
            (self.hedging is not None and self.hedging.enabled)
            or self.replicas_per_shard > 1
            or self.hiccups is not None
            or bool(self.outages)
            or self.resilient
        )


@dataclass
class FanoutQueryRecord:
    """Timeline of one query through the fan-out cluster.

    ``coverage`` and the hedge counters stay at their defaults on the
    plain path; the tail-tolerant broker fills them in.
    """

    query_id: int
    client_send: float
    total_demand: float
    isn_completions: List[float] = field(default_factory=list)
    client_receive: float = float("nan")
    coverage: float = 1.0
    hedges_issued: int = 0
    hedges_won: int = 0
    deadline_misses: int = 0
    breaker_skips: int = 0
    failures: int = 0
    shed: bool = False
    shed_reason: str = ""

    @property
    def complete(self) -> bool:
        return not np.isnan(self.client_receive)

    @property
    def latency(self) -> float:
        """End-to-end response time."""
        return self.client_receive - self.client_send

    @property
    def latency_s(self) -> float:
        """Alias of :attr:`latency` (common query-outcome accessor)."""
        return self.latency

    def doc_ids(self) -> List[int]:
        """Empty — the simulator models time, not result content
        (protocol accessor shared with the native engine)."""
        return []

    @property
    def slowest_isn_completion(self) -> float:
        """When the straggler ISN finished."""
        return max(self.isn_completions)

    @property
    def fanout_skew(self) -> float:
        """Slowest minus fastest ISN completion."""
        return max(self.isn_completions) - min(self.isn_completions)


@dataclass
class FanoutResult:
    """All per-query records of one fan-out simulation.

    ``shard_failures`` counts failed shard requests per shard index
    (injected errors, crash rejections, and deadline misses) across the
    whole run — all zeros on the plain path and on healthy clusters.
    """

    records: List[FanoutQueryRecord]
    horizon: float
    num_servers: int
    shard_failures: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.shard_failures:
            self.shard_failures = tuple(0 for _ in range(self.num_servers))

    def __len__(self) -> int:
        return len(self.records)

    def served_records(
        self, warmup_fraction: float = 0.0
    ) -> List[FanoutQueryRecord]:
        """Post-warm-up records that received a real answer."""
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        skip = int(len(self.records) * warmup_fraction)
        return [r for r in self.records[skip:] if not r.shed]

    def latencies(self, warmup_fraction: float = 0.0) -> np.ndarray:
        """Served-query response times (shed refusals excluded)."""
        return np.array(
            [r.latency for r in self.served_records(warmup_fraction)]
        )

    def summary(self, warmup_fraction: float = 0.0) -> LatencySummary:
        """Latency order statistics over served queries.

        Under total overload every query may be shed; the summary is
        then the NaN :data:`~repro.metrics.summary.EMPTY_SUMMARY`
        rather than an error, so sweeps can plot a gap.
        """
        return summarize(self.latencies(warmup_fraction), empty="nan")

    def mean_fanout_skew(self) -> float:
        """Average straggler skew across queries that reached any ISN."""
        skews = [r.fanout_skew for r in self.records if r.isn_completions]
        if not skews:
            return float("nan")
        return float(np.mean(skews))

    @property
    def shed_count(self) -> int:
        """Queries the broker's admission layer refused."""
        return sum(1 for r in self.records if r.shed)

    def goodput_qps(self, warmup_fraction: float = 0.0) -> float:
        """Coverage-weighted served queries per second.

        A full answer counts 1, a 75%-coverage answer 0.75, a shed
        query 0 — goodput is the rate of *answer mass* delivered, the
        metric overload protection is supposed to preserve.
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        skip = int(len(self.records) * warmup_fraction)
        selected = self.records[skip:]
        if not selected:
            raise ValueError("no records after warm-up filtering")
        total_coverage = float(sum(r.coverage for r in selected))
        span = max(r.client_receive for r in selected) - min(
            r.client_send for r in selected
        )
        if span <= 0:
            return float("inf")
        return total_coverage / span

    def mean_coverage(self, warmup_fraction: float = 0.0) -> float:
        """Mean fraction of shards merged per query."""
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        skip = int(len(self.records) * warmup_fraction)
        selected = self.records[skip:]
        if not selected:
            raise ValueError("no records after warm-up filtering")
        return float(np.mean([r.coverage for r in selected]))

    @property
    def hedges_issued(self) -> int:
        """Total backup requests the broker issued."""
        return sum(r.hedges_issued for r in self.records)

    @property
    def hedges_won(self) -> int:
        """Shard answers won by a backup request."""
        return sum(r.hedges_won for r in self.records)

    @property
    def deadline_misses(self) -> int:
        """Shard requests dropped for missing their deadline."""
        return sum(r.deadline_misses for r in self.records)

    @property
    def breaker_skips(self) -> int:
        """Shard requests never sent because the breaker was open."""
        return sum(r.breaker_skips for r in self.records)

    @property
    def failures(self) -> int:
        """Failed shard attempts (injected errors, crash rejections)."""
        return sum(r.failures for r in self.records)


def run_fanout_open_loop(
    config: FanoutConfig,
    scenario: WorkloadScenario,
    seed: int = 0,
    metrics: Optional[MetricsRegistry] = None,
) -> FanoutResult:
    """Simulate the cluster under an open-loop arrival process.

    ``scenario`` demands are *whole-query* demands; each ISN executes
    ``demand / num_servers`` (its index slice) through its own
    fork-join partition model.

    With any tail feature configured (hedging policy, replicas,
    hiccups, outages) the simulation runs the event-driven
    tail-tolerant broker; otherwise it takes the seed's analytic path,
    which is bit-identical to pre-tail-tolerance builds.
    """
    if config.tail_tolerant:
        return _run_fanout_tail_tolerant(config, scenario, seed, metrics)
    streams = RandomStreams(seed)
    arrival_times, demands = scenario.realize(
        streams.stream("arrivals"), streams.stream("demands")
    )
    network_rng = streams.stream("network")

    sim = Simulator()
    records: List[FanoutQueryRecord] = []
    pending: dict = {}

    def make_isn_completion(record: FanoutQueryRecord) -> Callable:
        def on_complete(server_record: QueryRecord) -> None:
            arrival = server_record.merge_end + config.network.delay(
                network_rng
            )
            record.isn_completions.append(arrival)
            pending[record.query_id] -= 1
            if pending[record.query_id] == 0:
                merge_done = (
                    max(record.isn_completions)
                    + config.broker_merge_per_server * config.num_servers
                )
                record.client_receive = merge_done + config.network.delay(
                    network_rng
                )
                records.append(record)

        return on_complete

    servers = []
    completion_handlers = {}
    for server_index in range(config.num_servers):
        servers.append(
            SimulatedServer(
                sim,
                config.spec,
                config.partitioning,
                imbalance_rng=streams.stream(f"imbalance-{server_index}"),
                on_complete=lambda rec: completion_handlers[id(rec)](rec),
                metrics=metrics,
            )
        )

    shard_rng = streams.stream("server-imbalance")
    for query_id, (send_time, demand) in enumerate(zip(arrival_times, demands)):
        record = FanoutQueryRecord(
            query_id=query_id,
            client_send=float(send_time),
            total_demand=float(demand),
        )
        pending[query_id] = config.num_servers
        handler = make_isn_completion(record)
        if config.num_servers == 1:
            shares = np.ones(1)
        else:
            shares = shard_rng.dirichlet(
                np.full(
                    config.num_servers, config.server_imbalance_concentration
                )
            )
        for server, share in zip(servers, shares):
            server_record = QueryRecord(
                query_id=query_id,
                client_send=float(send_time),
                demand=float(demand) * float(share),
            )
            completion_handlers[id(server_record)] = handler
            arrival = float(send_time) + config.network.delay(network_rng)
            sim.schedule(arrival, server.handle_arrival, server_record)

    sim.run()
    incomplete = [r for r in pending.values() if r != 0]
    if incomplete:
        raise RuntimeError(f"{len(incomplete)} queries never completed")
    records.sort(key=lambda record: record.client_send)
    return FanoutResult(
        records=records, horizon=sim.now, num_servers=config.num_servers
    )


class _ShardState:
    """Broker-side state of one (query, shard) request."""

    __slots__ = (
        "answered",
        "missed",
        "hedges_issued",
        "retries",
        "tried",
        "answered_replicas",
        "failed_replicas",
        "hedge_handle",
        "deadline_handle",
    )

    def __init__(self) -> None:
        self.answered = False
        self.missed = False
        self.hedges_issued = 0
        self.retries = 0
        self.tried: Set[int] = set()
        self.answered_replicas: Set[int] = set()
        self.failed_replicas: Set[int] = set()
        self.hedge_handle: Optional[EventHandle] = None
        self.deadline_handle: Optional[EventHandle] = None

    @property
    def decided(self) -> bool:
        return self.answered or self.missed


class _QueryState:
    """Broker-side state of one in-flight query."""

    __slots__ = (
        "record",
        "dispatch_time",
        "pending",
        "done",
        "shards",
        "demands",
    )

    def __init__(self, record: FanoutQueryRecord, num_shards: int) -> None:
        self.record = record
        self.dispatch_time = float("nan")
        self.pending = num_shards
        self.done = False
        self.shards = [_ShardState() for _ in range(num_shards)]
        self.demands: List[float] = [0.0] * num_shards


def _replica_stalls(
    config: FanoutConfig,
    streams: RandomStreams,
    shard: int,
    replica: int,
):
    """The stall source for one replica.

    Scripted outage windows and fault-plan crash windows combine (a
    crashed replica freezes its in-flight work until the restart, on
    top of rejecting new requests); when neither names the replica,
    the stochastic hiccup process (if any) applies.
    """
    windows = [
        (outage.start, outage.duration)
        for outage in config.outages
        if outage.shard == shard and outage.replica == replica
    ]
    if config.faults is not None:
        windows += [
            (start, end - start)
            for start, end in config.faults.crash_windows(shard, replica)
        ]
    if windows:
        return FixedOutages(sorted(windows))
    if config.hiccups is not None:
        return HiccupSchedule(
            config.hiccups, streams.stream(f"hiccups-{shard}-{replica}")
        )
    return None


def _run_fanout_tail_tolerant(
    config: FanoutConfig,
    scenario: WorkloadScenario,
    seed: int,
    metrics: Optional[MetricsRegistry] = None,
) -> FanoutResult:
    """Event-driven fan-out with deadlines, hedging, and replicas.

    The broker dispatches each shard request to the least-loaded
    replica, schedules cancellable hedge/deadline events against the
    simulator clock, re-issues stragglers to a *different* replica, and
    finishes a query when every shard is decided — answered,
    deadline-missed, failed beyond the retry budget, or fenced off by
    an open circuit breaker.  Late and loser answers are ignored (the
    DES cannot retract work already committed to a replica's cores,
    which mirrors a backend without mid-request cancellation).

    With an overload policy, arrivals pass the broker's admission
    controller first: beyond the concurrency limit they wait in a
    bounded queue (CoDel-dropped if the wait stands above target) or
    are refused outright with a shed record.  A fault plan injects
    crash rejections, error responses, and demand slowdowns; a breaker
    config fences off replicas that keep failing.
    """
    policy = (
        config.hedging
        if config.hedging is not None and config.hedging.enabled
        else DISABLED_POLICY
    )
    streams = RandomStreams(seed)
    arrival_times, demands = scenario.realize(
        streams.stream("arrivals"), streams.stream("demands")
    )
    network_rng = streams.stream("network")
    sim = Simulator()
    tracker = ShardLatencyTracker()
    records: List[FanoutQueryRecord] = []
    completion_handlers: Dict[int, Callable[[QueryRecord], None]] = {}

    faults = (
        config.faults
        if config.faults is not None and config.faults.enabled
        else None
    )
    faults_rng = streams.stream("faults") if faults is not None else None
    breakers = (
        BreakerBoard(config.breakers) if config.breakers is not None else None
    )
    controller = (
        AdmissionController(config.overload)
        if config.overload is not None and config.overload.enabled
        else None
    )
    admission_queue: Deque[Tuple[_QueryState, float]] = deque()
    shard_failures = [0] * config.num_servers
    probes = [0]  # half-open probe requests (mutable for closures)

    servers: List[List[SimulatedServer]] = []
    for shard in range(config.num_servers):
        group = []
        for replica in range(config.replicas_per_shard):
            stream_name = (
                f"imbalance-{shard}"
                if replica == 0
                else f"imbalance-{shard}r{replica}"
            )
            group.append(
                SimulatedServer(
                    sim,
                    config.spec,
                    config.partitioning,
                    imbalance_rng=streams.stream(stream_name),
                    on_complete=lambda rec: completion_handlers.pop(id(rec))(
                        rec
                    ),
                    hiccups=_replica_stalls(config, streams, shard, replica),
                    metrics=metrics,
                )
            )
        servers.append(group)

    shard_rng = streams.stream("server-imbalance")

    def breaker_allow(shard: int, replica: int) -> bool:
        """Consult the replica's breaker (counting half-open probes)."""
        if breakers is None:
            return True
        breaker = breakers.breaker((shard, replica))
        half_open = breaker.state(sim.now) is BreakerState.HALF_OPEN
        if not breaker.allow(sim.now):
            return False
        if half_open:
            probes[0] += 1
        return True

    def breaker_failure(shard: int, replica: int) -> None:
        if breakers is not None:
            breakers.breaker((shard, replica)).record_failure(sim.now)

    def breaker_success(shard: int, replica: int) -> None:
        if breakers is not None:
            breakers.breaker((shard, replica)).record_success(sim.now)

    def dispatch_attempt(
        state: _QueryState, shard: int, demand: float, kind: str
    ) -> str:
        """Send one attempt to an untried, breaker-approved replica.

        Returns ``"sent"`` when an attempt went out (possibly destined
        to fail by injection), ``"exhausted"`` when every replica has
        been tried, ``"blocked"`` when breakers fence off all the rest.
        """
        shard_state = state.shards[shard]
        candidates = [
            replica
            for replica in range(config.replicas_per_shard)
            if replica not in shard_state.tried
        ]
        if not candidates:
            if kind != "retry":
                return "exhausted"
            # A retry may re-ask a previously tried replica (the native
            # path re-asks the same shard); hedges never do — a backup
            # against the same straggler cannot win.
            candidates = list(range(config.replicas_per_shard))
        candidates.sort(
            key=lambda r: (servers[shard][r].outstanding, r)
        )
        replica = None
        for candidate in candidates:
            if breaker_allow(shard, candidate):
                replica = candidate
                break
        if replica is None:
            return "blocked"
        shard_state.tried.add(replica)

        if faults is not None:
            if faults.crashed(shard, replica, sim.now):
                # Fail fast: the connection is refused after a round
                # trip; no work reaches the replica's cores.
                reject_at = (
                    sim.now
                    + config.network.delay(network_rng)
                    + config.network.delay(network_rng)
                )
                sim.schedule(
                    reject_at, on_attempt_error, state, shard, replica
                )
                return "sent"
            error_rate = faults.error_rate(shard, replica, sim.now)
            if error_rate > 0.0 and faults_rng.random() < error_rate:
                error_at = (
                    sim.now
                    + config.network.delay(network_rng)
                    + config.network.delay(network_rng)
                )
                sim.schedule(
                    error_at, on_attempt_error, state, shard, replica
                )
                return "sent"
            demand *= faults.slowdown_factor(shard, replica, sim.now)

        server_record = QueryRecord(
            query_id=state.record.query_id,
            client_send=state.record.client_send,
            demand=demand,
        )

        def on_server_done(
            rec: QueryRecord,
            state=state,
            shard=shard,
            replica=replica,
            kind=kind,
        ) -> None:
            arrival = rec.merge_end + config.network.delay(network_rng)
            sim.schedule(arrival, on_answer, state, shard, replica, kind)

        completion_handlers[id(server_record)] = on_server_done
        arrival = sim.now + config.network.delay(network_rng)
        sim.schedule(
            arrival, servers[shard][replica].handle_arrival, server_record
        )
        return "sent"

    def on_answer(
        state: _QueryState, shard: int, replica: int, kind: str
    ) -> None:
        shard_state = state.shards[shard]
        # Health feedback counts even for losers and late answers —
        # the replica demonstrably served the request.
        shard_state.answered_replicas.add(replica)
        breaker_success(shard, replica)
        if state.done or shard_state.decided:
            return  # a loser, or an answer past its deadline
        shard_state.answered = True
        if kind == "hedge":
            state.record.hedges_won += 1
        tracker.observe(sim.now - state.dispatch_time)
        if shard_state.hedge_handle is not None:
            shard_state.hedge_handle.cancel()
        if shard_state.deadline_handle is not None:
            shard_state.deadline_handle.cancel()
        state.record.isn_completions.append(sim.now)
        state.pending -= 1
        maybe_finish(state)

    def on_attempt_error(
        state: _QueryState, shard: int, replica: int
    ) -> None:
        """An attempt came back as a failure (injected error/crash)."""
        shard_state = state.shards[shard]
        shard_state.failed_replicas.add(replica)
        breaker_failure(shard, replica)
        shard_failures[shard] += 1
        state.record.failures += 1
        if state.done or shard_state.decided:
            return
        if shard_state.retries < policy.max_retries:
            backoff = policy.retry_delay(shard_state.retries)
            shard_state.retries += 1
            sim.schedule_after(backoff, on_retry, state, shard)
        else:
            fail_shard(state, shard, breaker_skip=False)

    def on_retry(state: _QueryState, shard: int) -> None:
        shard_state = state.shards[shard]
        if state.done or shard_state.decided:
            return
        status = dispatch_attempt(
            state, shard, state.demands[shard], "retry"
        )
        if status != "sent":
            fail_shard(state, shard, breaker_skip=status == "blocked")

    def fail_shard(
        state: _QueryState, shard: int, breaker_skip: bool
    ) -> None:
        """Give up on one shard: degrade coverage like a deadline miss."""
        shard_state = state.shards[shard]
        shard_state.missed = True
        if breaker_skip:
            state.record.breaker_skips += 1
        if shard_state.hedge_handle is not None:
            shard_state.hedge_handle.cancel()
            shard_state.hedge_handle = None
        if shard_state.deadline_handle is not None:
            shard_state.deadline_handle.cancel()
            shard_state.deadline_handle = None
        state.pending -= 1
        maybe_finish(state)

    def on_hedge_timer(
        state: _QueryState, shard: int, demand: float, delay: float
    ) -> None:
        shard_state = state.shards[shard]
        shard_state.hedge_handle = None
        if state.done or shard_state.decided:
            return
        if shard_state.hedges_issued >= policy.max_hedges:
            return
        if dispatch_attempt(state, shard, demand, "hedge") != "sent":
            return  # every replica already tried or fenced off
        shard_state.hedges_issued += 1
        state.record.hedges_issued += 1
        if shard_state.hedges_issued < policy.max_hedges:
            shard_state.hedge_handle = sim.schedule_after(
                delay, on_hedge_timer, state, shard, demand, delay
            )

    def on_deadline(state: _QueryState, shard: int) -> None:
        shard_state = state.shards[shard]
        if state.done or shard_state.decided:
            return
        shard_state.missed = True
        state.record.deadline_misses += 1
        shard_failures[shard] += 1
        # The replicas that were asked and neither answered nor already
        # failed are the ones that let the deadline lapse.
        for replica in (
            shard_state.tried
            - shard_state.answered_replicas
            - shard_state.failed_replicas
        ):
            breaker_failure(shard, replica)
        if shard_state.hedge_handle is not None:
            shard_state.hedge_handle.cancel()
        state.pending -= 1
        maybe_finish(state)

    def maybe_finish(state: _QueryState) -> None:
        if state.pending > 0:
            return
        state.done = True
        answered = sum(1 for s in state.shards if s.answered)
        state.record.coverage = (
            answered / config.num_servers if config.num_servers else 1.0
        )
        merge_done = sim.now + config.broker_merge_per_server * answered
        state.record.client_receive = merge_done + config.network.delay(
            network_rng
        )
        records.append(state.record)
        if controller is not None:
            controller.complete(sim.now, sim.now - state.dispatch_time)
            drain_queue()

    def shed_query(state: _QueryState, reason: str) -> None:
        """Refuse a query: typed shed record, no shard work at all."""
        state.done = True
        record = state.record
        record.shed = True
        record.shed_reason = reason
        record.coverage = 0.0
        record.client_receive = sim.now + config.network.delay(network_rng)
        records.append(record)

    def drain_queue() -> None:
        while admission_queue and controller.can_admit():
            state, enqueued_at = admission_queue.popleft()
            if controller.dequeue(sim.now, enqueued_at):
                begin_service(state)
            else:
                shed_query(state, SHED_CODEL)

    def on_query_arrival(state: _QueryState) -> None:
        if controller is None:
            begin_service(state)
            return
        if metrics is not None:
            metrics.histogram(
                "fanout.admission_queue_depth",
                bin_edges=QUEUE_DEPTH_BUCKETS,
            ).observe(float(controller.queue_depth))
        decision = controller.decide(sim.now)
        if decision == "admit":
            controller.admit(sim.now)
            begin_service(state)
        elif decision == "queue":
            controller.enqueue(sim.now)
            admission_queue.append((state, sim.now))
        else:
            controller.shed(sim.now)
            shed_query(state, decision)

    def begin_service(state: _QueryState) -> None:
        state.dispatch_time = sim.now
        if config.num_servers == 1:
            shares = np.ones(1)
        else:
            shares = shard_rng.dirichlet(
                np.full(
                    config.num_servers, config.server_imbalance_concentration
                )
            )
        hedge_delay = policy.resolve_hedge_delay(tracker)
        for shard, share in enumerate(shares):
            demand = state.record.total_demand * float(share)
            state.demands[shard] = demand
            status = dispatch_attempt(state, shard, demand, "primary")
            if status != "sent":
                # Every replica fenced off: the shard degrades coverage
                # exactly like a deadline miss, without waiting for one.
                fail_shard(state, shard, breaker_skip=status == "blocked")
                continue
            shard_state = state.shards[shard]
            if (
                hedge_delay is not None
                and config.replicas_per_shard > 1
                and policy.max_hedges > 0
            ):
                shard_state.hedge_handle = sim.schedule_after(
                    hedge_delay, on_hedge_timer, state, shard, demand,
                    hedge_delay,
                )
            if policy.deadline_s is not None:
                shard_state.deadline_handle = sim.schedule_after(
                    policy.deadline_s, on_deadline, state, shard
                )

    states: List[_QueryState] = []
    for query_id, (send_time, demand) in enumerate(
        zip(arrival_times, demands)
    ):
        record = FanoutQueryRecord(
            query_id=query_id,
            client_send=float(send_time),
            total_demand=float(demand),
        )
        state = _QueryState(record, config.num_servers)
        states.append(state)
        sim.schedule(float(send_time), on_query_arrival, state)

    sim.run()
    unfinished = [state for state in states if not state.done]
    if unfinished:
        raise RuntimeError(f"{len(unfinished)} queries never completed")
    if metrics is not None:
        served = [r for r in records if not r.shed]
        metrics.counter("fanout.queries").add(len(records))
        metrics.counter("fanout.served").add(len(served))
        metrics.counter("fanout.shed").add(len(records) - len(served))
        metrics.counter("fanout.hedges_issued").add(
            sum(r.hedges_issued for r in records)
        )
        metrics.counter("fanout.hedges_won").add(
            sum(r.hedges_won for r in records)
        )
        metrics.counter("fanout.deadline_misses").add(
            sum(r.deadline_misses for r in records)
        )
        if breakers is not None:
            metrics.counter("fanout.breaker_skips").add(
                sum(r.breaker_skips for r in records)
            )
            metrics.counter("fanout.breaker_probes").add(probes[0])
            breakers.export_gauges(metrics, "fanout.breaker", sim.now)
        if faults is not None:
            metrics.counter("fanout.failures").add(
                sum(r.failures for r in records)
            )
    records.sort(key=lambda record: record.client_send)
    return FanoutResult(
        records=records,
        horizon=sim.now,
        num_servers=config.num_servers,
        shard_failures=tuple(shard_failures),
    )
