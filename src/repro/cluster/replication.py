"""Replicated shards, replica selection, and hedged requests.

Production search replicates every index shard and lets the broker
choose a replica per request; when tails matter, it also *hedges* —
re-issues a slow request to a second replica and takes the first
answer.  This module models that tier on top of the fork-join ISN:

- ``ReplicaSelection`` — RANDOM, ROUND_ROBIN, or LEAST_OUTSTANDING
  (join-the-shortest-queue by in-flight requests);
- ``HedgeConfig`` — duplicate a shard request that has not answered
  within a deadline (no cancellation: the loser finishes and wastes
  its work, as in systems without request cancellation support).

The studies built on this reproduce the classic "tail at scale"
remedies: better selection trims the tail cheaply; hedging buys large
tail cuts for a small duplicate-work budget.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.results import QueryRecord
from repro.cluster.server import PartitionModelConfig, SimulatedServer
from repro.metrics.summary import LatencySummary, summarize
from repro.servers.spec import ServerSpec
from repro.sim.engine import Simulator
from repro.sim.hiccups import HiccupConfig, HiccupSchedule
from repro.sim.network import NetworkModel, NoDelay
from repro.sim.outages import FixedOutages, OutageSpec
from repro.sim.random import RandomStreams
from repro.workload.scenario import WorkloadScenario


class ReplicaSelection(Enum):
    """Broker policy for picking a replica per shard request."""

    RANDOM = "random"
    ROUND_ROBIN = "round_robin"
    LEAST_OUTSTANDING = "least_outstanding"


@dataclass(frozen=True, init=False)
class HedgeConfig:
    """Hedged-request policy.

    Attributes
    ----------
    delay_s:
        Seconds after dispatch before the duplicate is sent.  Production
        systems set this near the per-shard p95 so only ~5% of requests
        hedge.

    The field was renamed from ``delay`` to ``delay_s`` when the
    :mod:`repro.api` surface standardized on unit-suffixed durations;
    the old keyword and attribute still work but raise a
    ``DeprecationWarning``.
    """

    delay_s: float

    def __init__(
        self,
        delay_s: Optional[float] = None,
        *,
        delay: Optional[float] = None,
    ) -> None:
        if delay is not None:
            warnings.warn(
                "HedgeConfig(delay=...) is deprecated; use delay_s=...",
                DeprecationWarning,
                stacklevel=2,
            )
            if delay_s is not None:
                raise TypeError("pass either delay_s or delay, not both")
            delay_s = delay
        if delay_s is None:
            raise TypeError("HedgeConfig requires delay_s")
        if delay_s <= 0:
            raise ValueError("hedge delay must be positive")
        object.__setattr__(self, "delay_s", float(delay_s))

    @property
    def delay(self) -> float:
        """Deprecated alias of :attr:`delay_s`."""
        warnings.warn(
            "HedgeConfig.delay is deprecated; read delay_s instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.delay_s


@dataclass(frozen=True)
class ReplicatedClusterConfig:
    """A cluster of ``num_shards`` shard groups × ``replicas`` servers."""

    num_shards: int
    replicas: int
    spec: ServerSpec
    partitioning: PartitionModelConfig = field(
        default_factory=PartitionModelConfig
    )
    selection: ReplicaSelection = ReplicaSelection.RANDOM
    hedge: Optional[HedgeConfig] = None
    network: NetworkModel = field(default_factory=NoDelay)
    hiccups: Optional[HiccupConfig] = None
    server_imbalance_concentration: float = 60.0
    #: Scripted brownouts.  A replica with outages gets exactly those
    #: stall windows (the stochastic ``hiccups`` process, if any, is
    #: not additionally applied to it).
    outages: tuple = ()

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if self.replicas <= 0:
            raise ValueError("replicas must be positive")
        if self.hedge is not None and self.replicas < 2:
            raise ValueError("hedging requires at least two replicas")
        for outage in self.outages:
            if not isinstance(outage, OutageSpec):
                raise TypeError("outages must be OutageSpec instances")
            if outage.shard >= self.num_shards:
                raise ValueError(f"outage shard {outage.shard} out of range")
            if outage.replica >= self.replicas:
                raise ValueError(
                    f"outage replica {outage.replica} out of range"
                )

    def stalls_for(self, shard: int, replica: int):
        """Scripted outage schedule for one server (None if none)."""
        windows = [
            (outage.start, outage.duration)
            for outage in self.outages
            if outage.shard == shard and outage.replica == replica
        ]
        if not windows:
            return None
        return FixedOutages(windows)

    @property
    def num_servers(self) -> int:
        """Total servers in the cluster."""
        return self.num_shards * self.replicas


@dataclass
class ReplicatedQueryRecord:
    """Timeline of one query through the replicated cluster."""

    query_id: int
    client_send: float
    total_demand: float
    shard_first_response: Dict[int, float] = field(default_factory=dict)
    hedges_sent: int = 0
    client_receive: float = float("nan")

    @property
    def latency(self) -> float:
        """End-to-end response time."""
        return self.client_receive - self.client_send


@dataclass
class ReplicatedResult:
    """Outcome of one replicated-cluster simulation."""

    records: List[ReplicatedQueryRecord]
    horizon: float
    total_hedges: int
    total_shard_requests: int

    def __len__(self) -> int:
        return len(self.records)

    def latencies(self, warmup_fraction: float = 0.0) -> np.ndarray:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        skip = int(len(self.records) * warmup_fraction)
        return np.array([r.latency for r in self.records[skip:]])

    def summary(self, warmup_fraction: float = 0.0) -> LatencySummary:
        return summarize(self.latencies(warmup_fraction))

    @property
    def hedge_fraction(self) -> float:
        """Duplicated shard requests as a fraction of the baseline."""
        base = self.total_shard_requests - self.total_hedges
        if base <= 0:
            return 0.0
        return self.total_hedges / base


class _Broker:
    """Replica selection + hedging logic (one instance per simulation)."""

    def __init__(
        self,
        config: ReplicatedClusterConfig,
        servers: List[List[SimulatedServer]],
        sim: Simulator,
        selection_rng: np.random.Generator,
        network_rng: np.random.Generator,
    ):
        self.config = config
        self.servers = servers
        self.sim = sim
        self._selection_rng = selection_rng
        self._network_rng = network_rng
        self.outstanding = [
            [0] * config.replicas for _ in range(config.num_shards)
        ]
        self._round_robin_next = [0] * config.num_shards
        self.total_hedges = 0
        self.total_shard_requests = 0
        #: server-record id -> (query record, shard, replica), consumed
        #: by the completion handler.
        self.callbacks: Dict[int, tuple] = {}

    def pick_replica(self, shard: int, exclude: Optional[int] = None) -> int:
        """Choose a replica index for ``shard`` under the policy."""
        candidates = [
            replica
            for replica in range(self.config.replicas)
            if replica != exclude
        ]
        policy = self.config.selection
        if policy is ReplicaSelection.RANDOM:
            return int(
                candidates[self._selection_rng.integers(len(candidates))]
            )
        if policy is ReplicaSelection.ROUND_ROBIN:
            while True:
                choice = self._round_robin_next[shard]
                self._round_robin_next[shard] = (
                    choice + 1
                ) % self.config.replicas
                if choice in candidates:
                    return choice
        # LEAST_OUTSTANDING: fewest in-flight requests; ties at random.
        loads = [self.outstanding[shard][replica] for replica in candidates]
        best = min(loads)
        tied = [
            replica
            for replica, load in zip(candidates, loads)
            if load == best
        ]
        return int(tied[self._selection_rng.integers(len(tied))])

    def dispatch(
        self,
        record: ReplicatedQueryRecord,
        shard: int,
        demand: float,
        replica: int,
        is_hedge: bool,
    ) -> None:
        """Send one shard request to a replica (now)."""
        self.total_shard_requests += 1
        if is_hedge:
            self.total_hedges += 1
            record.hedges_sent += 1
        self.outstanding[shard][replica] += 1
        server_record = QueryRecord(
            query_id=record.query_id,
            client_send=self.sim.now,
            demand=demand,
        )
        self.callbacks[id(server_record)] = (record, shard, replica)
        arrival = self.sim.now + self.config.network.delay(self._network_rng)
        self.sim.schedule(
            arrival, self.servers[shard][replica].handle_arrival, server_record
        )


def run_replicated_open_loop(
    config: ReplicatedClusterConfig,
    scenario: WorkloadScenario,
    seed: int = 0,
) -> ReplicatedResult:
    """Simulate the replicated cluster under open-loop arrivals."""
    streams = RandomStreams(seed)
    arrival_times, demands = scenario.realize(
        streams.stream("arrivals"), streams.stream("demands")
    )
    network_rng = streams.stream("network")
    shard_rng = streams.stream("server-imbalance")

    sim = Simulator()
    records: List[ReplicatedQueryRecord] = []

    servers: List[List[SimulatedServer]] = []
    for shard in range(config.num_shards):
        replicas: List[SimulatedServer] = []
        for replica in range(config.replicas):
            hiccups = config.stalls_for(shard, replica)
            if hiccups is None and config.hiccups is not None:
                hiccups = HiccupSchedule(
                    config.hiccups,
                    streams.stream(f"hiccups-{shard}-{replica}"),
                )
            replicas.append(
                SimulatedServer(
                    sim,
                    config.spec,
                    config.partitioning,
                    imbalance_rng=streams.stream(
                        f"imbalance-{shard}-{replica}"
                    ),
                    on_complete=lambda rec: _on_server_complete(rec),
                    hiccups=hiccups,
                )
            )
        servers.append(replicas)

    broker = _Broker(
        config, servers, sim, streams.stream("selection"), network_rng
    )
    pending_demands: Dict[int, Dict[int, float]] = {}

    def _on_server_complete(server_record: QueryRecord) -> None:
        record, shard, replica = broker.callbacks.pop(id(server_record))
        broker.outstanding[shard][replica] -= 1
        response_at = server_record.merge_end + config.network.delay(
            network_rng
        )
        if shard in record.shard_first_response:
            return  # a hedge/original already answered this shard
        record.shard_first_response[shard] = response_at
        if len(record.shard_first_response) == config.num_shards:
            done = max(record.shard_first_response.values())
            record.client_receive = done + config.network.delay(network_rng)
            records.append(record)

    def _maybe_hedge(
        record: ReplicatedQueryRecord, shard: int, replica: int
    ) -> None:
        if shard in record.shard_first_response:
            return
        hedge_replica = broker.pick_replica(shard, exclude=replica)
        broker.dispatch(
            record,
            shard,
            pending_demands[record.query_id][shard],
            hedge_replica,
            is_hedge=True,
        )

    for query_id, (send_time, demand) in enumerate(zip(arrival_times, demands)):
        record = ReplicatedQueryRecord(
            query_id=query_id,
            client_send=float(send_time),
            total_demand=float(demand),
        )
        if config.num_shards == 1:
            shares = np.ones(1)
        else:
            shares = shard_rng.dirichlet(
                np.full(
                    config.num_shards,
                    config.server_imbalance_concentration,
                )
            )
        shard_demands = {
            shard: float(demand) * float(share)
            for shard, share in enumerate(shares)
        }
        pending_demands[query_id] = shard_demands

        def send(record=record, shard_demands=shard_demands) -> None:
            for shard, shard_demand in shard_demands.items():
                replica = broker.pick_replica(shard)
                broker.dispatch(
                    record, shard, shard_demand, replica, is_hedge=False
                )
                if config.hedge is not None:
                    sim.schedule(
                        sim.now + config.hedge.delay_s,
                        _maybe_hedge,
                        record,
                        shard,
                        replica,
                    )

        sim.schedule(float(send_time), send)

    sim.run()
    if len(records) != len(arrival_times):
        raise RuntimeError(
            f"{len(arrival_times) - len(records)} queries never completed"
        )
    records.sort(key=lambda record: record.client_send)
    return ReplicatedResult(
        records=records,
        horizon=sim.now,
        total_hedges=broker.total_hedges,
        total_shard_requests=broker.total_shard_requests,
    )
