"""Simulation runners: open-loop and closed-loop load generation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.cluster.results import QueryRecord, SimulationResult
from repro.cluster.server import PartitionModelConfig, SimulatedServer
from repro.obs.tracing import Tracer
from repro.servers.spec import ServerSpec
from repro.sim.engine import Simulator
from repro.sim.hiccups import HiccupConfig, HiccupSchedule
from repro.sim.network import NetworkModel, NoDelay
from repro.sim.random import RandomStreams
from repro.workload.arrivals import ClosedLoopSpec
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import ServiceDemandModel


@dataclass(frozen=True)
class ClusterConfig:
    """Everything fixed about the simulated system (not the workload)."""

    spec: ServerSpec
    partitioning: PartitionModelConfig = field(
        default_factory=PartitionModelConfig
    )
    network: NetworkModel = field(default_factory=NoDelay)
    hiccups: Optional[HiccupConfig] = None

    def label(self) -> str:
        """Short description used in result labels."""
        return f"{self.spec.name}/P={self.partitioning.num_partitions}"

    def make_hiccup_schedule(
        self, streams: RandomStreams
    ) -> Optional[HiccupSchedule]:
        """Instantiate the pause schedule (None when hiccups disabled)."""
        if self.hiccups is None:
            return None
        return HiccupSchedule(self.hiccups, streams.stream("hiccups"))


def emit_query_trace(tracer: Tracer, record: QueryRecord) -> None:
    """Emit one completed record's timeline as a simulated-clock trace.

    The span tree uses the same export schema as native-engine traces
    (see :mod:`repro.obs.export`); timestamps are simulation seconds.
    Child spans carry the names of
    :data:`repro.cluster.results.BREAKDOWN_COMPONENTS` so a trace file
    re-derives the paper's component breakdown directly.
    """
    root = tracer.record_span(
        "sim.query",
        start=record.client_send,
        end=record.client_receive,
        parent=None,
        query_id=record.query_id,
        demand=record.demand,
        network_time=record.network_time,
    )
    if root is None:  # tracing disabled
        return
    stages = (
        ("queue_wait", record.server_arrival, record.first_task_start),
        ("parallel_service", record.first_task_start, record.earliest_task_end),
        ("straggler_skew", record.earliest_task_end, record.last_task_end),
        ("merge_wait", record.last_task_end, record.merge_start),
        ("merge_service", record.merge_start, record.merge_end),
    )
    for name, start, end in stages:
        tracer.record_span(name, start=start, end=end, parent=root)


def _emit_traces(tracer: Optional[Tracer], records: List[QueryRecord]) -> None:
    if tracer is None or not tracer.enabled:
        return
    for record in records:
        emit_query_trace(tracer, record)


def run_open_loop(
    config: ClusterConfig,
    scenario: WorkloadScenario,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
) -> SimulationResult:
    """Drive the server with a pre-generated open-loop arrival sequence.

    Arrivals, demands, network delays, and shard imbalance each draw
    from an independent RNG stream of ``seed``, so sweeping a system
    parameter replays the identical workload (common random numbers).
    With an enabled ``tracer``, every completed query also emits a
    simulated-clock span tree (:func:`emit_query_trace`).
    """
    streams = RandomStreams(seed)
    arrival_times, demands = scenario.realize(
        streams.stream("arrivals"), streams.stream("demands")
    )
    network_rng = streams.stream("network")

    sim = Simulator()
    records: List[QueryRecord] = []

    def complete(record: QueryRecord) -> None:
        record.client_receive = record.merge_end + config.network.delay(
            network_rng
        )
        records.append(record)

    server = SimulatedServer(
        sim,
        config.spec,
        config.partitioning,
        imbalance_rng=streams.stream("imbalance"),
        on_complete=complete,
        hiccups=config.make_hiccup_schedule(streams),
    )

    for query_id, (send_time, demand) in enumerate(zip(arrival_times, demands)):
        record = QueryRecord(
            query_id=query_id, client_send=float(send_time), demand=float(demand)
        )
        arrival = float(send_time) + config.network.delay(network_rng)
        sim.schedule(arrival, server.handle_arrival, record)

    sim.run()
    records.sort(key=lambda record: record.client_send)
    _emit_traces(tracer, records)
    return SimulationResult(
        records=records,
        horizon=sim.now,
        core_busy_time=server.cores.busy_time,
        num_cores=config.spec.num_cores,
        label=config.label(),
    )


def run_closed_loop(
    config: ClusterConfig,
    closed_loop: ClosedLoopSpec,
    demands: ServiceDemandModel,
    num_queries: int,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
) -> SimulationResult:
    """Drive the server with a Faban-style closed-loop client population.

    Each of ``closed_loop.num_clients`` emulated users thinks for an
    exponential time, issues a query, and blocks for the response.  The
    run ends after ``num_queries`` total completions.
    """
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    streams = RandomStreams(seed)
    think_rng = streams.stream("think")
    demand_rng = streams.stream("demands")
    network_rng = streams.stream("network")
    demand_series = demands.demands(num_queries, demand_rng)

    sim = Simulator()
    records: List[QueryRecord] = []
    issued = 0

    def think_time() -> float:
        if closed_loop.mean_think_time == 0:
            return 0.0
        return float(think_rng.exponential(closed_loop.mean_think_time))

    def issue_query() -> None:
        nonlocal issued
        if issued >= num_queries:
            return
        record = QueryRecord(
            query_id=issued,
            client_send=sim.now,
            demand=float(demand_series[issued]),
        )
        issued += 1
        arrival = sim.now + config.network.delay(network_rng)
        sim.schedule(arrival, server.handle_arrival, record)

    def complete(record: QueryRecord) -> None:
        record.client_receive = record.merge_end + config.network.delay(
            network_rng
        )
        records.append(record)
        # The client that owned this query re-enters its think phase.
        sim.schedule(record.client_receive + think_time(), issue_query)

    server = SimulatedServer(
        sim,
        config.spec,
        config.partitioning,
        imbalance_rng=streams.stream("imbalance"),
        on_complete=complete,
        hiccups=config.make_hiccup_schedule(streams),
    )

    # Stagger the client population's first think phases.
    for _ in range(closed_loop.num_clients):
        sim.schedule(think_time(), issue_query)

    sim.run()
    records.sort(key=lambda record: record.client_send)
    _emit_traces(tracer, records)
    return SimulationResult(
        records=records,
        horizon=sim.now,
        core_busy_time=server.cores.busy_time,
        num_cores=config.spec.num_cores,
        label=f"{config.label()}/clients={closed_loop.num_clients}",
    )
