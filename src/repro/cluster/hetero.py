"""Heterogeneous fleet: big and little servers behind one router.

The paper asks whether low-power servers can serve web search; the
natural follow-on is whether a *mixed* fleet can — little servers
soaking up the cheap queries (most of them, under Zipf) while a few
big servers absorb the expensive tail.  This module simulates one
shard served by ``num_big`` big and ``num_little`` little replicas,
with a router that either ignores query cost (random spray), routes
by a demand threshold (cheap → little, expensive → big; the "oracle"
router, since real engines estimate cost well from term statistics),
or — with a :class:`~repro.predict.scheduler.DeadlineScheduler` —
routes on *predicted* cost perturbed by the predictor's measured error
model, the realistic middle ground between spray and oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.cluster.results import QueryRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.predict.scheduler import DeadlineScheduler
from repro.cluster.server import PartitionModelConfig, SimulatedServer
from repro.metrics.summary import LatencySummary, summarize
from repro.servers.power import PowerModel
from repro.servers.spec import ServerSpec
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.workload.scenario import WorkloadScenario


@dataclass(frozen=True)
class HeterogeneousConfig:
    """A mixed single-shard fleet and its routing policy.

    Attributes
    ----------
    big_spec / num_big:
        The big-server replica group.
    little_spec / num_little:
        The little-server replica group.
    partitioning:
        Intra-server partitioning cost model (applies to every server).
    demand_threshold:
        Queries with demand above this route to the big group, the rest
        to the little group.  ``None`` sprays uniformly over all
        servers (cost-oblivious baseline).  Groups of size zero receive
        the other group's traffic.  The threshold router reads the
        query's *true* demand — an oracle upper bound on what any
        predictor can do.
    scheduler:
        Optional :class:`~repro.predict.scheduler.DeadlineScheduler` —
        the *predicted*-demand router.  Each query's prediction is its
        true demand times a draw from the predictor's log-normal
        residual error model (a dedicated ``"prediction"`` RNG
        stream), so routing quality degrades exactly with measured
        predictor accuracy.  With a ``deadline_s``, the router picks
        the most energy-efficient server whose ``core_speed``-scaled
        completion estimate (queue backlog + predicted service) meets
        the deadline, falling back to the fastest estimate when none
        does; with only a ``long_query_threshold_s``, predicted-long
        queries go to the big group.  Mutually exclusive with
        ``demand_threshold``; ``None`` keeps the seed's routers bit
        for bit (the prediction stream is never drawn).
    """

    big_spec: ServerSpec
    num_big: int
    little_spec: ServerSpec
    num_little: int
    partitioning: PartitionModelConfig = field(
        default_factory=PartitionModelConfig
    )
    demand_threshold: Optional[float] = None
    scheduler: Optional["DeadlineScheduler"] = None

    def __post_init__(self) -> None:
        if self.num_big < 0 or self.num_little < 0:
            raise ValueError("server counts must be non-negative")
        if self.num_big + self.num_little == 0:
            raise ValueError("fleet needs at least one server")
        if self.demand_threshold is not None and self.demand_threshold < 0:
            raise ValueError("demand_threshold must be non-negative")
        if self.scheduler is not None:
            if self.demand_threshold is not None:
                raise ValueError(
                    "demand_threshold (oracle router) and scheduler "
                    "(predicted router) are mutually exclusive"
                )
            if not self.scheduler.routes:
                raise ValueError(
                    "scheduler needs a deadline_s or long_query_threshold_s "
                    "to make routing decisions"
                )


@dataclass
class HeterogeneousResult:
    """Latency and power outcome of one mixed-fleet run."""

    records: List[QueryRecord]
    horizon: float
    per_server_utilization: List[float]
    per_server_power_watts: List[float]
    routed_to_big: int
    routed_to_little: int

    def __len__(self) -> int:
        return len(self.records)

    def latencies(self, warmup_fraction: float = 0.0) -> np.ndarray:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        skip = int(len(self.records) * warmup_fraction)
        return np.array([r.latency for r in self.records[skip:]])

    def summary(self, warmup_fraction: float = 0.0) -> LatencySummary:
        return summarize(self.latencies(warmup_fraction))

    @property
    def total_power_watts(self) -> float:
        """Fleet wall power at the observed utilizations."""
        return float(sum(self.per_server_power_watts))

    def energy_per_query_joules(self) -> float:
        """Average fleet joules per completed query."""
        if not self.records or self.horizon <= 0:
            raise ValueError("no completed queries")
        qps = len(self.records) / self.horizon
        return self.total_power_watts / qps


def run_heterogeneous_open_loop(
    config: HeterogeneousConfig,
    scenario: WorkloadScenario,
    seed: int = 0,
) -> HeterogeneousResult:
    """Simulate the mixed fleet under open-loop arrivals.

    Within the chosen group the router picks the server whose cores
    free up earliest (an idealized join-the-shortest-queue).  With a
    ``config.scheduler``, routing instead uses *predicted* demands —
    true demand times the predictor's log-normal residual error, drawn
    from a dedicated ``"prediction"`` stream so a scheduler-less run
    consumes exactly the seed's random numbers.
    """
    streams = RandomStreams(seed)
    arrival_times, demands = scenario.realize(
        streams.stream("arrivals"), streams.stream("demands")
    )
    scheduler = config.scheduler
    predicted_demands = demands
    if scheduler is not None:
        sigma = scheduler.predictor.residual_log_sigma
        noise = np.exp(
            sigma * streams.stream("prediction").standard_normal(len(demands))
        )
        predicted_demands = demands * noise

    sim = Simulator()
    records: List[QueryRecord] = []

    def complete(record: QueryRecord) -> None:
        record.client_receive = record.merge_end
        records.append(record)

    def make_group(spec: ServerSpec, count: int, name: str):
        return [
            SimulatedServer(
                sim,
                spec,
                config.partitioning,
                imbalance_rng=streams.stream(f"imbalance-{name}-{i}"),
                on_complete=complete,
            )
            for i in range(count)
        ]

    big_group = make_group(config.big_spec, config.num_big, "big")
    little_group = make_group(config.little_spec, config.num_little, "little")
    all_servers = big_group + little_group
    spray_rng = streams.stream("routing")
    routed = {"big": 0, "little": 0}

    def estimated_finish(server: SimulatedServer, predicted: float) -> float:
        """Seconds until ``server`` would finish the predicted work.

        Queue backlog (time until a core frees up) plus the predicted
        total work spread over the cores a fork-join query can actually
        occupy, scaled by the spec's ``core_speed``.
        """
        parallelism = min(
            server.spec.num_cores, config.partitioning.num_partitions
        )
        backlog = max(server.cores.next_free_time() - sim.now, 0.0)
        service = config.partitioning.total_work(predicted) / (
            server.spec.core_speed * parallelism
        )
        return backlog + service

    def peak_joules_per_work(server: SimulatedServer) -> float:
        """Peak joules per reference-core-second — lower is cheaper."""
        return server.spec.peak_power_watts / server.spec.compute_capacity

    def route_predicted(record: QueryRecord) -> SimulatedServer:
        predicted = float(predicted_demands[record.query_id])
        if scheduler.deadline_s is not None:
            # Deadline mode: cheapest (joules/work) server predicted to
            # make the deadline; when none can, damage control — the
            # fastest predicted finish.  Ties break on the estimate,
            # then on fleet order (big first) for determinism.
            estimates = [
                (estimated_finish(server, predicted), position, server)
                for position, server in enumerate(all_servers)
            ]
            eligible = [
                entry for entry in estimates if entry[0] <= scheduler.deadline_s
            ]
            if eligible:
                _, _, server = min(
                    eligible,
                    key=lambda entry: (
                        peak_joules_per_work(entry[2]),
                        entry[0],
                        entry[1],
                    ),
                )
            else:
                _, _, server = min(estimates)
            return server
        # Threshold-only mode: the noisy mirror of the oracle router —
        # a query whose *predicted* unloaded service time on a little
        # server exceeds the threshold goes to the big group.
        little_spec = (
            config.little_spec if little_group else config.big_spec
        )
        little_parallelism = min(
            little_spec.num_cores, config.partitioning.num_partitions
        )
        predicted_little_s = config.partitioning.total_work(predicted) / (
            little_spec.core_speed * little_parallelism
        )
        use_big = predicted_little_s > scheduler.long_query_threshold_s
        group = big_group if use_big else little_group
        if not group:
            group = little_group if use_big else big_group
        return min(group, key=lambda s: s.cores.next_free_time())

    def route(record: QueryRecord) -> None:
        if scheduler is not None:
            server = route_predicted(record)
            routed["big" if server in big_group else "little"] += 1
        elif config.demand_threshold is None:
            server = all_servers[spray_rng.integers(len(all_servers))]
            routed["big" if server in big_group else "little"] += 1
        else:
            use_big = record.demand > config.demand_threshold
            group = big_group if use_big else little_group
            if not group:
                group = little_group if use_big else big_group
            server = min(group, key=lambda s: s.cores.next_free_time())
            routed["big" if group is big_group else "little"] += 1
        server.handle_arrival(record)

    for query_id, (send_time, demand) in enumerate(zip(arrival_times, demands)):
        record = QueryRecord(
            query_id=query_id,
            client_send=float(send_time),
            demand=float(demand),
        )
        sim.schedule(float(send_time), route, record)

    sim.run()
    records.sort(key=lambda record: record.client_send)

    utilizations = []
    powers = []
    for server in all_servers:
        utilization = min(1.0, server.cores.utilization(max(sim.now, 1e-12)))
        utilizations.append(utilization)
        powers.append(PowerModel(server.spec).power_at(utilization))
    return HeterogeneousResult(
        records=records,
        horizon=sim.now,
        per_server_utilization=utilizations,
        per_server_power_watts=powers,
        routed_to_big=routed["big"],
        routed_to_little=routed["little"],
    )
