"""Heterogeneous fleet: big and little servers behind one router.

The paper asks whether low-power servers can serve web search; the
natural follow-on is whether a *mixed* fleet can — little servers
soaking up the cheap queries (most of them, under Zipf) while a few
big servers absorb the expensive tail.  This module simulates one
shard served by ``num_big`` big and ``num_little`` little replicas,
with a router that either ignores query cost (random spray) or routes
by a demand threshold (cheap → little, expensive → big; the "oracle"
router, since real engines estimate cost well from term statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.results import QueryRecord
from repro.cluster.server import PartitionModelConfig, SimulatedServer
from repro.metrics.summary import LatencySummary, summarize
from repro.servers.power import PowerModel
from repro.servers.spec import ServerSpec
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.workload.scenario import WorkloadScenario


@dataclass(frozen=True)
class HeterogeneousConfig:
    """A mixed single-shard fleet and its routing policy.

    Attributes
    ----------
    big_spec / num_big:
        The big-server replica group.
    little_spec / num_little:
        The little-server replica group.
    partitioning:
        Intra-server partitioning cost model (applies to every server).
    demand_threshold:
        Queries with demand above this route to the big group, the rest
        to the little group.  ``None`` sprays uniformly over all
        servers (cost-oblivious baseline).  Groups of size zero receive
        the other group's traffic.
    """

    big_spec: ServerSpec
    num_big: int
    little_spec: ServerSpec
    num_little: int
    partitioning: PartitionModelConfig = field(
        default_factory=PartitionModelConfig
    )
    demand_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_big < 0 or self.num_little < 0:
            raise ValueError("server counts must be non-negative")
        if self.num_big + self.num_little == 0:
            raise ValueError("fleet needs at least one server")
        if self.demand_threshold is not None and self.demand_threshold < 0:
            raise ValueError("demand_threshold must be non-negative")


@dataclass
class HeterogeneousResult:
    """Latency and power outcome of one mixed-fleet run."""

    records: List[QueryRecord]
    horizon: float
    per_server_utilization: List[float]
    per_server_power_watts: List[float]
    routed_to_big: int
    routed_to_little: int

    def __len__(self) -> int:
        return len(self.records)

    def latencies(self, warmup_fraction: float = 0.0) -> np.ndarray:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        skip = int(len(self.records) * warmup_fraction)
        return np.array([r.latency for r in self.records[skip:]])

    def summary(self, warmup_fraction: float = 0.0) -> LatencySummary:
        return summarize(self.latencies(warmup_fraction))

    @property
    def total_power_watts(self) -> float:
        """Fleet wall power at the observed utilizations."""
        return float(sum(self.per_server_power_watts))

    def energy_per_query_joules(self) -> float:
        """Average fleet joules per completed query."""
        if not self.records or self.horizon <= 0:
            raise ValueError("no completed queries")
        qps = len(self.records) / self.horizon
        return self.total_power_watts / qps


def run_heterogeneous_open_loop(
    config: HeterogeneousConfig,
    scenario: WorkloadScenario,
    seed: int = 0,
) -> HeterogeneousResult:
    """Simulate the mixed fleet under open-loop arrivals.

    Within the chosen group the router picks the server whose cores
    free up earliest (an idealized join-the-shortest-queue).
    """
    streams = RandomStreams(seed)
    arrival_times, demands = scenario.realize(
        streams.stream("arrivals"), streams.stream("demands")
    )

    sim = Simulator()
    records: List[QueryRecord] = []

    def complete(record: QueryRecord) -> None:
        record.client_receive = record.merge_end
        records.append(record)

    def make_group(spec: ServerSpec, count: int, name: str):
        return [
            SimulatedServer(
                sim,
                spec,
                config.partitioning,
                imbalance_rng=streams.stream(f"imbalance-{name}-{i}"),
                on_complete=complete,
            )
            for i in range(count)
        ]

    big_group = make_group(config.big_spec, config.num_big, "big")
    little_group = make_group(config.little_spec, config.num_little, "little")
    all_servers = big_group + little_group
    spray_rng = streams.stream("routing")
    routed = {"big": 0, "little": 0}

    def route(record: QueryRecord) -> None:
        if config.demand_threshold is None:
            server = all_servers[spray_rng.integers(len(all_servers))]
            routed["big" if server in big_group else "little"] += 1
        else:
            use_big = record.demand > config.demand_threshold
            group = big_group if use_big else little_group
            if not group:
                group = little_group if use_big else big_group
            server = min(group, key=lambda s: s.cores.next_free_time())
            routed["big" if group is big_group else "little"] += 1
        server.handle_arrival(record)

    for query_id, (send_time, demand) in enumerate(zip(arrival_times, demands)):
        record = QueryRecord(
            query_id=query_id,
            client_send=float(send_time),
            demand=float(demand),
        )
        sim.schedule(float(send_time), route, record)

    sim.run()
    records.sort(key=lambda record: record.client_send)

    utilizations = []
    powers = []
    for server in all_servers:
        utilization = min(1.0, server.cores.utilization(max(sim.now, 1e-12)))
        utilizations.append(utilization)
        powers.append(PowerModel(server.spec).power_at(utilization))
    return HeterogeneousResult(
        records=records,
        horizon=sim.now,
        per_server_utilization=utilizations,
        per_server_power_watts=powers,
        routed_to_big=routed["big"],
        routed_to_little=routed["little"],
    )
