"""Simulated index-serving cluster.

The load studies (latency vs. load, partition sweeps, low-power server
comparison) run on a discrete-event model of an index serving node:
queries fork into one task per intra-server partition, the tasks queue
FCFS on the server's cores, and the query completes after the slowest
task plus a merge step — the classic fork-join structure of partitioned
search.  The model's service demands are calibrated from the native
Python engine (:mod:`repro.core.calibration`).
"""

from repro.cluster.fanout import (
    FanoutConfig,
    FanoutQueryRecord,
    FanoutResult,
    run_fanout_open_loop,
)
from repro.cluster.hetero import (
    HeterogeneousConfig,
    HeterogeneousResult,
    run_heterogeneous_open_loop,
)
from repro.cluster.replication import (
    HedgeConfig,
    ReplicaSelection,
    ReplicatedClusterConfig,
    ReplicatedResult,
    run_replicated_open_loop,
)
from repro.cluster.results import QueryRecord, SimulationResult
from repro.cluster.server import PartitionModelConfig, SimulatedServer
from repro.cluster.simulation import (
    ClusterConfig,
    run_closed_loop,
    run_open_loop,
)

__all__ = [
    "QueryRecord",
    "SimulationResult",
    "PartitionModelConfig",
    "SimulatedServer",
    "ClusterConfig",
    "run_open_loop",
    "run_closed_loop",
    "FanoutConfig",
    "FanoutQueryRecord",
    "FanoutResult",
    "run_fanout_open_loop",
    "HedgeConfig",
    "ReplicaSelection",
    "ReplicatedClusterConfig",
    "ReplicatedResult",
    "run_replicated_open_loop",
    "HeterogeneousConfig",
    "HeterogeneousResult",
    "run_heterogeneous_open_loop",
]
