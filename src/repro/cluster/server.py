"""The simulated index serving node: fork-join over partition tasks.

A query arriving with total service demand ``W`` (reference-core
seconds) is split into ``P`` partition tasks.  Task ``i`` receives
``W · s_i + α`` where the shares ``s_i`` are Dirichlet-distributed with
mean ``1/P`` (shards never split work perfectly evenly) and ``α`` is the
fixed per-partition overhead (dispatch, per-shard query setup, its slice
of the result copy).  Tasks queue FCFS on the server's cores; when the
last task finishes, a merge task of ``m₀ + m₁·P`` runs, and the response
leaves the server.

This fork-join structure is exactly the mechanism behind the paper's
two findings: splitting ``W`` across cores shortens the *intrinsic* long
queries (tail shrinks), while the ``α``/merge terms inflate total work
(throughput eventually suffers) — and a slow-cored server can buy back
single-query latency by increasing ``P``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Union

import numpy as np

from repro.cluster.results import QueryRecord
from repro.search.strategy import TraversalStrategy
from repro.servers.spec import ServerSpec
from repro.sim.engine import Simulator
from repro.sim.hiccups import HiccupSchedule
from repro.sim.resources import CoreBank

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry


@dataclass(frozen=True)
class StorageModelConfig:
    """Cost model of tiered (larger-than-RAM) index storage.

    Mirrors the native engine's block-store path: a query whose
    traversal pages postings blocks in from the storage tier pays a
    fetch latency on top of its scoring demand.  The model keeps the
    same shape the native counters expose — fetch work proportional to
    the (pruned) scoring demand, discounted by the block cache's hit
    rate.

    Attributes
    ----------
    block_fetch_latency_s:
        Reference-core seconds one block fetch adds (per-fetch latency
        of the storage tier, amortized over the core that waits on it).
    blocks_per_demand_s:
        How many block fetches one reference-core second of scoring
        demand induces when every block misses.  Calibrated from the
        native engine's ``store.blocks_fetched`` against measured
        service time (the fig26 bench prints both).
    cache_hit_rate:
        Fraction of block touches served by the admission-controlled
        cache, in ``[0, 1)``.  Calibrated from ``cache.block_hits`` /
        (hits + misses) at the chosen budget.
    """

    block_fetch_latency_s: float = 1e-4
    blocks_per_demand_s: float = 2000.0
    cache_hit_rate: float = 0.8

    def __post_init__(self) -> None:
        if self.block_fetch_latency_s < 0:
            raise ValueError("block_fetch_latency_s must be non-negative")
        if self.blocks_per_demand_s < 0:
            raise ValueError("blocks_per_demand_s must be non-negative")
        if not 0.0 <= self.cache_hit_rate < 1.0:
            raise ValueError(
                f"cache_hit_rate must be in [0, 1), got {self.cache_hit_rate}"
            )

    def blocks_fetched(self, demand: float) -> float:
        """Expected block fetches (cache misses) for ``demand`` seconds."""
        return demand * self.blocks_per_demand_s * (1.0 - self.cache_hit_rate)

    def fetch_seconds(self, demand: float) -> float:
        """Fetch latency added to a query of (pruned) ``demand``."""
        return self.blocks_fetched(demand) * self.block_fetch_latency_s


@dataclass(frozen=True)
class PartitionModelConfig:
    """Cost model of intra-server partitioning.

    Attributes
    ----------
    num_partitions:
        ``P`` — the quantity the paper's central study sweeps.
    partition_overhead:
        ``α`` — fixed reference-core seconds added to every partition
        task (per-shard dispatch + setup).  Calibrated from the native
        engine; default 0.3 ms.
    imbalance_concentration:
        Dirichlet concentration of the work split across shards.  Higher
        is more even; ~60 reproduces the few-percent imbalance measured
        for round-robin document sharding.
    merge_base:
        ``m₀`` — fixed merge cost in reference-core seconds.
    merge_per_partition:
        ``m₁`` — additional merge cost per partition (k more hits to
        merge for every extra shard).
    traversal:
        Postings traversal strategy the modeled ISN runs.  Exhaustive
        (the default and the paper's setting) consumes the full demand;
        the WAND family scales it by ``pruning_factor``.  Accepts a
        :class:`~repro.search.strategy.TraversalStrategy` or any
        spelling its ``coerce`` understands.
    pruning_factor:
        Fraction of the exhaustive scoring demand a pruning traversal
        still pays, in ``(0, 1]``.  Calibrated from the native engine's
        ``wand.docs_scored`` / ``daat.candidates_scored`` ratio (the
        fig25 ablation); ignored for exhaustive traversal.
    storage:
        Optional tiered-storage cost model.  None (the default) models
        a fully RAM-resident index; a :class:`StorageModelConfig` adds
        block-fetch latency to the effective demand, mirroring the
        native engine's paged serving path.
    """

    num_partitions: int = 1
    partition_overhead: float = 0.0003
    imbalance_concentration: float = 60.0
    merge_base: float = 0.0002
    merge_per_partition: float = 0.0001
    traversal: Union[str, TraversalStrategy] = TraversalStrategy.EXHAUSTIVE
    pruning_factor: float = 1.0
    storage: Optional[StorageModelConfig] = None

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if self.partition_overhead < 0:
            raise ValueError("partition_overhead must be non-negative")
        if self.imbalance_concentration <= 0:
            raise ValueError("imbalance_concentration must be positive")
        if self.merge_base < 0 or self.merge_per_partition < 0:
            raise ValueError("merge costs must be non-negative")
        object.__setattr__(
            self, "traversal", TraversalStrategy.coerce(self.traversal)
        )
        if not 0.0 < self.pruning_factor <= 1.0:
            raise ValueError(
                f"pruning_factor must be in (0, 1], got {self.pruning_factor}"
            )

    def merge_demand(self) -> float:
        """Reference-core seconds the merge step costs at this ``P``."""
        return self.merge_base + self.merge_per_partition * self.num_partitions

    def effective_demand(self, demand: float) -> float:
        """Scoring demand after traversal pruning, plus storage fetches.

        Exhaustive traversal pays the full ``demand``; WAND-family
        traversal pays ``demand * pruning_factor`` (the per-partition
        overheads and the merge are posting-volume independent and are
        not scaled).  With a tiered :attr:`storage` model, block-fetch
        latency is added on the *pruned* demand — a traversal that
        descends into fewer blocks also fetches fewer.
        """
        scoring = (
            demand * self.pruning_factor if self.traversal.prunes else demand
        )
        if self.storage is not None:
            scoring += self.storage.fetch_seconds(scoring)
        return scoring

    def total_work(self, demand: float) -> float:
        """Total reference-core seconds a query of ``demand`` costs."""
        return (
            self.effective_demand(demand)
            + self.num_partitions * self.partition_overhead
            + self.merge_demand()
        )


class SimulatedServer:
    """One simulated ISN bound to a simulator, spec, and cost model."""

    def __init__(
        self,
        sim: Simulator,
        spec: ServerSpec,
        partitioning: PartitionModelConfig,
        imbalance_rng: np.random.Generator,
        on_complete: Optional[Callable[[QueryRecord], None]] = None,
        hiccups: Optional[HiccupSchedule] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ):
        self.sim = sim
        self.spec = spec
        self.partitioning = partitioning
        self.cores = CoreBank(
            spec.num_cores, speed=spec.core_speed, hiccups=hiccups
        )
        self._imbalance_rng = imbalance_rng
        self._on_complete = on_complete
        self._metrics = metrics
        #: Queries accepted but not yet completed — the load signal a
        #: tail-tolerant broker uses to pick the least-loaded replica.
        self.outstanding = 0

    def handle_arrival(self, record: QueryRecord) -> None:
        """Process a query arriving now (``sim.now``); fork its tasks."""
        now = self.sim.now
        self.outstanding += 1
        record.server_arrival = now
        config = self.partitioning
        shares = self._work_shares(config.num_partitions)

        demand = config.effective_demand(record.demand)
        if self._metrics is not None and config.traversal.prunes:
            pruned = record.demand * config.pruning_factor
            self._metrics.counter("sim.wand.queries_pruned").add()
            self._metrics.counter("sim.wand.demand_saved_s").add(
                record.demand - pruned
            )
        if self._metrics is not None and config.storage is not None:
            scoring = (
                record.demand * config.pruning_factor
                if config.traversal.prunes
                else record.demand
            )
            self._metrics.counter("sim.store.blocks_fetched").add(
                int(round(config.storage.blocks_fetched(scoring)))
            )
            self._metrics.gauge("sim.store.fetch_demand_s").add(
                config.storage.fetch_seconds(scoring)
            )

        first_start = float("inf")
        earliest_end = float("inf")
        last_end = 0.0
        for share in shares:
            task_demand = demand * share + config.partition_overhead
            start, end = self.cores.submit(now, task_demand)
            first_start = min(first_start, start)
            earliest_end = min(earliest_end, end)
            last_end = max(last_end, end)

        record.first_task_start = first_start
        record.earliest_task_end = earliest_end
        record.last_task_end = last_end
        if config.merge_demand() > 0:
            self.sim.schedule(last_end, self._start_merge, record)
        else:
            # A zero-cost merge completes inline with the last task; it
            # must not re-queue behind other queries' tasks for a core.
            self.sim.schedule(last_end, self._complete_without_merge, record)

    def _work_shares(self, num_partitions: int) -> np.ndarray:
        if num_partitions == 1:
            return np.ones(1)
        concentration = self.partitioning.imbalance_concentration
        return self._imbalance_rng.dirichlet(
            np.full(num_partitions, concentration)
        )

    def _start_merge(self, record: QueryRecord) -> None:
        start, end = self.cores.submit(self.sim.now, self.partitioning.merge_demand())
        record.merge_start = start
        self.sim.schedule(end, self._finish_merge, record)

    def _finish_merge(self, record: QueryRecord) -> None:
        record.merge_end = self.sim.now
        self.outstanding -= 1
        if self._on_complete is not None:
            self._on_complete(record)

    def _complete_without_merge(self, record: QueryRecord) -> None:
        record.merge_start = self.sim.now
        record.merge_end = self.sim.now
        self.outstanding -= 1
        if self._on_complete is not None:
            self._on_complete(record)
