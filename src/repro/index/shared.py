"""Zero-copy shared-memory export of a partitioned index.

The process execution backend (:mod:`repro.engine.mp`) needs every
worker to see the index's hot state — postings arrays, block-max
metadata, document lengths, global-id maps — without each process
paying a private copy of it.  This module provides that as a two-sided
contract:

- :class:`SharedIndexArena` (parent side) flattens a resident
  :class:`~repro.index.partitioner.PartitionedIndex` into **one**
  :class:`multiprocessing.shared_memory.SharedMemory` segment holding a
  single int64 word array (every hot array in the index is int64), and
  describes the layout with a picklable :class:`SharedIndexSpec` of
  ``(offset, length)`` slices.
- :func:`attach_shared_index` (worker side) maps the segment and
  rebuilds a structurally identical ``PartitionedIndex`` whose numpy
  arrays are **read-only views** into the shared buffer — no postings
  byte is copied, so worker resident-set cost is the dictionary strings
  plus page tables.

Only array payloads live in shared memory.  The term dictionary (term
strings plus per-term statistics) and the analyzer travel inside the
spec by pickle: they are small next to postings, and term df is
recovered for free from the postings offset table.

The attached index is *bit-identical* input to the scoring kernel:
views alias the exact arrays the parent would traverse, so BM25 floats
come out equal to the thread backend's, not just close.

Segment word layout (all int64, per shard, shards concatenated)::

    postings_offsets   num_terms + 1   prefix sums into doc_ids/frequencies
    doc_ids            total_postings
    frequencies        total_postings
    collection_freqs   num_terms
    doc_lengths        num_documents
    global_doc_ids     num_documents
    block_offsets      num_terms + 1   prefix sums into the block arrays
    block_last_ids     total_blocks
    block_max_freqs    total_blocks
    block_min_lengths  total_blocks
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.index.blockmax import BlockMetadata
from repro.index.dictionary import TermDictionary
from repro.index.inverted import InvertedIndex
from repro.index.partitioner import (
    IndexShard,
    PartitionedIndex,
    PartitionStrategy,
)
from repro.index.postings import PostingsList
from repro.text.analyzer import Analyzer

__all__ = [
    "AttachedSegment",
    "SharedIndexArena",
    "SharedIndexSpec",
    "SharedShardSpec",
    "attach_shared_index",
]


@dataclass(frozen=True)
class _Slice:
    """One array's placement in the shared word buffer."""

    offset: int
    length: int

    def view(self, words: np.ndarray) -> np.ndarray:
        return words[self.offset : self.offset + self.length]


@dataclass(frozen=True)
class SharedShardSpec:
    """Layout of one shard inside the shared segment.

    ``terms`` is the shard's dictionary in dense term-id order; per-term
    document frequency is implied by the postings offset table, so only
    collection frequencies need their own array.
    """

    shard_id: int
    terms: Tuple[str, ...]
    block_size: int
    postings_offsets: _Slice
    doc_ids: _Slice
    frequencies: _Slice
    collection_frequencies: _Slice
    doc_lengths: _Slice
    global_doc_ids: _Slice
    block_offsets: _Slice
    block_last_doc_ids: _Slice
    block_max_frequencies: _Slice
    block_min_doc_lengths: _Slice


@dataclass(frozen=True)
class SharedIndexSpec:
    """Everything a worker needs to attach: segment name + layout.

    Picklable by construction — it crosses the process boundary once,
    in the worker pool's initializer.
    """

    shm_name: str
    total_words: int
    analyzer: Analyzer
    strategy: PartitionStrategy
    shards: Tuple[SharedShardSpec, ...]

    @property
    def num_partitions(self) -> int:
        return len(self.shards)

    @property
    def nbytes(self) -> int:
        """Size of the shared segment in bytes."""
        return self.total_words * 8


class _LayoutWriter:
    """Accumulates arrays into one flat int64 buffer, recording slices."""

    def __init__(self) -> None:
        self.chunks: List[np.ndarray] = []
        self.cursor = 0

    def append(self, array: np.ndarray) -> _Slice:
        array = np.ascontiguousarray(array, dtype=np.int64)
        placed = _Slice(offset=self.cursor, length=int(array.size))
        self.chunks.append(array)
        self.cursor += int(array.size)
        return placed


def _export_shard(shard: IndexShard, writer: _LayoutWriter) -> SharedShardSpec:
    index = shard.index
    if not isinstance(index, InvertedIndex):
        raise TypeError(
            f"shard {shard.shard_id} holds a {type(index).__name__}; only "
            "resident InvertedIndex shards can be exported to shared "
            "memory (tiered indexes are re-tiered inside each worker)"
        )
    num_terms = index.num_terms
    postings = index.all_postings()

    postings_offsets = np.zeros(num_terms + 1, dtype=np.int64)
    postings_offsets[1:] = np.cumsum(
        np.asarray([len(p) for p in postings], dtype=np.int64)
    )
    doc_ids = (
        np.concatenate([p.doc_ids for p in postings])
        if postings
        else np.empty(0, dtype=np.int64)
    )
    frequencies = (
        np.concatenate([p.frequencies for p in postings])
        if postings
        else np.empty(0, dtype=np.int64)
    )
    collection_freqs = np.array(
        [p.collection_frequency() for p in postings], dtype=np.int64
    )

    metadata = [
        index.block_metadata_for_id(term_id) for term_id in range(num_terms)
    ]
    block_offsets = np.zeros(num_terms + 1, dtype=np.int64)
    block_offsets[1:] = np.cumsum(
        np.asarray([m.num_blocks for m in metadata], dtype=np.int64)
    )
    empty = np.empty(0, dtype=np.int64)
    block_last = (
        np.concatenate([m.last_doc_ids for m in metadata])
        if metadata
        else empty
    )
    block_max = (
        np.concatenate([m.max_frequencies for m in metadata])
        if metadata
        else empty
    )
    block_min = (
        np.concatenate([m.min_doc_lengths for m in metadata])
        if metadata
        else empty
    )

    return SharedShardSpec(
        shard_id=shard.shard_id,
        terms=tuple(index.dictionary.terms()),
        block_size=index.block_size,
        postings_offsets=writer.append(postings_offsets),
        doc_ids=writer.append(doc_ids),
        frequencies=writer.append(frequencies),
        collection_frequencies=writer.append(collection_freqs),
        doc_lengths=writer.append(index.doc_lengths),
        global_doc_ids=writer.append(shard.global_doc_ids),
        block_offsets=writer.append(block_offsets),
        block_last_doc_ids=writer.append(block_last),
        block_max_frequencies=writer.append(block_max),
        block_min_doc_lengths=writer.append(block_min),
    )


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # already unlinked (e.g. by a prior close)
        pass


class SharedIndexArena:
    """Owns the shared segment a partitioned index was exported into.

    Construction copies every hot array exactly once into shared
    memory; :attr:`spec` is the picklable attach descriptor for worker
    processes.  :meth:`close` unlinks the segment; a
    :mod:`weakref` finalizer guarantees the segment does not outlive
    the arena even if ``close`` is never called (leaked POSIX shm
    segments survive process exit, unlike leaked thread pools).
    """

    def __init__(self, partitioned: PartitionedIndex):
        writer = _LayoutWriter()
        shard_specs = tuple(
            _export_shard(shard, writer) for shard in partitioned
        )
        total_words = writer.cursor
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(8, total_words * 8)
        )
        words = np.frombuffer(self._shm.buf, dtype=np.int64)
        cursor = 0
        for chunk in writer.chunks:
            words[cursor : cursor + chunk.size] = chunk
            cursor += chunk.size
        del words  # release the buffer view before any later close()
        self.spec = SharedIndexSpec(
            shm_name=self._shm.name,
            total_words=total_words,
            analyzer=partitioned[0].index.analyzer,
            strategy=partitioned.strategy,
            shards=shard_specs,
        )
        self._finalizer = weakref.finalize(
            self, _release_segment, self._shm
        )

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Unmap and unlink the shared segment (idempotent)."""
        self._finalizer()

    def __enter__(self) -> "SharedIndexArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _attach_shard(
    spec: SharedShardSpec, words: np.ndarray, analyzer: Analyzer
) -> IndexShard:
    postings_offsets = spec.postings_offsets.view(words)
    doc_ids = spec.doc_ids.view(words)
    frequencies = spec.frequencies.view(words)
    collection_freqs = spec.collection_frequencies.view(words)
    block_offsets = spec.block_offsets.view(words)
    block_last = spec.block_last_doc_ids.view(words)
    block_max = spec.block_max_frequencies.view(words)
    block_min = spec.block_min_doc_lengths.view(words)

    dictionary = TermDictionary()
    postings: List[PostingsList] = []
    metadata: List[Optional[BlockMetadata]] = []
    for term_id, term in enumerate(spec.terms):
        lo = int(postings_offsets[term_id])
        hi = int(postings_offsets[term_id + 1])
        dictionary.add(
            term,
            document_frequency=hi - lo,
            collection_frequency=int(collection_freqs[term_id]),
        )
        postings.append(
            PostingsList.from_trusted_arrays(
                doc_ids[lo:hi], frequencies[lo:hi]
            )
        )
        blo = int(block_offsets[term_id])
        bhi = int(block_offsets[term_id + 1])
        metadata.append(
            BlockMetadata(
                block_size=spec.block_size,
                last_doc_ids=block_last[blo:bhi],
                max_frequencies=block_max[blo:bhi],
                min_doc_lengths=block_min[blo:bhi],
            )
        )
    index = InvertedIndex(
        dictionary=dictionary,
        postings=postings,
        doc_lengths=spec.doc_lengths.view(words),
        analyzer=analyzer,
        block_metadata=metadata,
        block_size=spec.block_size,
    )
    return IndexShard(
        shard_id=spec.shard_id,
        index=index,
        global_doc_ids=spec.global_doc_ids.view(words),
    )


class AttachedSegment:
    """The worker-side mapping handle returned by :func:`attach_shared_index`.

    Holding it keeps the mapping (and therefore every postings view)
    alive; :meth:`close` releases it best-effort — if numpy views are
    still exported the mapping simply lives until process exit, which
    is harmless because attachers never own the segment.
    """

    def __init__(self, keepalive: object, close_fn: Callable[[], None]):
        self._keepalive = keepalive
        self._close_fn = close_fn
        self._closed = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._close_fn()
        except BufferError:
            pass


def attach_shared_index(
    spec: SharedIndexSpec,
) -> Tuple[PartitionedIndex, AttachedSegment]:
    """Map the exported segment and rebuild the partitioned index.

    Returns the index plus the :class:`AttachedSegment` handle keeping
    the mapping alive — the caller must hold the handle as long as the
    index is in use and ``close()`` it afterwards; the parent's
    :class:`SharedIndexArena` owns the segment's lifetime (attachers
    never unlink).

    On Linux the segment is mapped read-only straight off
    ``/dev/shm`` — this sidesteps :mod:`multiprocessing`'s resource
    tracker, which would otherwise count every attacher as an owner and
    try to unlink the parent's segment (or complain about "leaked"
    handles) at exit.  Elsewhere it falls back to
    :class:`~multiprocessing.shared_memory.SharedMemory` with an
    explicit tracker unregister.
    """
    shm_path = os.path.join("/dev/shm", spec.shm_name.lstrip("/"))
    if os.path.exists(shm_path):
        mapped = np.memmap(shm_path, dtype=np.int64, mode="r")
        words: np.ndarray = mapped
        handle = AttachedSegment(mapped, mapped._mmap.close)
    else:  # pragma: no cover - non-Linux fallback
        shm = shared_memory.SharedMemory(name=spec.shm_name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        words = np.frombuffer(shm.buf, dtype=np.int64)
        words.flags.writeable = False  # read-only attach, enforced
        handle = AttachedSegment(shm, shm.close)
    shards = [
        _attach_shard(shard_spec, words, spec.analyzer)
        for shard_spec in spec.shards
    ]
    return PartitionedIndex(shards=shards, strategy=spec.strategy), handle
