"""Postings compression: delta gaps + variable-byte (varint) encoding.

Search indexes store doc ids as deltas between consecutive ids and
varint-encode the deltas — the classic scheme Lucene used at the time
of the paper.  We use it for on-disk serialization and for the index
size figures in the characterization tables.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.index.postings import PostingsList


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a variable-length byte string."""
    if value < 0:
        raise ValueError(f"varint values must be non-negative, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode one varint from ``data`` at ``offset``.

    Returns ``(value, next_offset)``.
    """
    value = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise ValueError("truncated varint")
        byte = data[position]
        position += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, position
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def encode_varint_stream(values: Sequence[int]) -> bytes:
    """Encode a sequence of non-negative integers as concatenated varints."""
    out = bytearray()
    for value in values:
        out.extend(encode_varint(int(value)))
    return bytes(out)


def decode_varint_stream(data: bytes, count: int) -> List[int]:
    """Decode exactly ``count`` varints from ``data``."""
    values: List[int] = []
    offset = 0
    for _ in range(count):
        value, offset = decode_varint(data, offset)
        values.append(value)
    if offset != len(data):
        raise ValueError(
            f"trailing bytes after {count} varints: "
            f"{len(data) - offset} bytes unread"
        )
    return values


def encode_postings(postings: PostingsList) -> bytes:
    """Encode a postings list: count, then (gap, frequency) varint pairs.

    Doc ids are delta-gapped (first id stored as-is, subsequent ids as
    the difference to the previous id minus one — gaps are >= 1 because
    ids are strictly increasing, so we can save a little by biasing).
    """
    doc_ids = postings.doc_ids
    frequencies = postings.frequencies
    out = bytearray(encode_varint(len(postings)))
    previous = -1
    for doc_id, frequency in zip(doc_ids, frequencies):
        gap = int(doc_id) - previous - 1
        out.extend(encode_varint(gap))
        out.extend(encode_varint(int(frequency)))
        previous = int(doc_id)
    return bytes(out)


def decode_postings(data: bytes) -> Tuple[PostingsList, int]:
    """Decode one postings list; returns ``(postings, next_offset)``."""
    count, offset = decode_varint(data, 0)
    doc_ids = np.empty(count, dtype=np.int64)
    frequencies = np.empty(count, dtype=np.int64)
    previous = -1
    for index in range(count):
        gap, offset = decode_varint(data, offset)
        frequency, offset = decode_varint(data, offset)
        doc_id = previous + gap + 1
        doc_ids[index] = doc_id
        frequencies[index] = frequency
        previous = doc_id
    return PostingsList(doc_ids, frequencies), offset


def compressed_size(postings: PostingsList) -> int:
    """Size in bytes of the compressed form of ``postings``."""
    return len(encode_postings(postings))
