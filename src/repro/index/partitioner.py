"""Intra-server index partitioning.

This module implements the mechanism at the center of the paper's
study: splitting one server's document collection into ``P`` disjoint
shards, each with its own (smaller) inverted index.  A query is then
executed against all shards in parallel and the per-shard top-k results
are merged.  Because BM25 scores are computed from *local* shard
statistics in the benchmark (as in Lucene/Solr at the time), shards
here are self-contained indexes; the merger combines by score.

Three document-to-shard assignment strategies are provided:

- ``ROUND_ROBIN`` — doc ``d`` goes to shard ``d mod P`` (the benchmark's
  default behaviour when feeding segments in crawl order);
- ``CONTIGUOUS`` — the collection is cut into ``P`` consecutive ranges;
- ``HASH`` — a deterministic hash of the doc id picks the shard.

For a synthetically shuffled corpus all three produce statistically
identical shards; they differ on corpora with temporal/topical locality,
which the ablation benchmark exercises.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence

import numpy as np

from repro.corpus.documents import Document, DocumentCollection
from repro.index.builder import IndexBuilder
from repro.index.inverted import InvertedIndex
from repro.text.analyzer import Analyzer


class PartitionStrategy(Enum):
    """How documents are assigned to intra-server partitions."""

    ROUND_ROBIN = "round_robin"
    CONTIGUOUS = "contiguous"
    HASH = "hash"


@dataclass(frozen=True)
class IndexShard:
    """One intra-server partition: a local index plus the global id map.

    Attributes
    ----------
    shard_id:
        Partition number in ``[0, num_partitions)``.
    index:
        Inverted index over the shard's documents with *local* dense ids.
    global_doc_ids:
        ``global_doc_ids[local_id]`` is the document's id in the full
        collection; used when merging shard results.
    """

    shard_id: int
    index: InvertedIndex
    global_doc_ids: np.ndarray

    def to_global(self, local_doc_id: int) -> int:
        """Translate a shard-local doc id to the collection-global id."""
        return int(self.global_doc_ids[local_doc_id])

    @property
    def num_documents(self) -> int:
        """Number of documents in this shard."""
        return self.index.num_documents


@dataclass(frozen=True)
class PartitionedIndex:
    """A server's index split into ``P`` self-contained shards."""

    shards: List[IndexShard]
    strategy: PartitionStrategy

    @property
    def num_partitions(self) -> int:
        """Number of shards."""
        return len(self.shards)

    @property
    def num_documents(self) -> int:
        """Total documents across all shards."""
        return sum(shard.num_documents for shard in self.shards)

    def __iter__(self):
        return iter(self.shards)

    def __getitem__(self, shard_id: int) -> IndexShard:
        return self.shards[shard_id]


def assign_documents(
    num_documents: int,
    num_partitions: int,
    strategy: PartitionStrategy = PartitionStrategy.ROUND_ROBIN,
) -> List[List[int]]:
    """Return, per shard, the sorted list of global doc ids assigned to it."""
    if num_partitions <= 0:
        raise ValueError(f"num_partitions must be positive, got {num_partitions}")
    if num_documents < 0:
        raise ValueError("num_documents must be non-negative")
    assignments: List[List[int]] = [[] for _ in range(num_partitions)]
    if strategy is PartitionStrategy.ROUND_ROBIN:
        for doc_id in range(num_documents):
            assignments[doc_id % num_partitions].append(doc_id)
    elif strategy is PartitionStrategy.CONTIGUOUS:
        boundaries = np.linspace(0, num_documents, num_partitions + 1).astype(int)
        for shard_id in range(num_partitions):
            assignments[shard_id] = list(
                range(int(boundaries[shard_id]), int(boundaries[shard_id + 1]))
            )
    elif strategy is PartitionStrategy.HASH:
        for doc_id in range(num_documents):
            digest = zlib.crc32(doc_id.to_bytes(8, "little"))
            assignments[digest % num_partitions].append(doc_id)
    else:  # pragma: no cover - exhaustive over the enum
        raise ValueError(f"unknown strategy {strategy}")
    return assignments


def partition_collection(
    collection: DocumentCollection,
    num_partitions: int,
    strategy: PartitionStrategy = PartitionStrategy.ROUND_ROBIN,
) -> List[DocumentCollection]:
    """Split ``collection`` into per-shard collections with local ids.

    The returned collections renumber documents densely from 0; use
    :func:`partition_index` to also retain the global id mapping.
    """
    assignments = assign_documents(len(collection), num_partitions, strategy)
    shards: List[DocumentCollection] = []
    for shard_doc_ids in assignments:
        shard = DocumentCollection()
        for local_id, global_id in enumerate(shard_doc_ids):
            original = collection[global_id]
            shard.add(
                Document(
                    doc_id=local_id,
                    url=original.url,
                    title=original.title,
                    body=original.body,
                )
            )
        shards.append(shard)
    return shards


def partition_index(
    collection: DocumentCollection,
    num_partitions: int,
    analyzer: Optional[Analyzer] = None,
    strategy: PartitionStrategy = PartitionStrategy.ROUND_ROBIN,
    block_size: Optional[int] = None,
) -> PartitionedIndex:
    """Partition ``collection`` and build one inverted index per shard.

    ``block_size`` tunes the Block-Max WAND metadata granularity of
    every shard index (defaults to the builder's 128).
    """
    assignments = assign_documents(len(collection), num_partitions, strategy)
    shard_collections = partition_collection(collection, num_partitions, strategy)
    if block_size is None:
        builder = IndexBuilder(analyzer=analyzer)
    else:
        builder = IndexBuilder(analyzer=analyzer, block_size=block_size)
    shards: List[IndexShard] = []
    for shard_id, (doc_ids, shard_collection) in enumerate(
        zip(assignments, shard_collections)
    ):
        shards.append(
            IndexShard(
                shard_id=shard_id,
                index=builder.build(shard_collection),
                global_doc_ids=np.asarray(doc_ids, dtype=np.int64),
            )
        )
    return PartitionedIndex(shards=shards, strategy=strategy)
