"""Positional indexing: term positions for phrase queries.

The benchmark's index serving node (Lucene-based) stores term positions
so it can answer phrase queries ("new york") and generate highlighted
snippets.  ``PositionalIndexBuilder`` produces a regular
:class:`~repro.index.inverted.InvertedIndex` plus, per term, the
in-document token positions of every occurrence.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.corpus.documents import DocumentCollection
from repro.index.dictionary import TermDictionary
from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingsList
from repro.text.analyzer import Analyzer, default_analyzer


class PositionalPostings:
    """Positions of one term: per document, the sorted token offsets."""

    __slots__ = ("_doc_ids", "_positions")

    def __init__(self, doc_ids: Sequence[int], positions: List[np.ndarray]):
        doc_array = np.asarray(doc_ids, dtype=np.int64)
        if len(positions) != doc_array.size:
            raise ValueError(
                f"{doc_array.size} doc ids but {len(positions)} position lists"
            )
        if doc_array.size > 1 and not np.all(np.diff(doc_array) > 0):
            raise ValueError("doc_ids must be strictly increasing")
        for position_list in positions:
            if len(position_list) == 0:
                raise ValueError("every posting needs at least one position")
        self._doc_ids = doc_array
        self._positions = [
            np.asarray(position_list, dtype=np.int64)
            for position_list in positions
        ]

    def __len__(self) -> int:
        return int(self._doc_ids.size)

    @property
    def doc_ids(self) -> np.ndarray:
        """Sorted doc ids (do not mutate)."""
        return self._doc_ids

    def positions_in(self, doc_id: int) -> Optional[np.ndarray]:
        """Token positions of the term in ``doc_id`` (None if absent)."""
        index = int(np.searchsorted(self._doc_ids, doc_id))
        if index < len(self) and self._doc_ids[index] == doc_id:
            return self._positions[index]
        return None

    def to_postings(self) -> PostingsList:
        """Project to a frequency-only postings list."""
        frequencies = np.array(
            [len(position_list) for position_list in self._positions],
            dtype=np.int64,
        )
        return PostingsList(self._doc_ids, frequencies)


@dataclass(frozen=True)
class PositionalIndex:
    """An inverted index plus per-term position lists."""

    index: InvertedIndex
    _positions: Dict[str, PositionalPostings]

    def positions_for(self, term: str) -> Optional[PositionalPostings]:
        """Position postings of ``term`` (None for unknown terms)."""
        return self._positions.get(term)

    @property
    def analyzer(self) -> Analyzer:
        """The analyzer the index was built with."""
        return self.index.analyzer


class PositionalIndexBuilder:
    """Builds a :class:`PositionalIndex` from a document collection.

    One analysis pass produces both the frequency postings and the
    position lists, guaranteeing they agree (a property the test suite
    checks via :meth:`PositionalPostings.to_postings`).
    """

    def __init__(self, analyzer: Optional[Analyzer] = None):
        self.analyzer = analyzer or default_analyzer()

    def build(self, collection: DocumentCollection) -> PositionalIndex:
        """Analyze and index every document with positions."""
        term_positions: Dict[str, Dict[int, List[int]]] = defaultdict(dict)
        doc_lengths = np.zeros(len(collection), dtype=np.int64)

        for document in collection:
            terms = self.analyzer.analyze(document.text)
            doc_lengths[document.doc_id] = len(terms)
            for position, term in enumerate(terms):
                term_positions[term].setdefault(document.doc_id, []).append(
                    position
                )

        dictionary = TermDictionary()
        postings: List[PostingsList] = []
        positions: Dict[str, PositionalPostings] = {}
        for term in sorted(term_positions):
            per_doc = term_positions[term]
            doc_ids = sorted(per_doc)
            positional = PositionalPostings(
                doc_ids, [np.array(per_doc[doc_id]) for doc_id in doc_ids]
            )
            positions[term] = positional
            postings_list = positional.to_postings()
            dictionary.add(
                term,
                document_frequency=postings_list.document_frequency(),
                collection_frequency=postings_list.collection_frequency(),
            )
            postings.append(postings_list)

        index = InvertedIndex(
            dictionary=dictionary,
            postings=postings,
            doc_lengths=doc_lengths,
            analyzer=self.analyzer,
        )
        return PositionalIndex(index=index, _positions=positions)
