"""The queryable inverted index."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.index.blockmax import DEFAULT_BLOCK_SIZE, BlockMetadata
from repro.index.dictionary import TermDictionary, TermInfo
from repro.index.postings import PostingsList
from repro.text.analyzer import Analyzer


class InvertedIndex:
    """An immutable inverted index over a document collection.

    The index holds the term dictionary, one postings list per term
    (indexed by term id), per-document lengths (in analyzed terms, for
    BM25 length normalization), and the analyzer it was built with so
    queries are normalized identically to documents.
    """

    def __init__(
        self,
        dictionary: TermDictionary,
        postings: Sequence[PostingsList],
        doc_lengths: np.ndarray,
        analyzer: Analyzer,
        block_metadata: Optional[Sequence[Optional[BlockMetadata]]] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        if len(dictionary) != len(postings):
            raise ValueError(
                f"dictionary has {len(dictionary)} terms but "
                f"{len(postings)} postings lists were given"
            )
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.dictionary = dictionary
        self._postings = list(postings)
        self.doc_lengths = np.asarray(doc_lengths, dtype=np.int64)
        self.analyzer = analyzer
        self.block_size = int(block_size)
        if block_metadata is None:
            self._block_metadata: List[Optional[BlockMetadata]] = [
                None
            ] * len(self._postings)
        else:
            if len(block_metadata) != len(self._postings):
                raise ValueError(
                    f"{len(block_metadata)} block metadata entries for "
                    f"{len(self._postings)} postings lists"
                )
            self._block_metadata = list(block_metadata)

    @property
    def num_documents(self) -> int:
        """Number of documents in the indexed collection."""
        return int(self.doc_lengths.size)

    @property
    def num_terms(self) -> int:
        """Number of distinct terms."""
        return len(self.dictionary)

    @property
    def total_postings(self) -> int:
        """Total number of postings across all terms."""
        return sum(len(postings) for postings in self._postings)

    @property
    def average_doc_length(self) -> float:
        """Mean analyzed document length (0.0 for an empty index)."""
        if self.doc_lengths.size == 0:
            return 0.0
        return float(self.doc_lengths.mean())

    def term_info(self, term: str) -> Optional[TermInfo]:
        """Dictionary entry for ``term``, or None if absent."""
        return self.dictionary.lookup(term)

    def postings_for(self, term: str) -> PostingsList:
        """Postings of ``term``; empty list if the term is unknown."""
        info = self.dictionary.lookup(term)
        if info is None:
            return PostingsList.empty()
        return self._postings[info.term_id]

    def postings_for_id(self, term_id: int) -> PostingsList:
        """Postings by dense term id."""
        return self._postings[term_id]

    def block_metadata_for_id(self, term_id: int) -> BlockMetadata:
        """Block-max metadata by dense term id.

        Computed lazily (and memoized) for indexes whose builder or
        serialization version did not precompute it — a v1/v2 payload
        answers block-max queries identically to a v3 one, just paying
        the derivation cost on first use.  The memoization race under
        concurrent shard searchers is benign: every thread derives the
        same value from immutable postings.
        """
        cached = self._block_metadata[term_id]
        if cached is None:
            cached = BlockMetadata.from_postings(
                self._postings[term_id], self.doc_lengths, self.block_size
            )
            self._block_metadata[term_id] = cached
        return cached

    def block_metadata_for(self, term: str) -> Optional[BlockMetadata]:
        """Block-max metadata of ``term``, or None if the term is unknown."""
        info = self.dictionary.lookup(term)
        if info is None:
            return None
        return self.block_metadata_for_id(info.term_id)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term`` (0 if unknown)."""
        info = self.dictionary.lookup(term)
        return info.document_frequency if info else 0

    def doc_length(self, doc_id: int) -> int:
        """Analyzed length of document ``doc_id``."""
        return int(self.doc_lengths[doc_id])

    def matched_postings_volume(self, terms: List[str]) -> int:
        """Total postings touched when evaluating ``terms``.

        This is the work proxy used throughout the characterization: a
        disjunctive top-k evaluation reads every posting of every query
        term, so service time is roughly affine in this volume.
        """
        return sum(self.document_frequency(term) for term in terms)

    def all_postings(self) -> List[PostingsList]:
        """All postings lists in term-id order (do not mutate)."""
        return self._postings
