"""Per-block postings metadata for block-max pruning (Ding & Suel).

Each term's postings list is cut into fixed-size blocks (the classic
choice is 128 postings).  For every block we keep:

- the **last doc id** in the block — the shallow "skip pointer" that
  lets a traversal move over whole blocks without touching postings;
- the **maximum term frequency** in the block;
- the **minimum document length** among the block's documents.

The pair (max tf, min doc length) yields a *local* score upper bound
for any monotone scorer: BM25 (and TF-IDF) contributions increase with
term frequency and never increase with document length, so
``score(max_tf, min_doc_length)`` dominates every posting in the
block.  That bound is far tighter than the term-global
``max_score(idf)``, which is what makes Block-Max WAND skip blocks a
plain WAND must descend into.

Metadata is computed by the :class:`~repro.index.builder.IndexBuilder`
and serialized in index format v3; indexes loaded from v1/v2 payloads
(or built by other paths) compute it lazily on first use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockMetadata", "DEFAULT_BLOCK_SIZE"]

#: Postings per block; 128 is the standard choice in the block-max
#: literature (large enough to amortize block bookkeeping, small enough
#: that local maxima stay tight).
DEFAULT_BLOCK_SIZE = 128


@dataclass(frozen=True)
class BlockMetadata:
    """Per-block skip pointers and score-bound ingredients for one term.

    Attributes
    ----------
    block_size:
        Number of postings per block (the final block may be shorter).
    last_doc_ids:
        Doc id of each block's last posting (strictly increasing).
    max_frequencies:
        Maximum term frequency within each block.
    min_doc_lengths:
        Minimum analyzed document length among each block's documents.
    """

    block_size: int
    last_doc_ids: np.ndarray
    max_frequencies: np.ndarray
    min_doc_lengths: np.ndarray

    @property
    def num_blocks(self) -> int:
        """Number of blocks covering the postings list."""
        return int(self.last_doc_ids.size)

    @classmethod
    def from_postings(
        cls,
        postings,
        doc_lengths: np.ndarray,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> "BlockMetadata":
        """Compute the metadata for one postings list.

        ``doc_lengths`` is the index-wide per-document length table the
        block minima are gathered from.
        """
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        doc_ids = postings.doc_ids
        count = int(len(doc_ids))
        if count == 0:
            empty = np.empty(0, dtype=np.int64)
            return cls(block_size, empty, empty.copy(), empty.copy())
        starts = np.arange(0, count, block_size)
        ends = np.minimum(starts + block_size - 1, count - 1)
        lengths = np.asarray(doc_lengths, dtype=np.int64)[doc_ids]
        return cls(
            block_size=block_size,
            last_doc_ids=doc_ids[ends].astype(np.int64),
            max_frequencies=np.maximum.reduceat(
                postings.frequencies, starts
            ).astype(np.int64),
            min_doc_lengths=np.minimum.reduceat(lengths, starts).astype(
                np.int64
            ),
        )

    def max_scores(self, scorer, idf: float) -> np.ndarray:
        """Per-block score upper bounds under ``scorer``.

        Valid for any scorer monotone increasing in term frequency and
        non-increasing in document length (BM25, TF-IDF).  Scorers with
        a vectorized ``score_block`` use it; others fall back to a
        per-block scalar loop.
        """
        if self.num_blocks == 0:
            return np.empty(0, dtype=np.float64)
        score_block = getattr(scorer, "score_block", None)
        if score_block is not None:
            return score_block(self.max_frequencies, self.min_doc_lengths, idf)
        return np.array(
            [
                scorer.score(int(frequency), int(length), idf)
                for frequency, length in zip(
                    self.max_frequencies, self.min_doc_lengths
                )
            ],
            dtype=np.float64,
        )
