"""Inverted index: the data structure at the heart of the benchmark.

The benchmark's index serving node answers queries by intersecting and
scoring posting lists.  This package provides the full index stack:

- :mod:`repro.index.postings` — posting lists over dense doc ids;
- :mod:`repro.index.dictionary` — the term dictionary;
- :mod:`repro.index.builder` — builds an index from a document collection;
- :mod:`repro.index.inverted` — the queryable :class:`InvertedIndex`;
- :mod:`repro.index.compression` — delta + varint postings codec;
- :mod:`repro.index.partitioner` — intra-server document partitioning,
  the mechanism the paper's central study sweeps;
- :mod:`repro.index.stats` — index statistics for the characterization;
- :mod:`repro.index.serialization` — binary save/load.
"""

from repro.index.builder import IndexBuilder
from repro.index.compression import (
    decode_postings,
    decode_varint_stream,
    encode_postings,
    encode_varint_stream,
)
from repro.index.dictionary import TermDictionary, TermInfo
from repro.index.inverted import InvertedIndex
from repro.index.partitioner import (
    IndexShard,
    PartitionedIndex,
    PartitionStrategy,
    partition_collection,
    partition_index,
)
from repro.index.positional import (
    PositionalIndex,
    PositionalIndexBuilder,
    PositionalPostings,
)
from repro.index.postings import PostingsList
from repro.index.serialization import (
    load_index,
    load_positional_index,
    save_index,
    save_positional_index,
)
from repro.index.stats import IndexStatistics, compute_statistics

__all__ = [
    "IndexBuilder",
    "InvertedIndex",
    "TermDictionary",
    "TermInfo",
    "PostingsList",
    "PositionalIndex",
    "PositionalIndexBuilder",
    "PositionalPostings",
    "IndexShard",
    "PartitionedIndex",
    "PartitionStrategy",
    "partition_collection",
    "partition_index",
    "IndexStatistics",
    "compute_statistics",
    "MergePolicy",
    "SegmentedIndex",
    "encode_postings",
    "decode_postings",
    "encode_varint_stream",
    "decode_varint_stream",
    "save_index",
    "load_index",
    "save_positional_index",
    "load_positional_index",
]


def __getattr__(name):
    # Lazy re-export: segments pulls in the query-execution stack
    # (repro.search), and importing it eagerly here closes an import
    # cycle whenever repro.search is entered before repro.index (the
    # search package's traversal modules read block metadata from this
    # package).  PEP 562 keeps ``from repro.index import SegmentedIndex``
    # working without the eager edge.
    if name in ("MergePolicy", "SegmentedIndex"):
        from repro.index import segments

        return getattr(segments, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
