"""Binary (de)serialization of inverted indexes.

The on-disk format mirrors a classic search index layout: a header, the
document-length table, then the dictionary interleaved with compressed
postings blocks (delta-gapped doc ids, varint-coded).  The analyzer
configuration is stored so a loaded index normalizes queries exactly
like the index that produced it.

Format (all integers varint unless noted)::

    magic    4 bytes  b"RIDX"
    version  1 byte
    flags    1 byte   bit0=lowercase bit1=remove_stopwords bit2=stem
    max_token_length
    checksum 4 bytes  crc32 (little-endian) of the body below  [v2+]
    block_size                                                 [v3+]
    num_documents
    doc_lengths[num_documents]
    num_terms
    repeat num_terms times:
        term_utf8_length, term_utf8_bytes
        postings block (see repro.index.compression.encode_postings)
        repeat ceil(num_postings / block_size) times:          [v3+]
            last_doc_id_delta   (gap from the previous block's last id,
                                 starting from -1)
            block_max_term_frequency
            block_min_doc_length

Version 2 adds the body checksum: every segment read verifies the
postings it parsed against the stored crc32 and raises
:class:`CorruptedIndexError` on mismatch — a flipped bit in a postings
block is detected instead of silently mis-scoring queries (and the
chaos harness relies on exactly this detection).  Version-1 payloads
(no checksum) still load.

Version 3 stores the per-block metadata (block skip pointer, local
max term frequency, local min document length) the Block-Max WAND
traversal prunes with, so a loaded index skips blocks without
re-deriving the maxima.  The block section sits inside the body, so
the v2 crc32 covers it unchanged.  v1/v2 payloads still load — their
indexes derive block metadata lazily on first block-max query.

The default stopword set is assumed; custom stopword sets are not
persisted (raise at save time rather than silently dropping them).

A second format, ``RIXP``, persists a positional index: the postings
block per term is followed by, for each posting, its delta-gapped
position list — enabling phrase queries over a loaded index.  In
version 2 the position section carries its own trailing crc32.
"""

from __future__ import annotations

import io
import zlib
from pathlib import Path
from typing import BinaryIO, List, Union

import numpy as np

from repro.index.blockmax import BlockMetadata
from repro.index.compression import (
    decode_postings,
    decode_varint,
    encode_postings,
    encode_varint,
)
from repro.index.dictionary import TermDictionary
from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingsList
from repro.text.analyzer import Analyzer, AnalyzerConfig
from repro.text.stopwords import DEFAULT_STOPWORDS

_MAGIC = b"RIDX"
_POSITIONAL_MAGIC = b"RIXP"
_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)
_CHECKSUM_BYTES = 4


class CorruptedIndexError(ValueError):
    """A stored index failed its integrity check on read.

    Raised when a version-2 payload's crc32 does not match its body, or
    when corruption makes the body unparseable — the storage-level
    fault the resilience chaos harness injects and expects detected.
    """


def save_index(index: InvertedIndex, path: Union[str, Path]) -> int:
    """Write ``index`` to ``path``; returns the number of bytes written."""
    data = serialize_index(index)
    Path(path).write_bytes(data)
    return len(data)


def load_index(path: Union[str, Path]) -> InvertedIndex:
    """Load an index previously written by :func:`save_index`."""
    return deserialize_index(Path(path).read_bytes())


def serialize_index(index: InvertedIndex, version: int = _VERSION) -> bytes:
    """Serialize ``index`` to bytes in the RIDX format.

    ``version`` selects the on-disk format revision; older revisions
    remain writable so compatibility tests can produce genuine legacy
    payloads (v1: no checksum, v2: checksum, v3: + block metadata).
    """
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported RIDX version {version}")
    config = index.analyzer.config
    if config.remove_stopwords and config.stopwords != DEFAULT_STOPWORDS:
        raise ValueError(
            "custom stopword sets are not persistable; "
            "use the default stopword set or disable stopword removal"
        )
    body = io.BytesIO()
    if version >= 3:
        body.write(encode_varint(index.block_size))
    body.write(encode_varint(index.num_documents))
    for length in index.doc_lengths:
        body.write(encode_varint(int(length)))
    body.write(encode_varint(index.num_terms))
    for term_id in range(index.num_terms):
        term = index.dictionary.term_for_id(term_id)
        term_bytes = term.encode("utf-8")
        body.write(encode_varint(len(term_bytes)))
        body.write(term_bytes)
        body.write(encode_postings(index.postings_for_id(term_id)))
        if version >= 3:
            blocks = index.block_metadata_for_id(term_id)
            previous = -1
            for position in range(blocks.num_blocks):
                last_doc_id = int(blocks.last_doc_ids[position])
                body.write(encode_varint(last_doc_id - previous))
                body.write(encode_varint(int(blocks.max_frequencies[position])))
                body.write(encode_varint(int(blocks.min_doc_lengths[position])))
                previous = last_doc_id
    payload = body.getvalue()

    out = io.BytesIO()
    out.write(_MAGIC)
    out.write(bytes([version]))
    flags = (
        (1 if config.lowercase else 0)
        | (2 if config.remove_stopwords else 0)
        | (4 if config.stem else 0)
    )
    out.write(bytes([flags]))
    out.write(encode_varint(config.max_token_length))
    if version >= 2:
        out.write(zlib.crc32(payload).to_bytes(_CHECKSUM_BYTES, "little"))
    out.write(payload)
    return out.getvalue()


def deserialize_index(data: bytes) -> InvertedIndex:
    """Reconstruct an index from RIDX bytes."""
    index, offset = _deserialize_index_prefix(data)
    if offset != len(data):
        raise ValueError(f"trailing bytes after index: {len(data) - offset}")
    return index


def save_positional_index(positional, path: Union[str, Path]) -> int:
    """Write a positional index to ``path``; returns bytes written."""
    data = serialize_positional_index(positional)
    Path(path).write_bytes(data)
    return len(data)


def load_positional_index(path: Union[str, Path]):
    """Load a positional index written by :func:`save_positional_index`."""
    return deserialize_positional_index(Path(path).read_bytes())


def serialize_positional_index(positional) -> bytes:
    """Serialize a :class:`~repro.index.positional.PositionalIndex`.

    Layout: the plain ``RIDX`` payload with its magic swapped to
    ``RIXP``, followed by, for every term in dictionary order and every
    posting in doc order, the delta-gapped position list (the counts
    are already known from the postings frequencies), then a trailing
    crc32 (little-endian) of the whole position section.
    """
    base = bytearray(serialize_index(positional.index))
    base[:4] = _POSITIONAL_MAGIC
    positions = io.BytesIO()
    index = positional.index
    for term_id in range(index.num_terms):
        term = index.dictionary.term_for_id(term_id)
        postings = positional.positions_for(term)
        for doc_id in postings.doc_ids:
            previous = -1
            for position in postings.positions_in(int(doc_id)):
                positions.write(encode_varint(int(position) - previous - 1))
                previous = int(position)
    section = positions.getvalue()
    out = io.BytesIO()
    out.write(bytes(base))
    out.write(section)
    out.write(zlib.crc32(section).to_bytes(_CHECKSUM_BYTES, "little"))
    return out.getvalue()


def deserialize_positional_index(data: bytes):
    """Reconstruct a positional index from ``RIXP`` bytes."""
    from repro.index.positional import PositionalIndex, PositionalPostings

    if data[:4] != _POSITIONAL_MAGIC:
        raise ValueError("not a RIXP positional index (bad magic)")
    version = data[4]
    # Reuse the plain deserializer on the embedded RIDX payload; it
    # reports where the postings end via its trailing-bytes error, so
    # parse manually up to the index end instead.
    swapped = _MAGIC + data[4:]
    index, offset = _deserialize_index_prefix(swapped)
    positions_start = offset

    positions = {}
    try:
        for term_id in range(index.num_terms):
            term = index.dictionary.term_for_id(term_id)
            postings = index.postings_for_id(term_id)
            per_doc = []
            for frequency in postings.frequencies:
                values = np.empty(int(frequency), dtype=np.int64)
                previous = -1
                for slot in range(int(frequency)):
                    gap, offset = decode_varint(data, offset)
                    value = previous + gap + 1
                    values[slot] = value
                    previous = value
                per_doc.append(values)
            positions[term] = PositionalPostings(postings.doc_ids, per_doc)
    except (ValueError, IndexError, OverflowError) as exc:
        if version < 2:
            raise
        raise CorruptedIndexError(
            f"RIXP position section failed to parse: {exc}"
        ) from exc
    if version >= 2:
        if len(data) < offset + _CHECKSUM_BYTES:
            raise CorruptedIndexError(
                "RIXP payload truncated before position checksum"
            )
        stored = int.from_bytes(
            data[offset : offset + _CHECKSUM_BYTES], "little"
        )
        actual = zlib.crc32(data[positions_start:offset])
        if actual != stored:
            raise CorruptedIndexError(
                f"RIXP position checksum mismatch: "
                f"stored {stored:#010x}, computed {actual:#010x}"
            )
        offset += _CHECKSUM_BYTES
    if offset != len(data):
        raise ValueError(
            f"trailing bytes after positions: {len(data) - offset}"
        )
    return PositionalIndex(index=index, _positions=positions)


def _deserialize_index_prefix(data: bytes):
    """Parse a RIDX payload that may have trailing data.

    Returns ``(index, offset_after_index)``.  Version-2 payloads are
    verified against their stored body checksum; corruption raises
    :class:`CorruptedIndexError` whether it breaks the parse or merely
    perturbs the postings.
    """
    if data[:4] != _MAGIC:
        raise ValueError("not a RIDX index (bad magic)")
    version = data[4]
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported RIDX version {version}")
    flags = data[5]
    offset = 6
    max_token_length, offset = decode_varint(data, offset)
    stored_checksum = None
    if version >= 2:
        if len(data) < offset + _CHECKSUM_BYTES:
            raise CorruptedIndexError("RIDX payload truncated in header")
        stored_checksum = int.from_bytes(
            data[offset : offset + _CHECKSUM_BYTES], "little"
        )
        offset += _CHECKSUM_BYTES
    body_start = offset
    analyzer = Analyzer(
        config=AnalyzerConfig(
            lowercase=bool(flags & 1),
            remove_stopwords=bool(flags & 2),
            stem=bool(flags & 4),
            max_token_length=max_token_length,
        )
    )
    block_size = None
    block_metadata: List[BlockMetadata] = []
    try:
        if version >= 3:
            block_size, offset = decode_varint(data, offset)
            if block_size <= 0:
                raise ValueError(f"invalid block size {block_size}")
        num_documents, offset = decode_varint(data, offset)
        doc_lengths = np.empty(num_documents, dtype=np.int64)
        for index_position in range(num_documents):
            value, offset = decode_varint(data, offset)
            doc_lengths[index_position] = value
        num_terms, offset = decode_varint(data, offset)
        dictionary = TermDictionary()
        postings: List[PostingsList] = []
        for _ in range(num_terms):
            term_length, offset = decode_varint(data, offset)
            term = data[offset : offset + term_length].decode("utf-8")
            offset += term_length
            postings_list, consumed = decode_postings(data[offset:])
            offset += consumed
            dictionary.add(
                term,
                document_frequency=postings_list.document_frequency(),
                collection_frequency=postings_list.collection_frequency(),
            )
            postings.append(postings_list)
            if version >= 3:
                num_blocks = -(-len(postings_list) // block_size)
                last_doc_ids = np.empty(num_blocks, dtype=np.int64)
                max_frequencies = np.empty(num_blocks, dtype=np.int64)
                min_doc_lengths = np.empty(num_blocks, dtype=np.int64)
                previous = -1
                for position in range(num_blocks):
                    gap, offset = decode_varint(data, offset)
                    previous += gap
                    last_doc_ids[position] = previous
                    value, offset = decode_varint(data, offset)
                    max_frequencies[position] = value
                    value, offset = decode_varint(data, offset)
                    min_doc_lengths[position] = value
                block_metadata.append(
                    BlockMetadata(
                        block_size=block_size,
                        last_doc_ids=last_doc_ids,
                        max_frequencies=max_frequencies,
                        min_doc_lengths=min_doc_lengths,
                    )
                )
    except (ValueError, IndexError, OverflowError, UnicodeDecodeError) as exc:
        if stored_checksum is None:
            raise
        # A checksummed payload that cannot even be parsed is corrupt
        # by definition — report it as such, not as a format quirk.
        raise CorruptedIndexError(
            f"RIDX body failed to parse (corrupt payload): {exc}"
        ) from exc
    if stored_checksum is not None:
        actual = zlib.crc32(data[body_start:offset])
        if actual != stored_checksum:
            raise CorruptedIndexError(
                f"RIDX body checksum mismatch: "
                f"stored {stored_checksum:#010x}, computed {actual:#010x}"
            )
    if version >= 3:
        index = InvertedIndex(
            dictionary=dictionary,
            postings=postings,
            doc_lengths=doc_lengths,
            analyzer=analyzer,
            block_metadata=block_metadata,
            block_size=block_size,
        )
    else:
        index = InvertedIndex(
            dictionary=dictionary,
            postings=postings,
            doc_lengths=doc_lengths,
            analyzer=analyzer,
        )
    return (index, offset)
