"""Index statistics for the characterization tables.

The paper's Table-1-style characterization reports collection and index
statistics (documents, terms, postings, posting-length skew, compressed
size).  :func:`compute_statistics` derives them all from an
:class:`~repro.index.inverted.InvertedIndex`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.index.compression import compressed_size, encode_varint
from repro.index.inverted import InvertedIndex

#: Sections of the v3 on-disk layout, in file order.
SECTION_NAMES = (
    "header",
    "doc_lengths",
    "dictionary",
    "postings",
    "block_metadata",
)


@dataclass(frozen=True)
class IndexStatistics:
    """Summary statistics of one inverted index.

    Posting-length percentiles expose the Zipfian skew: with a crawl-like
    corpus the p99 posting length is orders of magnitude above the median,
    which is why some queries are intrinsically far more expensive than
    others.

    ``compressed_sections``, when present, splits the serialized (v3)
    byte count by file section — header, doc-length table, dictionary,
    postings, block metadata — closing the gap where the repo measured
    latency but never bytes: storage cost per shard is now reportable
    alongside service time, and the sections sum to the exact
    ``serialize_index(index, version=3)`` length.
    """

    num_documents: int
    num_terms: int
    total_postings: int
    average_doc_length: float
    mean_posting_length: float
    median_posting_length: float
    p90_posting_length: float
    p99_posting_length: float
    max_posting_length: int
    compressed_size_bytes: int
    compressed_sections: Optional[Dict[str, int]] = None

    def as_rows(self) -> Dict[str, float]:
        """Return the table rows (label -> value) for reporting."""
        rows = {
            "documents": self.num_documents,
            "distinct terms": self.num_terms,
            "total postings": self.total_postings,
            "avg document length (terms)": round(self.average_doc_length, 1),
            "mean posting length": round(self.mean_posting_length, 2),
            "median posting length": self.median_posting_length,
            "p90 posting length": self.p90_posting_length,
            "p99 posting length": self.p99_posting_length,
            "max posting length": self.max_posting_length,
            "compressed index size (bytes)": self.compressed_size_bytes,
        }
        if self.compressed_sections is not None:
            for section in SECTION_NAMES:
                rows[f"compressed {section} (bytes)"] = (
                    self.compressed_sections[section]
                )
            rows["compressed segment total (bytes)"] = sum(
                self.compressed_sections.values()
            )
        return rows


def compressed_section_sizes(index: InvertedIndex) -> Dict[str, int]:
    """Per-section byte sizes of ``index``'s v3 serialized form.

    Mirrors :func:`repro.index.serialization.serialize_index` section by
    section without materializing the payload twice; the values sum to
    exactly ``len(serialize_index(index, version=3))`` (a regression
    test pins this).  Sections:

    - ``header`` — magic, version, flags, max token length, checksum,
      block size;
    - ``doc_lengths`` — document count + per-document length varints;
    - ``dictionary`` — term count + per-term length-prefixed UTF-8;
    - ``postings`` — the compressed (delta-gap varint) postings;
    - ``block_metadata`` — the per-block skip/max-tf/min-dl triples.
    """
    config = index.analyzer.config
    header = (
        4  # magic
        + 1  # version
        + 1  # flags
        + len(encode_varint(config.max_token_length))
        + 4  # crc32 (v2+)
        + len(encode_varint(index.block_size))  # v3
    )
    doc_lengths = len(encode_varint(index.num_documents)) + sum(
        len(encode_varint(int(length))) for length in index.doc_lengths
    )
    dictionary = len(encode_varint(index.num_terms))
    postings = 0
    block_metadata = 0
    for term_id in range(index.num_terms):
        term_bytes = index.dictionary.term_for_id(term_id).encode("utf-8")
        dictionary += len(encode_varint(len(term_bytes))) + len(term_bytes)
        postings += compressed_size(index.postings_for_id(term_id))
        blocks = index.block_metadata_for_id(term_id)
        previous = -1
        for position in range(blocks.num_blocks):
            last_doc_id = int(blocks.last_doc_ids[position])
            block_metadata += len(encode_varint(last_doc_id - previous))
            block_metadata += len(
                encode_varint(int(blocks.max_frequencies[position]))
            )
            block_metadata += len(
                encode_varint(int(blocks.min_doc_lengths[position]))
            )
            previous = last_doc_id
    return {
        "header": header,
        "doc_lengths": doc_lengths,
        "dictionary": dictionary,
        "postings": postings,
        "block_metadata": block_metadata,
    }


def shard_compressed_sizes(partitioned) -> List[Dict[str, int]]:
    """Per-shard section sizes of a partitioned index.

    Accepts anything iterable over shards with an ``index`` attribute
    (:class:`~repro.index.partitioner.PartitionedIndex` included); one
    dict per shard, in shard order — the storage-cost side of the
    partitioning study.
    """
    return [compressed_section_sizes(shard.index) for shard in partitioned]


def compute_statistics(
    index: InvertedIndex,
    include_compressed_size: bool = True,
    include_sections: bool = False,
) -> IndexStatistics:
    """Compute :class:`IndexStatistics` for ``index``.

    ``include_compressed_size=False`` skips the (relatively expensive)
    varint encoding pass and reports 0 for the size.
    ``include_sections=True`` additionally reports the per-section
    serialized sizes (implies a second encoding pass for the
    non-postings sections).
    """
    lengths = np.array(
        [len(postings) for postings in index.all_postings()], dtype=np.int64
    )
    if lengths.size == 0:
        lengths = np.zeros(1, dtype=np.int64)
    size = 0
    if include_compressed_size:
        size = sum(compressed_size(postings) for postings in index.all_postings())
    sections = compressed_section_sizes(index) if include_sections else None
    return IndexStatistics(
        num_documents=index.num_documents,
        num_terms=index.num_terms,
        total_postings=index.total_postings,
        average_doc_length=index.average_doc_length,
        mean_posting_length=float(lengths.mean()),
        median_posting_length=float(np.percentile(lengths, 50)),
        p90_posting_length=float(np.percentile(lengths, 90)),
        p99_posting_length=float(np.percentile(lengths, 99)),
        max_posting_length=int(lengths.max()),
        compressed_size_bytes=size,
        compressed_sections=sections,
    )
