"""Index statistics for the characterization tables.

The paper's Table-1-style characterization reports collection and index
statistics (documents, terms, postings, posting-length skew, compressed
size).  :func:`compute_statistics` derives them all from an
:class:`~repro.index.inverted.InvertedIndex`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.index.compression import compressed_size
from repro.index.inverted import InvertedIndex


@dataclass(frozen=True)
class IndexStatistics:
    """Summary statistics of one inverted index.

    Posting-length percentiles expose the Zipfian skew: with a crawl-like
    corpus the p99 posting length is orders of magnitude above the median,
    which is why some queries are intrinsically far more expensive than
    others.
    """

    num_documents: int
    num_terms: int
    total_postings: int
    average_doc_length: float
    mean_posting_length: float
    median_posting_length: float
    p90_posting_length: float
    p99_posting_length: float
    max_posting_length: int
    compressed_size_bytes: int

    def as_rows(self) -> Dict[str, float]:
        """Return the table rows (label -> value) for reporting."""
        return {
            "documents": self.num_documents,
            "distinct terms": self.num_terms,
            "total postings": self.total_postings,
            "avg document length (terms)": round(self.average_doc_length, 1),
            "mean posting length": round(self.mean_posting_length, 2),
            "median posting length": self.median_posting_length,
            "p90 posting length": self.p90_posting_length,
            "p99 posting length": self.p99_posting_length,
            "max posting length": self.max_posting_length,
            "compressed index size (bytes)": self.compressed_size_bytes,
        }


def compute_statistics(
    index: InvertedIndex, include_compressed_size: bool = True
) -> IndexStatistics:
    """Compute :class:`IndexStatistics` for ``index``.

    ``include_compressed_size=False`` skips the (relatively expensive)
    varint encoding pass and reports 0 for the size.
    """
    lengths = np.array(
        [len(postings) for postings in index.all_postings()], dtype=np.int64
    )
    if lengths.size == 0:
        lengths = np.zeros(1, dtype=np.int64)
    size = 0
    if include_compressed_size:
        size = sum(compressed_size(postings) for postings in index.all_postings())
    return IndexStatistics(
        num_documents=index.num_documents,
        num_terms=index.num_terms,
        total_postings=index.total_postings,
        average_doc_length=index.average_doc_length,
        mean_posting_length=float(lengths.mean()),
        median_posting_length=float(np.percentile(lengths, 50)),
        p90_posting_length=float(np.percentile(lengths, 90)),
        p99_posting_length=float(np.percentile(lengths, 99)),
        max_posting_length=int(lengths.max()),
        compressed_size_bytes=size,
    )
