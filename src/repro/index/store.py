"""Tiered, larger-than-RAM index storage (Airphant direction).

The benchmark so far keeps every shard index fully resident; the paper
shows index residency drives service time, and the ROADMAP's next step
is serving an index **larger than RAM**.  This module provides the
storage layer for that: postings live in a *segment* — in memory, in a
file, or behind a model of an object store — cut into fixed-size
**blocks** (the same blocks the Block-Max WAND metadata describes), and
are paged in block-at-a-time through an admission-controlled cache.

Layers, bottom up:

- :class:`BlockStore` — the raw byte store: :class:`InMemoryBlockStore`
  (dict-backed), :class:`FileBlockStore` (byte-range reads from one
  segment file), and :class:`SlowStore` (a seedable wrapper modeling
  object-store latency and faults — the chaos knob for the fetch path).
- :class:`BlockCache` — a byte-budgeted cache with **single-flight**
  fetch deduplication (many threads asking for the same cold block
  perform exactly one underlying fetch) and **TinyLFU-style admission**
  (a frequency sketch decides whether a newcomer may displace the LRU
  victim, so one cold scan cannot flush the hot set).
- :class:`TieredIndex` — duck-types
  :class:`~repro.index.inverted.InvertedIndex`: the dictionary, the
  document-length table, and the per-block metadata stay resident (they
  are the "shallow" data Block-Max WAND steers with), while postings
  blocks are fetched on demand.  Exhaustive/WAND traversal materializes
  a term's blocks through the cache; Block-Max WAND pages in **only the
  blocks it descends into** (see
  :mod:`repro.search.block_max_wand`'s paged cursor).

Paging is an engineering change, never a ranking change: the property
suite asserts tiered search is bit-identical — doc ids *and* float
scores — to fully-resident search under every cache budget, including
budgets too small to hold a single block.

On-disk segment format (``RTIX`` version 1, all ints varint unless
noted)::

    magic    4 bytes  b"RTIX"
    version  1 byte
    flags    1 byte   bit0=lowercase bit1=remove_stopwords bit2=stem
    max_token_length
    header_length                 (bytes of the header body below)
    header_crc  4 bytes crc32 LE  (of the header body)
    header body:
        block_size
        num_documents, doc_lengths[num_documents]
        num_terms
        repeat num_terms times:
            term_utf8_length, term_utf8_bytes
            collection_frequency
            num_postings
            repeat ceil(num_postings / block_size) times:
                first_doc_id_delta   (gap from previous block's first, -1 start)
                last_minus_first     (last_doc_id - first_doc_id)
                block_max_term_frequency
                block_min_doc_length
                block_byte_length
    block payloads, concatenated in (term, block) order; each payload:
        crc32  4 bytes LE  (of the encoded postings below)
        first_doc_id, then per posting: doc_id_gap_minus_1 (except the
        first), term_frequency

Every block payload is independently decodable (its first doc id is
absolute) and independently checksummed, so a flipped bit in a paged-in
block raises :class:`BlockIntegrityError` instead of mis-scoring.
"""

from __future__ import annotations

import io
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from repro.index.blockmax import BlockMetadata
from repro.index.compression import decode_varint, encode_varint
from repro.index.dictionary import TermDictionary, TermInfo
from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingsList
from repro.index.serialization import CorruptedIndexError
from repro.text.analyzer import Analyzer, AnalyzerConfig
from repro.text.stopwords import DEFAULT_STOPWORDS

__all__ = [
    "StoreError",
    "BlockNotFoundError",
    "TruncatedSegmentError",
    "StoreTimeoutError",
    "BlockIntegrityError",
    "BlockKey",
    "BlockStore",
    "InMemoryBlockStore",
    "FileBlockStore",
    "SlowStore",
    "BlockCache",
    "CacheSnapshot",
    "FrequencySketch",
    "TieredIndex",
    "TieredPostings",
    "TieredStorageConfig",
    "build_block_map",
    "tier_index",
    "tier_partitioned_index",
    "write_tiered_segment",
    "open_tiered_index",
    "encode_postings_block",
    "decode_postings_block",
]

_MAGIC = b"RTIX"
_VERSION = 1
_CHECKSUM_BYTES = 4


# ---------------------------------------------------------------------------
# typed fetch-path errors


class StoreError(RuntimeError):
    """Base class for block-store fetch failures.

    Store errors raised while a shard search pages blocks in propagate
    out of the shard attempt, where the resilient fan-out treats them
    like any other shard failure: the attempt is retried, the shard's
    circuit breaker records the failure, and an undecidable shard drops
    from the merge (coverage degrades) — never a wrong result.
    """


class BlockNotFoundError(StoreError, KeyError):
    """The requested block does not exist in the store."""


class TruncatedSegmentError(StoreError):
    """A byte-range read ran off the end of the segment file."""


class StoreTimeoutError(StoreError, TimeoutError):
    """A (modeled) object-store fetch exceeded its deadline."""


class BlockIntegrityError(StoreError, CorruptedIndexError):
    """A paged-in block failed its crc32 integrity check."""


class BlockKey(NamedTuple):
    """Address of one postings block: dense term id + block ordinal."""

    term_id: int
    block: int


# ---------------------------------------------------------------------------
# block stores


class BlockStore:
    """Abstract byte store addressed by :class:`BlockKey`."""

    def read(self, key: BlockKey) -> bytes:
        """Return the raw bytes of ``key``'s block.

        Raises a :class:`StoreError` subclass on any fetch failure.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (optional)."""


class InMemoryBlockStore(BlockStore):
    """A dict-backed store — the fully-RAM-resident baseline tier."""

    def __init__(self, blocks: Dict[BlockKey, bytes]):
        self._blocks = dict(blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def total_bytes(self) -> int:
        """Sum of all block payload sizes."""
        return sum(len(payload) for payload in self._blocks.values())

    def read(self, key: BlockKey) -> bytes:
        payload = self._blocks.get(key)
        if payload is None:
            raise BlockNotFoundError(f"no block {key} in store")
        return payload


class FileBlockStore(BlockStore):
    """Byte-range reads from one on-disk segment file.

    ``toc`` maps each block to its ``(offset, length)`` within the
    file.  A short read — the segment was truncated after the header
    was written, the classic partial-upload failure — raises
    :class:`TruncatedSegmentError`.
    """

    def __init__(self, path: Union[str, Path], toc: Dict[BlockKey, Tuple[int, int]]):
        self.path = Path(path)
        self._toc = dict(toc)
        self._handle = open(self.path, "rb")
        self._lock = threading.Lock()

    def read(self, key: BlockKey) -> bytes:
        entry = self._toc.get(key)
        if entry is None:
            raise BlockNotFoundError(f"no block {key} in segment TOC")
        offset, length = entry
        with self._lock:
            self._handle.seek(offset)
            payload = self._handle.read(length)
        if len(payload) != length:
            raise TruncatedSegmentError(
                f"segment {self.path} truncated: block {key} wants "
                f"[{offset}, {offset + length}) but only "
                f"{offset + len(payload)} bytes exist"
            )
        return payload

    def close(self) -> None:
        self._handle.close()


class SlowStore(BlockStore):
    """Wrap a store with object-store latency and seedable faults.

    Parameters
    ----------
    inner:
        The store actually holding the bytes.
    latency_s:
        Fixed per-fetch latency (first-byte latency of a remote GET).
    per_byte_latency_s:
        Additional latency per payload byte (bandwidth term).
    timeout_rate:
        Probability that a fetch times out instead of returning —
        raised as :class:`StoreTimeoutError`.  Draws come from a
        dedicated ``numpy`` generator so a seed reproduces the exact
        fault sequence.
    seed:
        Seed of the fault stream.
    """

    def __init__(
        self,
        inner: BlockStore,
        latency_s: float = 0.0,
        per_byte_latency_s: float = 0.0,
        timeout_rate: float = 0.0,
        seed: int = 0,
    ):
        if latency_s < 0 or per_byte_latency_s < 0:
            raise ValueError("latencies must be non-negative")
        if not 0.0 <= timeout_rate <= 1.0:
            raise ValueError(f"timeout_rate must be in [0, 1], got {timeout_rate}")
        self.inner = inner
        self.latency_s = latency_s
        self.per_byte_latency_s = per_byte_latency_s
        self.timeout_rate = timeout_rate
        self._rng = np.random.default_rng(seed)
        self._rng_lock = threading.Lock()

    def _times_out(self) -> bool:
        if self.timeout_rate <= 0.0:
            return False
        with self._rng_lock:
            return bool(self._rng.random() < self.timeout_rate)

    def read(self, key: BlockKey) -> bytes:
        if self._times_out():
            raise StoreTimeoutError(f"fetch of block {key} timed out")
        payload = self.inner.read(key)
        delay = self.latency_s + self.per_byte_latency_s * len(payload)
        if delay > 0.0:
            time.sleep(delay)
        return payload

    def close(self) -> None:
        self.inner.close()


# ---------------------------------------------------------------------------
# TinyLFU-style admission sketch


class FrequencySketch:
    """A tiny count-min sketch with periodic aging (TinyLFU's core).

    Four hash rows of saturating 8-bit counters estimate how often each
    key has been requested; after ``sample_size`` recorded accesses all
    counters are halved, so the estimate tracks *recent* popularity.
    Callers must synchronize access (the :class:`BlockCache` records
    under its own lock).
    """

    _SALTS = (0x9E3779B1, 0x85EBCA77, 0xC2B2AE3D, 0x27D4EB2F)
    _MAX_COUNT = 255

    def __init__(self, width: int = 1024, sample_size: Optional[int] = None):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self._width = width
        self._rows = np.zeros((len(self._SALTS), width), dtype=np.uint16)
        self._sample_size = sample_size if sample_size is not None else 8 * width
        self._observed = 0

    def _columns(self, key) -> List[int]:
        payload = repr(key).encode("utf-8")
        return [
            zlib.crc32(payload, salt) % self._width for salt in self._SALTS
        ]

    def record(self, key) -> None:
        """Count one access to ``key`` (ages the sketch as needed)."""
        for row, column in enumerate(self._columns(key)):
            if self._rows[row, column] < self._MAX_COUNT:
                self._rows[row, column] += 1
        self._observed += 1
        if self._observed >= self._sample_size:
            self._rows >>= 1
            self._observed //= 2

    def estimate(self, key) -> int:
        """Estimated access count of ``key`` (an upper bound)."""
        return int(
            min(
                self._rows[row, column]
                for row, column in enumerate(self._columns(key))
            )
        )


# ---------------------------------------------------------------------------
# the admission-controlled block cache


@dataclass(frozen=True)
class CacheSnapshot:
    """A point-in-time copy of a :class:`BlockCache`'s counters.

    ``blocks_fetched``/``bytes_read`` count **underlying store reads**
    — single-flight waiters share one fetch, so under contention these
    stay below the miss count.  ``admission_rejects`` counts fetched
    blocks the TinyLFU filter refused to cache.
    """

    block_hits: int = 0
    block_misses: int = 0
    blocks_fetched: int = 0
    bytes_read: int = 0
    admission_rejects: int = 0
    evictions: int = 0
    bytes_cached: int = 0

    def delta(self, earlier: "CacheSnapshot") -> "CacheSnapshot":
        """Counter movement since ``earlier`` (bytes_cached is absolute)."""
        return CacheSnapshot(
            block_hits=self.block_hits - earlier.block_hits,
            block_misses=self.block_misses - earlier.block_misses,
            blocks_fetched=self.blocks_fetched - earlier.blocks_fetched,
            bytes_read=self.bytes_read - earlier.bytes_read,
            admission_rejects=self.admission_rejects - earlier.admission_rejects,
            evictions=self.evictions - earlier.evictions,
            bytes_cached=self.bytes_cached,
        )


class _Flight:
    """One in-flight fetch: waiters block on the event, leader fills it."""

    __slots__ = ("event", "value", "size", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.size = 0
        self.error: Optional[BaseException] = None


class BlockCache:
    """Byte-budgeted block cache with single-flight and TinyLFU admission.

    The cache sits **under** the engine's existing thread-safe result
    LRU: the result cache answers whole repeated queries, this one
    keeps hot *postings blocks* resident so cold queries over a
    larger-than-RAM index stay cheap.

    Parameters
    ----------
    budget_bytes:
        Total bytes of cached values allowed (0 disables caching — every
        ``get`` fetches, which must still be *correct*, just slow).
    loader:
        ``loader(key) -> (value, size_bytes)`` performs the underlying
        fetch (store read + integrity check + decode).  Called outside
        the cache lock, and — per key — by exactly one thread at a time
        no matter how many are waiting (single-flight).
    admission:
        Enable the TinyLFU filter.  Off, the cache is a plain
        byte-budget LRU.
    sketch_width:
        Width of the admission frequency sketch.
    metrics:
        Optional registry mirroring the counters as ``store.*`` /
        ``cache.*`` series.

    A value larger than the whole budget is returned to the caller but
    never cached (and never counted as an admission reject — no policy
    could have admitted it).
    """

    def __init__(
        self,
        budget_bytes: int,
        loader: Callable[[BlockKey], Tuple[object, int]],
        admission: bool = True,
        sketch_width: int = 1024,
        metrics=None,
    ):
        if budget_bytes < 0:
            raise ValueError(f"budget_bytes must be >= 0, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self._loader = loader
        self._admission = admission
        self._sketch = FrequencySketch(width=sketch_width)
        self._metrics = metrics
        self._lock = threading.Lock()
        # Python dicts preserve insertion order; entries are re-inserted
        # on touch, so the first key is always the LRU victim.
        self._entries: "Dict[BlockKey, Tuple[object, int]]" = {}
        self._flights: Dict[BlockKey, _Flight] = {}
        self._hits = 0
        self._misses = 0
        self._fetched = 0
        self._bytes_read = 0
        self._rejects = 0
        self._evictions = 0
        self._bytes_cached = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: BlockKey) -> bool:
        with self._lock:
            return key in self._entries

    def snapshot(self) -> CacheSnapshot:
        """Copy the counters atomically."""
        with self._lock:
            return CacheSnapshot(
                block_hits=self._hits,
                block_misses=self._misses,
                blocks_fetched=self._fetched,
                bytes_read=self._bytes_read,
                admission_rejects=self._rejects,
                evictions=self._evictions,
                bytes_cached=self._bytes_cached,
            )

    def clear(self) -> None:
        """Drop all cached entries (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes_cached = 0

    def get(self, key: BlockKey):
        """Return ``key``'s value, fetching through the loader on a miss.

        Loader failures propagate to **every** waiter of that flight
        (each raises the leader's exception) and cache nothing, so a
        transient store fault never poisons the cache.
        """
        with self._lock:
            self._sketch.record(key)
            entry = self._entries.get(key)
            if entry is not None:
                # Touch: re-insert to refresh LRU position.
                del self._entries[key]
                self._entries[key] = entry
                self._hits += 1
                if self._metrics is not None:
                    self._metrics.counter("cache.block_hits").add()
                return entry[0]
            self._misses += 1
            if self._metrics is not None:
                self._metrics.counter("cache.block_misses").add()
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
            else:
                leader = False
        if not leader:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value
        try:
            value, size = self._loader(key)
        except BaseException as exc:
            with self._lock:
                del self._flights[key]
            flight.error = exc
            flight.event.set()
            raise
        with self._lock:
            self._fetched += 1
            self._bytes_read += int(size)
            if self._metrics is not None:
                self._metrics.counter("store.blocks_fetched").add()
                self._metrics.counter("store.bytes_read").add(int(size))
            self._maybe_admit(key, value, int(size))
            del self._flights[key]
        flight.value = value
        flight.size = size
        flight.event.set()
        return value

    def _maybe_admit(self, key: BlockKey, value, size: int) -> None:
        """Decide (under the lock) whether the fetched value is cached."""
        if size > self.budget_bytes:
            return  # can never fit; bypass silently
        while self._bytes_cached + size > self.budget_bytes:
            victim = next(iter(self._entries))
            if self._admission and self._sketch.estimate(
                key
            ) < self._sketch.estimate(victim):
                # The newcomer is colder than the coldest resident:
                # keep the resident set intact (scan resistance).
                self._rejects += 1
                if self._metrics is not None:
                    self._metrics.counter("cache.admission_rejects").add()
                return
            _, victim_size = self._entries.pop(victim)
            self._bytes_cached -= victim_size
            self._evictions += 1
            if self._metrics is not None:
                self._metrics.counter("cache.block_evictions").add()
        self._entries[key] = (value, size)
        self._bytes_cached += size
        if self._metrics is not None:
            self._metrics.gauge("cache.bytes_cached").set(
                float(self._bytes_cached)
            )


# ---------------------------------------------------------------------------
# block payload codec


def encode_postings_block(
    doc_ids: np.ndarray, frequencies: np.ndarray
) -> bytes:
    """Encode one postings block: crc32, absolute first id, then gaps.

    Unlike :func:`repro.index.compression.encode_postings`, the block's
    first doc id is stored absolutely so every block decodes without
    its predecessors — the property random paging depends on.
    """
    body = io.BytesIO()
    previous: Optional[int] = None
    for doc_id, frequency in zip(doc_ids, frequencies):
        if previous is None:
            body.write(encode_varint(int(doc_id)))
        else:
            body.write(encode_varint(int(doc_id) - previous - 1))
        body.write(encode_varint(int(frequency)))
        previous = int(doc_id)
    payload = body.getvalue()
    return zlib.crc32(payload).to_bytes(_CHECKSUM_BYTES, "little") + payload


def decode_postings_block(
    data: bytes, count: int, key: Optional[BlockKey] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Decode one block of ``count`` postings; verifies the crc32.

    Returns ``(doc_ids, frequencies)`` int64 arrays.  Corruption —
    checksum mismatch, short payload, trailing bytes — raises
    :class:`BlockIntegrityError`.
    """
    label = f"block {key}" if key is not None else "block"
    if len(data) < _CHECKSUM_BYTES:
        raise BlockIntegrityError(f"{label} shorter than its checksum")
    stored = int.from_bytes(data[:_CHECKSUM_BYTES], "little")
    payload = data[_CHECKSUM_BYTES:]
    actual = zlib.crc32(payload)
    if actual != stored:
        raise BlockIntegrityError(
            f"{label} checksum mismatch: stored {stored:#010x}, "
            f"computed {actual:#010x}"
        )
    doc_ids = np.empty(count, dtype=np.int64)
    frequencies = np.empty(count, dtype=np.int64)
    offset = 0
    previous: Optional[int] = None
    try:
        for position in range(count):
            gap, offset = decode_varint(payload, offset)
            doc_id = gap if previous is None else previous + gap + 1
            frequency, offset = decode_varint(payload, offset)
            doc_ids[position] = doc_id
            frequencies[position] = frequency
            previous = doc_id
    except ValueError as exc:
        raise BlockIntegrityError(f"{label} failed to parse: {exc}") from exc
    if offset != len(payload):
        raise BlockIntegrityError(
            f"{label} has {len(payload) - offset} trailing bytes"
        )
    return doc_ids, frequencies


# ---------------------------------------------------------------------------
# resident per-term metadata + the tiered index


@dataclass(frozen=True)
class _TermBlocks:
    """Resident metadata of one term's paged postings.

    Everything Block-Max WAND consults *shallowly* lives here: skip
    pointers (first/last doc id per block), score-bound ingredients,
    and the byte length of each block (for budget math).
    """

    num_postings: int
    collection_frequency: int
    first_doc_ids: np.ndarray
    block_lengths: np.ndarray
    metadata: BlockMetadata

    @property
    def num_blocks(self) -> int:
        return int(self.first_doc_ids.size)

    def block_count(self, block: int) -> int:
        """Number of postings in ``block`` (the last may be short)."""
        size = self.metadata.block_size
        return min(size, self.num_postings - block * size)


class TieredPostings:
    """Block-at-a-time view of one term's postings.

    ``block(i)`` pages in (through the cache) and returns the decoded
    ``(doc_ids, frequencies)`` arrays of block ``i``;
    ``materialize()`` assembles the full
    :class:`~repro.index.postings.PostingsList` (what exhaustive
    traversals consume).
    """

    __slots__ = ("info", "_fetch")

    def __init__(self, info: _TermBlocks, fetch):
        self.info = info
        self._fetch = fetch

    def __len__(self) -> int:
        return self.info.num_postings

    @property
    def num_blocks(self) -> int:
        return self.info.num_blocks

    def block(self, block: int) -> Tuple[np.ndarray, np.ndarray]:
        """Decoded arrays of one block (paged in on first touch)."""
        return self._fetch(block)

    def materialize(self) -> PostingsList:
        """Assemble the full postings list (pages in every block)."""
        if self.info.num_postings == 0:
            return PostingsList.empty()
        parts = [self.block(i) for i in range(self.info.num_blocks)]
        return PostingsList(
            np.concatenate([doc_ids for doc_ids, _ in parts]),
            np.concatenate([frequencies for _, frequencies in parts]),
        )


class TieredIndex:
    """An inverted index whose postings live in a :class:`BlockStore`.

    Duck-types :class:`~repro.index.inverted.InvertedIndex`: the term
    dictionary, document lengths, analyzer, and per-block metadata are
    resident; :meth:`postings_for_id` pages a term's blocks in through
    the :class:`BlockCache` and concatenates them.  Block-Max WAND
    recognizes :meth:`tiered_postings_for_id` and pages **only** the
    blocks it descends into.

    Build one with :func:`tier_index` (from a resident index) or
    :func:`open_tiered_index` (from a segment file).
    """

    is_tiered = True

    def __init__(
        self,
        dictionary: TermDictionary,
        terms: List[_TermBlocks],
        doc_lengths: np.ndarray,
        analyzer: Analyzer,
        block_size: int,
        store: BlockStore,
        cache: BlockCache,
    ):
        if len(dictionary) != len(terms):
            raise ValueError(
                f"dictionary has {len(dictionary)} terms but "
                f"{len(terms)} tiered term entries were given"
            )
        self.dictionary = dictionary
        self._terms = terms
        self.doc_lengths = np.asarray(doc_lengths, dtype=np.int64)
        self.analyzer = analyzer
        self.block_size = int(block_size)
        self.store = store
        self.cache = cache

    # -- resident statistics (identical to InvertedIndex) ---------------

    @property
    def num_documents(self) -> int:
        return int(self.doc_lengths.size)

    @property
    def num_terms(self) -> int:
        return len(self.dictionary)

    @property
    def total_postings(self) -> int:
        return sum(info.num_postings for info in self._terms)

    @property
    def average_doc_length(self) -> float:
        if self.doc_lengths.size == 0:
            return 0.0
        return float(self.doc_lengths.mean())

    @property
    def total_block_bytes(self) -> int:
        """Total bytes of all postings blocks (the pageable set)."""
        return int(
            sum(int(info.block_lengths.sum()) for info in self._terms)
        )

    def term_info(self, term: str) -> Optional[TermInfo]:
        return self.dictionary.lookup(term)

    def document_frequency(self, term: str) -> int:
        info = self.dictionary.lookup(term)
        return info.document_frequency if info else 0

    def doc_length(self, doc_id: int) -> int:
        return int(self.doc_lengths[doc_id])

    def matched_postings_volume(self, terms: List[str]) -> int:
        return sum(self.document_frequency(term) for term in terms)

    def block_metadata_for_id(self, term_id: int) -> BlockMetadata:
        return self._terms[term_id].metadata

    def block_metadata_for(self, term: str) -> Optional[BlockMetadata]:
        info = self.dictionary.lookup(term)
        if info is None:
            return None
        return self.block_metadata_for_id(info.term_id)

    # -- paged postings access ------------------------------------------

    def tiered_postings_for_id(self, term_id: int) -> TieredPostings:
        """Block-at-a-time view of one term (the paged BMW entry point)."""
        info = self._terms[term_id]

        def fetch(block: int) -> Tuple[np.ndarray, np.ndarray]:
            return self.cache.get(BlockKey(term_id, block))

        return TieredPostings(info, fetch)

    def postings_for_id(self, term_id: int) -> PostingsList:
        """Full postings of a term — pages in every block."""
        return self.tiered_postings_for_id(term_id).materialize()

    def postings_for(self, term: str) -> PostingsList:
        info = self.dictionary.lookup(term)
        if info is None:
            return PostingsList.empty()
        return self.postings_for_id(info.term_id)

    def all_postings(self) -> List[PostingsList]:
        """Materialize every term (defeats tiering; statistics only)."""
        return [
            self.postings_for_id(term_id)
            for term_id in range(self.num_terms)
        ]

    # -- observability ---------------------------------------------------

    def store_stats(self) -> CacheSnapshot:
        """Current paging counters (hits/misses/fetches/bytes)."""
        return self.cache.snapshot()


# ---------------------------------------------------------------------------
# building / persisting tiered segments


def _term_blocks_from_index(
    index: InvertedIndex, term_id: int
) -> Tuple[_TermBlocks, List[bytes]]:
    """Cut one term's postings into encoded blocks + resident metadata."""
    postings = index.postings_for_id(term_id)
    metadata = index.block_metadata_for_id(term_id)
    block_size = index.block_size
    doc_ids = postings.doc_ids
    frequencies = postings.frequencies
    payloads: List[bytes] = []
    first_doc_ids = np.empty(metadata.num_blocks, dtype=np.int64)
    for block in range(metadata.num_blocks):
        start = block * block_size
        end = min(start + block_size, len(postings))
        first_doc_ids[block] = doc_ids[start] if end > start else -1
        payloads.append(
            encode_postings_block(doc_ids[start:end], frequencies[start:end])
        )
    info = _TermBlocks(
        num_postings=len(postings),
        collection_frequency=postings.collection_frequency(),
        first_doc_ids=first_doc_ids,
        block_lengths=np.array(
            [len(payload) for payload in payloads], dtype=np.int64
        ),
        metadata=metadata,
    )
    return info, payloads


def build_block_map(
    index: InvertedIndex,
) -> Tuple[List[_TermBlocks], Dict[BlockKey, bytes]]:
    """Cut every term of ``index`` into independently-decodable blocks.

    Returns the resident per-term metadata and the block payload map an
    :class:`InMemoryBlockStore` serves.
    """
    terms: List[_TermBlocks] = []
    blocks: Dict[BlockKey, bytes] = {}
    for term_id in range(index.num_terms):
        info, payloads = _term_blocks_from_index(index, term_id)
        terms.append(info)
        for block, payload in enumerate(payloads):
            blocks[BlockKey(term_id, block)] = payload
    return terms, blocks


def _copy_dictionary(index) -> TermDictionary:
    dictionary = TermDictionary()
    for term_id in range(index.num_terms):
        term = index.dictionary.term_for_id(term_id)
        info = index.dictionary.lookup(term)
        dictionary.add(
            term,
            document_frequency=info.document_frequency,
            collection_frequency=info.collection_frequency,
        )
    return dictionary


def tier_index(
    index: InvertedIndex,
    cache_budget_bytes: int,
    admission: bool = True,
    store_wrapper: Optional[Callable[[BlockStore], BlockStore]] = None,
    metrics=None,
) -> TieredIndex:
    """Re-home a resident index onto an in-memory block store + cache.

    ``store_wrapper`` (e.g. ``lambda s: SlowStore(s, latency_s=1e-4)``)
    interposes latency/fault modeling between the cache and the bytes.
    The returned index answers every query bit-identically to ``index``.
    """
    terms, blocks = build_block_map(index)
    store: BlockStore = InMemoryBlockStore(blocks)
    if store_wrapper is not None:
        store = store_wrapper(store)
    return _assemble_tiered(
        dictionary=_copy_dictionary(index),
        terms=terms,
        doc_lengths=index.doc_lengths,
        analyzer=index.analyzer,
        block_size=index.block_size,
        store=store,
        cache_budget_bytes=cache_budget_bytes,
        admission=admission,
        metrics=metrics,
    )


def _assemble_tiered(
    dictionary: TermDictionary,
    terms: List[_TermBlocks],
    doc_lengths: np.ndarray,
    analyzer: Analyzer,
    block_size: int,
    store: BlockStore,
    cache_budget_bytes: int,
    admission: bool,
    metrics,
) -> TieredIndex:
    def loader(key: BlockKey):
        info = terms[key.term_id]
        payload = store.read(key)
        doc_ids, frequencies = decode_postings_block(
            payload, info.block_count(key.block), key
        )
        if int(doc_ids[-1]) != int(info.metadata.last_doc_ids[key.block]):
            raise BlockIntegrityError(
                f"block {key} decoded to last doc id {int(doc_ids[-1])} "
                f"but the TOC says "
                f"{int(info.metadata.last_doc_ids[key.block])}"
            )
        return (doc_ids, frequencies), len(payload)

    cache = BlockCache(
        budget_bytes=cache_budget_bytes,
        loader=loader,
        admission=admission,
        metrics=metrics,
    )
    return TieredIndex(
        dictionary=dictionary,
        terms=terms,
        doc_lengths=doc_lengths,
        analyzer=analyzer,
        block_size=block_size,
        store=store,
        cache=cache,
    )


def write_tiered_segment(
    index: InvertedIndex, path: Union[str, Path]
) -> int:
    """Write ``index`` to ``path`` in the RTIX tiered-segment format.

    Returns the number of bytes written.  Like the RIDX serializer,
    custom stopword sets are not persistable.
    """
    config = index.analyzer.config
    if config.remove_stopwords and config.stopwords != DEFAULT_STOPWORDS:
        raise ValueError(
            "custom stopword sets are not persistable; "
            "use the default stopword set or disable stopword removal"
        )
    header = io.BytesIO()
    header.write(encode_varint(index.block_size))
    header.write(encode_varint(index.num_documents))
    for length in index.doc_lengths:
        header.write(encode_varint(int(length)))
    header.write(encode_varint(index.num_terms))
    payload_stream = io.BytesIO()
    for term_id in range(index.num_terms):
        info, payloads = _term_blocks_from_index(index, term_id)
        term_bytes = index.dictionary.term_for_id(term_id).encode("utf-8")
        header.write(encode_varint(len(term_bytes)))
        header.write(term_bytes)
        header.write(encode_varint(info.collection_frequency))
        header.write(encode_varint(info.num_postings))
        previous_first = -1
        for block in range(info.num_blocks):
            first = int(info.first_doc_ids[block])
            last = int(info.metadata.last_doc_ids[block])
            header.write(encode_varint(first - previous_first))
            header.write(encode_varint(last - first))
            header.write(
                encode_varint(int(info.metadata.max_frequencies[block]))
            )
            header.write(
                encode_varint(int(info.metadata.min_doc_lengths[block]))
            )
            header.write(encode_varint(int(info.block_lengths[block])))
            previous_first = first
            payload_stream.write(payloads[block])
    body = header.getvalue()

    out = io.BytesIO()
    out.write(_MAGIC)
    out.write(bytes([_VERSION]))
    flags = (
        (1 if config.lowercase else 0)
        | (2 if config.remove_stopwords else 0)
        | (4 if config.stem else 0)
    )
    out.write(bytes([flags]))
    out.write(encode_varint(config.max_token_length))
    out.write(encode_varint(len(body)))
    out.write(zlib.crc32(body).to_bytes(_CHECKSUM_BYTES, "little"))
    out.write(body)
    out.write(payload_stream.getvalue())
    data = out.getvalue()
    Path(path).write_bytes(data)
    return len(data)


def open_tiered_index(
    path: Union[str, Path],
    cache_budget_bytes: int,
    admission: bool = True,
    store_wrapper: Optional[Callable[[BlockStore], BlockStore]] = None,
    metrics=None,
) -> TieredIndex:
    """Open an RTIX segment for block-at-a-time serving.

    Only the header (dictionary, doc lengths, per-block metadata) is
    read eagerly; postings blocks are fetched by byte range on demand.
    Header corruption raises :class:`CorruptedIndexError`; a header
    that ends before its declared length raises
    :class:`TruncatedSegmentError`.
    """
    path = Path(path)
    data = path.read_bytes()
    if data[:4] != _MAGIC:
        raise ValueError("not an RTIX tiered segment (bad magic)")
    if data[4] != _VERSION:
        raise ValueError(f"unsupported RTIX version {data[4]}")
    flags = data[5]
    offset = 6
    max_token_length, offset = decode_varint(data, offset)
    header_length, offset = decode_varint(data, offset)
    if len(data) < offset + _CHECKSUM_BYTES:
        raise TruncatedSegmentError(
            f"segment {path} truncated inside its header checksum"
        )
    stored = int.from_bytes(data[offset : offset + _CHECKSUM_BYTES], "little")
    offset += _CHECKSUM_BYTES
    if len(data) < offset + header_length:
        raise TruncatedSegmentError(
            f"segment {path} truncated: header wants {header_length} bytes, "
            f"{len(data) - offset} remain"
        )
    body = data[offset : offset + header_length]
    if zlib.crc32(body) != stored:
        raise CorruptedIndexError(
            f"RTIX header checksum mismatch in {path}"
        )
    analyzer = Analyzer(
        config=AnalyzerConfig(
            lowercase=bool(flags & 1),
            remove_stopwords=bool(flags & 2),
            stem=bool(flags & 4),
            max_token_length=max_token_length,
        )
    )
    blocks_start = offset + header_length

    cursor = 0
    try:
        block_size, cursor = decode_varint(body, cursor)
        num_documents, cursor = decode_varint(body, cursor)
        doc_lengths = np.empty(num_documents, dtype=np.int64)
        for position in range(num_documents):
            value, cursor = decode_varint(body, cursor)
            doc_lengths[position] = value
        num_terms, cursor = decode_varint(body, cursor)
        dictionary = TermDictionary()
        terms: List[_TermBlocks] = []
        toc: Dict[BlockKey, Tuple[int, int]] = {}
        payload_offset = blocks_start
        for term_id in range(num_terms):
            term_length, cursor = decode_varint(body, cursor)
            term = body[cursor : cursor + term_length].decode("utf-8")
            cursor += term_length
            collection_frequency, cursor = decode_varint(body, cursor)
            num_postings, cursor = decode_varint(body, cursor)
            num_blocks = -(-num_postings // block_size)
            first_doc_ids = np.empty(num_blocks, dtype=np.int64)
            last_doc_ids = np.empty(num_blocks, dtype=np.int64)
            max_frequencies = np.empty(num_blocks, dtype=np.int64)
            min_doc_lengths = np.empty(num_blocks, dtype=np.int64)
            block_lengths = np.empty(num_blocks, dtype=np.int64)
            previous_first = -1
            for block in range(num_blocks):
                gap, cursor = decode_varint(body, cursor)
                first = previous_first + gap
                span, cursor = decode_varint(body, cursor)
                value, cursor = decode_varint(body, cursor)
                max_frequencies[block] = value
                value, cursor = decode_varint(body, cursor)
                min_doc_lengths[block] = value
                length, cursor = decode_varint(body, cursor)
                first_doc_ids[block] = first
                last_doc_ids[block] = first + span
                block_lengths[block] = length
                toc[BlockKey(term_id, block)] = (payload_offset, length)
                payload_offset += length
                previous_first = first
            dictionary.add(
                term,
                document_frequency=num_postings,
                collection_frequency=collection_frequency,
            )
            terms.append(
                _TermBlocks(
                    num_postings=num_postings,
                    collection_frequency=collection_frequency,
                    first_doc_ids=first_doc_ids,
                    block_lengths=block_lengths,
                    metadata=BlockMetadata(
                        block_size=block_size,
                        last_doc_ids=last_doc_ids,
                        max_frequencies=max_frequencies,
                        min_doc_lengths=min_doc_lengths,
                    ),
                )
            )
    except (ValueError, IndexError, OverflowError, UnicodeDecodeError) as exc:
        raise CorruptedIndexError(
            f"RTIX header failed to parse (corrupt payload): {exc}"
        ) from exc

    store: BlockStore = FileBlockStore(path, toc)
    if store_wrapper is not None:
        store = store_wrapper(store)
    return _assemble_tiered(
        dictionary=dictionary,
        terms=terms,
        doc_lengths=doc_lengths,
        analyzer=analyzer,
        block_size=block_size,
        store=store,
        cache_budget_bytes=cache_budget_bytes,
        admission=admission,
        metrics=metrics,
    )


# ---------------------------------------------------------------------------
# engine-facing configuration


@dataclass(frozen=True)
class TieredStorageConfig:
    """How a search service tiers its shard indexes.

    Attributes
    ----------
    cache_budget_bytes:
        Total block-cache budget across the server; each shard gets an
        equal slice.  0 disables caching (every block access fetches).
    admission:
        Enable TinyLFU admission control (off = plain byte-budget LRU).
    fetch_latency_s / per_byte_latency_s:
        When either is positive, each shard's store is wrapped in a
        :class:`SlowStore` modeling object-store fetch latency.
    timeout_rate / seed:
        Seedable fetch-timeout injection (chaos testing of the paging
        path); timeouts surface as shard failures, not wrong results.
    """

    cache_budget_bytes: int = 4 << 20
    admission: bool = True
    fetch_latency_s: float = 0.0
    per_byte_latency_s: float = 0.0
    timeout_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cache_budget_bytes < 0:
            raise ValueError("cache_budget_bytes must be >= 0")
        if self.fetch_latency_s < 0 or self.per_byte_latency_s < 0:
            raise ValueError("latencies must be non-negative")
        if not 0.0 <= self.timeout_rate <= 1.0:
            raise ValueError("timeout_rate must be in [0, 1]")

    @property
    def needs_slow_store(self) -> bool:
        """True when latency or fault modeling is requested."""
        return (
            self.fetch_latency_s > 0.0
            or self.per_byte_latency_s > 0.0
            or self.timeout_rate > 0.0
        )

    def store_wrapper(
        self, seed_offset: int = 0
    ) -> Optional[Callable[[BlockStore], BlockStore]]:
        """The :class:`SlowStore` factory this config implies (or None).

        ``seed_offset`` (typically the shard id) decorrelates the fault
        streams of sibling shards while keeping each one reproducible.
        """
        if not self.needs_slow_store:
            return None
        return lambda store: SlowStore(
            store,
            latency_s=self.fetch_latency_s,
            per_byte_latency_s=self.per_byte_latency_s,
            timeout_rate=self.timeout_rate,
            seed=self.seed + seed_offset,
        )


def tier_partitioned_index(
    partitioned,
    config: TieredStorageConfig,
    metrics=None,
):
    """Re-home every shard of a partitioned index onto tiered storage.

    The cache budget is split evenly across shards (each shard owns an
    independent :class:`BlockCache`, so there is no cross-shard lock
    contention), and each shard's fault stream gets its own seed.
    Returns a new :class:`~repro.index.partitioner.PartitionedIndex`
    whose shards serve bit-identical results to the originals.
    """
    from repro.index.partitioner import IndexShard, PartitionedIndex

    per_shard_budget = config.cache_budget_bytes // max(
        1, partitioned.num_partitions
    )
    shards = [
        IndexShard(
            shard_id=shard.shard_id,
            index=tier_index(
                shard.index,
                cache_budget_bytes=per_shard_budget,
                admission=config.admission,
                store_wrapper=config.store_wrapper(shard.shard_id),
                metrics=metrics,
            ),
            global_doc_ids=shard.global_doc_ids,
        )
        for shard in partitioned
    ]
    return PartitionedIndex(shards=shards, strategy=partitioned.strategy)
