"""Posting lists: sorted (doc_id, term_frequency) pairs for one term."""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np


class PostingsList:
    """The postings of a single term, sorted by ascending doc id.

    Doc ids and term frequencies are stored as parallel int64 numpy
    arrays: traversal and galloping search dominate query service time,
    and array storage keeps both fast and memory-compact.  Instances are
    immutable after construction.
    """

    __slots__ = ("_doc_ids", "_frequencies")

    def __init__(
        self,
        doc_ids: Sequence[int] | np.ndarray,
        frequencies: Sequence[int] | np.ndarray,
    ):
        doc_array = np.asarray(doc_ids, dtype=np.int64)
        freq_array = np.asarray(frequencies, dtype=np.int64)
        if doc_array.shape != freq_array.shape:
            raise ValueError(
                f"doc_ids and frequencies must have equal length, got "
                f"{doc_array.shape} vs {freq_array.shape}"
            )
        if doc_array.ndim != 1:
            raise ValueError("postings arrays must be one-dimensional")
        if doc_array.size > 1 and not np.all(np.diff(doc_array) > 0):
            raise ValueError("doc_ids must be strictly increasing")
        if doc_array.size and doc_array[0] < 0:
            raise ValueError("doc_ids must be non-negative")
        if np.any(freq_array <= 0):
            raise ValueError("term frequencies must be positive")
        self._doc_ids = doc_array
        self._frequencies = freq_array

    @classmethod
    def empty(cls) -> "PostingsList":
        """Return an empty postings list."""
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))

    @classmethod
    def from_trusted_arrays(
        cls, doc_ids: np.ndarray, frequencies: np.ndarray
    ) -> "PostingsList":
        """Wrap pre-validated int64 arrays without copying or checking.

        The zero-copy attach path (worker processes mapping postings
        out of :mod:`multiprocessing.shared_memory`) re-creates views
        over arrays the builder already validated; re-running the
        strictly-increasing scan there would touch every page of every
        postings list at startup.  Callers guarantee the constructor's
        invariants: parallel 1-D int64 arrays, strictly increasing
        non-negative doc ids, positive frequencies.
        """
        self = object.__new__(cls)
        self._doc_ids = doc_ids
        self._frequencies = frequencies
        return self

    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[int, int]]) -> "PostingsList":
        """Build from ``(doc_id, frequency)`` pairs (must be sorted)."""
        if not pairs:
            return cls.empty()
        doc_ids, frequencies = zip(*pairs)
        return cls(list(doc_ids), list(frequencies))

    def __len__(self) -> int:
        return int(self._doc_ids.size)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        for doc_id, frequency in zip(self._doc_ids, self._frequencies):
            yield int(doc_id), int(frequency)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PostingsList):
            return NotImplemented
        return bool(
            np.array_equal(self._doc_ids, other._doc_ids)
            and np.array_equal(self._frequencies, other._frequencies)
        )

    def __repr__(self) -> str:
        return f"PostingsList(len={len(self)})"

    @property
    def doc_ids(self) -> np.ndarray:
        """Sorted doc ids (do not mutate)."""
        return self._doc_ids

    @property
    def frequencies(self) -> np.ndarray:
        """Term frequencies, parallel to :attr:`doc_ids` (do not mutate)."""
        return self._frequencies

    def document_frequency(self) -> int:
        """Number of documents containing the term."""
        return len(self)

    def collection_frequency(self) -> int:
        """Total occurrences of the term across the collection."""
        return int(self._frequencies.sum())

    def frequency_of(self, doc_id: int) -> int:
        """Term frequency in ``doc_id``, or 0 if the doc is absent."""
        position = int(np.searchsorted(self._doc_ids, doc_id))
        if position < len(self) and self._doc_ids[position] == doc_id:
            return int(self._frequencies[position])
        return 0

    def next_geq(self, doc_id: int, start: int = 0) -> int:
        """Return the position of the first posting with id >= ``doc_id``.

        This is the skip primitive of document-at-a-time traversal.
        ``start`` lets callers resume from their cursor; the return
        value equals ``len(self)`` when no such posting exists.
        """
        return int(
            np.searchsorted(self._doc_ids[start:], doc_id) + start
        )

    def intersect(self, other: "PostingsList") -> np.ndarray:
        """Return the doc ids present in both lists."""
        return np.intersect1d(
            self._doc_ids, other._doc_ids, assume_unique=True
        )

    def pairs(self) -> List[Tuple[int, int]]:
        """Materialize as a list of ``(doc_id, frequency)`` pairs."""
        return list(self)
