"""Index construction from a document collection."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.corpus.documents import DocumentCollection
from repro.index.dictionary import TermDictionary
from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingsList
from repro.text.analyzer import Analyzer, default_analyzer


class IndexBuilder:
    """Builds an :class:`InvertedIndex` from a document collection.

    The builder runs every document through the analyzer chain, then
    assembles per-term postings.  Terms are assigned ids in first-seen
    order (deterministic for a given collection + analyzer).
    """

    def __init__(self, analyzer: Optional[Analyzer] = None):
        self.analyzer = analyzer or default_analyzer()

    def build(self, collection: DocumentCollection) -> InvertedIndex:
        """Analyze and index every document in ``collection``."""
        # term -> list of (doc_id, frequency); doc ids arrive in order
        # because the collection enforces dense ascending ids.
        accumulator: Dict[str, List[Tuple[int, int]]] = {}
        doc_lengths = np.zeros(len(collection), dtype=np.int64)

        for document in collection:
            terms = self.analyzer.analyze(document.text)
            doc_lengths[document.doc_id] = len(terms)
            for term, frequency in sorted(Counter(terms).items()):
                accumulator.setdefault(term, []).append(
                    (document.doc_id, frequency)
                )

        dictionary = TermDictionary()
        postings: List[PostingsList] = []
        for term in sorted(accumulator):
            pairs = accumulator[term]
            postings_list = PostingsList.from_pairs(pairs)
            dictionary.add(
                term,
                document_frequency=postings_list.document_frequency(),
                collection_frequency=postings_list.collection_frequency(),
            )
            postings.append(postings_list)

        return InvertedIndex(
            dictionary=dictionary,
            postings=postings,
            doc_lengths=doc_lengths,
            analyzer=self.analyzer,
        )
