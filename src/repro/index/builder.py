"""Index construction from a document collection."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.corpus.documents import DocumentCollection
from repro.index.blockmax import DEFAULT_BLOCK_SIZE, BlockMetadata
from repro.index.dictionary import TermDictionary
from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingsList
from repro.index.stats import IndexStatistics, compute_statistics
from repro.text.analyzer import Analyzer, default_analyzer


class IndexBuilder:
    """Builds an :class:`InvertedIndex` from a document collection.

    The builder runs every document through the analyzer chain, then
    assembles per-term postings.  Terms are assigned ids in first-seen
    order (deterministic for a given collection + analyzer).  Alongside
    each postings list it precomputes the per-block metadata (block
    last doc id, max term frequency, min document length) the block-max
    traversal prunes with; ``block_size`` controls the granularity.
    """

    def __init__(
        self,
        analyzer: Optional[Analyzer] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.analyzer = analyzer or default_analyzer()
        self.block_size = block_size

    def build(self, collection: DocumentCollection) -> InvertedIndex:
        """Analyze and index every document in ``collection``."""
        # term -> list of (doc_id, frequency); doc ids arrive in order
        # because the collection enforces dense ascending ids.
        accumulator: Dict[str, List[Tuple[int, int]]] = {}
        doc_lengths = np.zeros(len(collection), dtype=np.int64)

        for document in collection:
            terms = self.analyzer.analyze(document.text)
            doc_lengths[document.doc_id] = len(terms)
            for term, frequency in sorted(Counter(terms).items()):
                accumulator.setdefault(term, []).append(
                    (document.doc_id, frequency)
                )

        dictionary = TermDictionary()
        postings: List[PostingsList] = []
        block_metadata: List[BlockMetadata] = []
        for term in sorted(accumulator):
            pairs = accumulator[term]
            postings_list = PostingsList.from_pairs(pairs)
            dictionary.add(
                term,
                document_frequency=postings_list.document_frequency(),
                collection_frequency=postings_list.collection_frequency(),
            )
            postings.append(postings_list)
            block_metadata.append(
                BlockMetadata.from_postings(
                    postings_list, doc_lengths, self.block_size
                )
            )

        return InvertedIndex(
            dictionary=dictionary,
            postings=postings,
            doc_lengths=doc_lengths,
            analyzer=self.analyzer,
            block_metadata=block_metadata,
            block_size=self.block_size,
        )

    def build_with_stats(
        self, collection: DocumentCollection
    ) -> Tuple[InvertedIndex, IndexStatistics]:
        """Build the index and its size accounting in one call.

        Returns ``(index, stats)`` where ``stats.compressed_sections``
        holds the per-section serialized byte sizes (header,
        doc-length table, dictionary, postings, block metadata) whose
        sum equals the exact v3 segment length — per-shard storage cost
        alongside the usual characterization numbers.
        """
        index = self.build(collection)
        return index, compute_statistics(index, include_sections=True)
