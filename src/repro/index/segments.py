"""Segment-based incremental indexing.

The benchmark's index is static, but the engine it models (Lucene)
maintains its index as a set of immutable **segments**: new documents
go into a fresh segment, deletes are tombstones, and a background
merge policy keeps the segment count bounded by rewriting small
segments into bigger ones.  Queries fan out over all live segments and
merge — the same machinery as intra-server partitions, which is no
coincidence: a multi-segment index *is* a partitioned index whose
partition count drifts with update activity.  The F20 benchmark
measures exactly that drift's latency cost and what a merge buys back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.corpus.documents import Document, DocumentCollection
from repro.index.builder import IndexBuilder
from repro.index.partitioner import IndexShard
from repro.search.executor import ShardSearcher
from repro.search.merger import merge_shard_results
from repro.search.query import DEFAULT_TOP_K, ParsedQuery, QueryMode, QueryParser
from repro.search.scoring import global_bm25_scorer
from repro.search.topk import SearchHit
from repro.text.analyzer import Analyzer, default_analyzer


@dataclass(frozen=True)
class MergePolicy:
    """Tiered merge policy.

    Attributes
    ----------
    max_segments:
        When the live segment count exceeds this, :meth:`maybe_merge`
        merges the ``merge_factor`` smallest segments into one.
    merge_factor:
        Segments combined per merge operation.
    """

    max_segments: int = 8
    merge_factor: int = 4

    def __post_init__(self) -> None:
        if self.max_segments <= 0:
            raise ValueError("max_segments must be positive")
        if self.merge_factor < 2:
            raise ValueError("merge_factor must be at least 2")


class _Segment:
    """One immutable segment: an index plus its source documents."""

    def __init__(self, documents: List[Document], global_ids: List[int],
                 analyzer: Analyzer):
        collection = DocumentCollection()
        for local_id, document in enumerate(documents):
            collection.add(
                Document(
                    doc_id=local_id,
                    url=document.url,
                    title=document.title,
                    body=document.body,
                )
            )
        self.documents = list(collection)
        self.shard = IndexShard(
            shard_id=0,
            index=IndexBuilder(analyzer).build(collection),
            global_doc_ids=np.asarray(global_ids, dtype=np.int64),
        )

    @property
    def num_documents(self) -> int:
        return len(self.documents)

    def live_documents(self, deleted: Set[int]) -> List[Tuple[int, Document]]:
        """(global_id, document) pairs excluding tombstoned ids."""
        return [
            (int(global_id), document)
            for global_id, document in zip(
                self.shard.global_doc_ids, self.documents
            )
            if int(global_id) not in deleted
        ]


class SegmentedIndex:
    """A mutable index: immutable segments + tombstones + merges."""

    def __init__(
        self,
        analyzer: Optional[Analyzer] = None,
        merge_policy: MergePolicy = MergePolicy(),
    ):
        self.analyzer = analyzer or default_analyzer()
        self.merge_policy = merge_policy
        self._segments: List[_Segment] = []
        self._deleted: Set[int] = set()
        self._documents: Dict[int, Document] = {}
        self._next_global_id = 0
        self._parser = QueryParser(self.analyzer)
        self.merges_performed = 0
        self._scorer_cache = None

    # -- introspection -------------------------------------------------

    @property
    def num_segments(self) -> int:
        """Live segment count."""
        return len(self._segments)

    @property
    def num_documents(self) -> int:
        """Live (non-deleted) document count."""
        return len(self._documents) - len(self._deleted)

    @property
    def num_deleted(self) -> int:
        """Tombstoned document count."""
        return len(self._deleted)

    def document(self, global_id: int) -> Document:
        """Fetch a live document by global id."""
        if global_id in self._deleted or global_id not in self._documents:
            raise KeyError(f"document {global_id} does not exist")
        return self._documents[global_id]

    # -- mutation ------------------------------------------------------

    def add_documents(self, documents: Sequence[Document]) -> List[int]:
        """Index a batch as one new segment; returns the global ids.

        The ``doc_id`` field of the inputs is ignored — global ids are
        assigned densely by arrival order, as a crawler feeding the
        indexer would.
        """
        if not documents:
            return []
        global_ids = list(
            range(self._next_global_id, self._next_global_id + len(documents))
        )
        self._next_global_id += len(documents)
        self._segments.append(
            _Segment(list(documents), global_ids, self.analyzer)
        )
        for global_id, document in zip(global_ids, documents):
            self._documents[global_id] = document
        self._scorer_cache = None
        self.maybe_merge()
        return global_ids

    def delete_document(self, global_id: int) -> None:
        """Tombstone a document (idempotent for live ids)."""
        if global_id not in self._documents or global_id in self._deleted:
            raise KeyError(f"document {global_id} does not exist")
        self._deleted.add(global_id)
        self._scorer_cache = None

    def maybe_merge(self) -> bool:
        """Apply the merge policy once; returns True if it merged."""
        if self.num_segments <= self.merge_policy.max_segments:
            return False
        by_size = sorted(self._segments, key=lambda s: s.num_documents)
        victims = by_size[: self.merge_policy.merge_factor]
        self._merge(victims)
        return True

    def force_merge(self) -> None:
        """Merge everything into a single segment (optimize)."""
        if self.num_segments <= 1 and not self._deleted:
            return
        self._merge(list(self._segments))

    def _merge(self, victims: List[_Segment]) -> None:
        survivors = [s for s in self._segments if s not in victims]
        merged_pairs: List[Tuple[int, Document]] = []
        for segment in victims:
            merged_pairs.extend(segment.live_documents(self._deleted))
        merged_pairs.sort(key=lambda pair: pair[0])
        # Tombstones inside the victims are physically reclaimed.
        victim_ids = {
            int(global_id)
            for segment in victims
            for global_id in segment.shard.global_doc_ids
        }
        surviving_ids = {pair[0] for pair in merged_pairs}
        self._deleted -= victim_ids
        for global_id in victim_ids - surviving_ids:
            self._documents.pop(global_id, None)
        self._segments = survivors
        if merged_pairs:
            global_ids = [pair[0] for pair in merged_pairs]
            documents = [pair[1] for pair in merged_pairs]
            self._segments.append(
                _Segment(documents, global_ids, self.analyzer)
            )
        self.merges_performed += 1
        self._scorer_cache = None

    # -- search --------------------------------------------------------

    def search(
        self,
        text: str,
        k: int = DEFAULT_TOP_K,
        mode: QueryMode = QueryMode.OR,
    ) -> List[SearchHit]:
        """Search all live segments; tombstoned docs never surface.

        Scoring uses collection-global statistics over the live
        documents, so results are independent of the segment layout —
        the invariant the property tests enforce.
        """
        query = self._parser.parse(text, mode=mode, k=k)
        if query.is_empty or not self._segments:
            return []
        scorer = self._global_scorer()
        # Over-fetch per segment so tombstone filtering cannot starve
        # the final page.
        fetch = k + len(self._deleted)
        per_segment: List[List[SearchHit]] = []
        for segment in self._segments:
            searcher = ShardSearcher(
                segment.shard, scorer_factory=lambda _index: scorer
            )
            result = searcher.search(
                ParsedQuery(terms=query.terms, mode=mode, k=fetch)
            )
            per_segment.append(
                [
                    hit
                    for hit in result.hits
                    if hit.doc_id not in self._deleted
                ]
            )
        return merge_shard_results(per_segment, k=k)

    def _global_scorer(self):
        """BM25 with statistics aggregated over live documents only.

        Cached between searches; any mutation invalidates it.
        """
        if self._scorer_cache is not None:
            return self._scorer_cache
        dfs: Dict[str, int] = {}
        total_length = 0
        live = 0
        for segment in self._segments:
            index = segment.shard.index
            deleted_locals = {
                local
                for local, global_id in enumerate(segment.shard.global_doc_ids)
                if int(global_id) in self._deleted
            }
            for local in range(index.num_documents):
                if local in deleted_locals:
                    continue
                live += 1
                total_length += int(index.doc_lengths[local])
            for term in index.dictionary:
                postings = index.postings_for(term)
                live_df = sum(
                    1
                    for doc_id in postings.doc_ids
                    if int(doc_id) not in deleted_locals
                )
                if live_df:
                    dfs[term] = dfs.get(term, 0) + live_df
        average = total_length / live if live else 0.0
        self._scorer_cache = global_bm25_scorer(
            num_documents=live,
            average_doc_length=average,
            term_document_frequencies=dfs,
        )
        return self._scorer_cache
