"""Term dictionary: maps index terms to ids and collection statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TermInfo:
    """Dictionary entry for one term.

    Attributes
    ----------
    term_id:
        Dense id, also the term's offset in the index's postings table.
    document_frequency:
        Number of documents containing the term.
    collection_frequency:
        Total occurrences of the term in the collection.
    """

    term_id: int
    document_frequency: int
    collection_frequency: int


class TermDictionary:
    """Bidirectional term ↔ id mapping with per-term statistics."""

    def __init__(self) -> None:
        self._info: Dict[str, TermInfo] = {}
        self._terms: List[str] = []

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: str) -> bool:
        return term in self._info

    def __iter__(self) -> Iterator[str]:
        return iter(self._terms)

    def add(
        self, term: str, document_frequency: int, collection_frequency: int
    ) -> TermInfo:
        """Register ``term`` with its statistics; terms must be unique."""
        if term in self._info:
            raise ValueError(f"term {term!r} already in dictionary")
        if document_frequency <= 0:
            raise ValueError("document_frequency must be positive")
        if collection_frequency < document_frequency:
            raise ValueError(
                "collection_frequency cannot be below document_frequency"
            )
        info = TermInfo(
            term_id=len(self._terms),
            document_frequency=document_frequency,
            collection_frequency=collection_frequency,
        )
        self._info[term] = info
        self._terms.append(term)
        return info

    def lookup(self, term: str) -> Optional[TermInfo]:
        """Return the entry for ``term`` or None if unknown."""
        return self._info.get(term)

    def term_for_id(self, term_id: int) -> str:
        """Return the term string for a dense ``term_id``."""
        return self._terms[term_id]

    def terms(self) -> List[str]:
        """All terms in insertion (= term id) order."""
        return list(self._terms)
