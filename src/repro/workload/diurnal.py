"""Synthetic diurnal + flash-crowd arrival traces.

Production search traffic is not stationary: request rate follows a
smooth daily cycle (roughly sinusoidal between a nightly trough and an
afternoon peak) with occasional *flash crowds* — news events that
multiply the offered load within minutes.  Capacity planning and
autoscaling studies need exactly this shape, because static
provisioning pays for the peak around the clock while the trough runs
near-idle.

:class:`DiurnalArrivals` generates such traffic as a non-homogeneous
Poisson process via Lewis–Shedler thinning of a dominating homogeneous
process, optionally modulated by the same two-state burst machinery as
:class:`~repro.workload.arrivals.MMPPArrivals` for second-scale
burstiness on top of the hour-scale cycle.  It satisfies the
:class:`~repro.workload.arrivals.ArrivalProcess` protocol, so it plugs
into every existing open-loop runner, and :meth:`realize_trace`
produces a plain timestamp array compatible with
:func:`~repro.workload.trace.save_trace` /
:class:`~repro.workload.trace.TraceArrivals`, so one generated 24-hour
trace can drive the native engine and the DES identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class FlashCrowd:
    """One flash-crowd event: a ramp up, a plateau, a decay.

    The event multiplies the diurnal rate by a factor that ramps
    linearly from 1 to ``magnitude`` over ``ramp_s``, holds for
    ``hold_s``, and decays linearly back to 1 over ``decay_s``.
    """

    start_s: float
    magnitude: float
    ramp_s: float = 60.0
    hold_s: float = 300.0
    decay_s: float = 300.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.magnitude < 1.0:
            raise ValueError("magnitude must be >= 1 (a crowd, not a dip)")
        if self.ramp_s < 0 or self.hold_s < 0 or self.decay_s < 0:
            raise ValueError("ramp/hold/decay durations must be non-negative")

    @property
    def end_s(self) -> float:
        """When the multiplier returns to 1."""
        return self.start_s + self.ramp_s + self.hold_s + self.decay_s

    def multiplier_at(self, t: np.ndarray) -> np.ndarray:
        """Vectorized rate multiplier at times ``t``."""
        t = np.asarray(t, dtype=np.float64)
        ramp_end = self.start_s + self.ramp_s
        hold_end = ramp_end + self.hold_s
        rise = (
            (t - self.start_s) / self.ramp_s
            if self.ramp_s > 0
            else np.ones_like(t)
        )
        fall = (
            (self.end_s - t) / self.decay_s
            if self.decay_s > 0
            else np.zeros_like(t)
        )
        extra = self.magnitude - 1.0
        factor = np.ones_like(t)
        factor = np.where(
            (t >= self.start_s) & (t < ramp_end), 1.0 + extra * rise, factor
        )
        factor = np.where(
            (t >= ramp_end) & (t < hold_end), self.magnitude, factor
        )
        factor = np.where(
            (t >= hold_end) & (t < self.end_s), 1.0 + extra * fall, factor
        )
        return factor


@dataclass(frozen=True)
class DiurnalArrivals:
    """Diurnal-cycle arrivals with optional flash crowds and bursts.

    The deterministic rate envelope is::

        rate(t) = base + (peak - base) * ((1 + cos(2pi (t - t_peak)/T)) / 2)^s

    — a raised cosine between ``base_qps`` (trough) and ``peak_qps``
    (peak at ``peak_time_s``), sharpened by the exponent ``sharpness``
    (1 is a plain sinusoid; larger values narrow the peak, the shape of
    real evening-peak traffic).  Each :class:`FlashCrowd` multiplies
    the envelope during its window.

    With ``burst_multiplier > 1`` the thinned process is additionally
    modulated by a two-state Markov chain (exponential dwell times,
    exactly :class:`~repro.workload.arrivals.MMPPArrivals`' mechanism):
    in the burst state the instantaneous rate is multiplied, adding
    second-scale burstiness the hour-scale envelope cannot express.

    Determinism: ``arrival_times`` consumes only the caller's RNG, so
    under :class:`~repro.sim.random.RandomStreams` the same master seed
    yields the same trace regardless of any other simulation parameter
    (partition count, replica count, policies) — the common-random-
    numbers contract every sweep relies on.
    """

    base_qps: float
    peak_qps: float
    period_s: float = 86_400.0
    peak_time_s: float = 54_000.0  # 15:00 on a midnight-anchored day
    sharpness: float = 1.0
    flash_crowds: Tuple[FlashCrowd, ...] = ()
    burst_multiplier: float = 1.0
    mean_burst_dwell_s: float = 2.0
    mean_base_dwell_s: float = 20.0

    def __post_init__(self) -> None:
        if self.base_qps <= 0:
            raise ValueError("base_qps must be positive")
        if self.peak_qps < self.base_qps:
            raise ValueError("peak_qps must be >= base_qps")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.sharpness <= 0:
            raise ValueError("sharpness must be positive")
        if self.burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be >= 1")
        if self.mean_burst_dwell_s <= 0 or self.mean_base_dwell_s <= 0:
            raise ValueError("dwell times must be positive")

    # ------------------------------------------------------------------
    # The deterministic rate envelope.

    def envelope_qps(self, t) -> np.ndarray:
        """Deterministic rate envelope (diurnal × flash crowds) at ``t``.

        This is the *expected* instantaneous rate excluding burst-state
        modulation — what a capacity planner sizes against.
        """
        t = np.asarray(t, dtype=np.float64)
        phase = 2.0 * math.pi * (t - self.peak_time_s) / self.period_s
        shape = ((1.0 + np.cos(phase)) / 2.0) ** self.sharpness
        rate = self.base_qps + (self.peak_qps - self.base_qps) * shape
        for crowd in self.flash_crowds:
            rate = rate * crowd.multiplier_at(t)
        return rate

    def peak_envelope_qps(self, horizon_s: float | None = None) -> float:
        """Largest envelope rate over ``horizon_s`` (one period default).

        Evaluated on a dense grid — the envelope is smooth, so a
        1-second grid bounds the maximum to well under a percent.
        """
        horizon = float(horizon_s) if horizon_s is not None else self.period_s
        grid = np.arange(0.0, horizon, min(1.0, horizon / 1_000.0))
        return float(self.envelope_qps(grid).max())

    def mean_envelope_qps(self, horizon_s: float | None = None) -> float:
        """Time-averaged envelope rate over ``horizon_s``."""
        horizon = float(horizon_s) if horizon_s is not None else self.period_s
        grid = np.arange(0.0, horizon, min(1.0, horizon / 1_000.0))
        return float(self.envelope_qps(grid).mean())

    # ------------------------------------------------------------------
    # The stochastic arrival process (Lewis–Shedler thinning).
    #
    # Candidates come from a dominating homogeneous Poisson process at
    # the envelope ceiling and are accepted with probability
    # rate(t)/ceiling — generated in vectorized chunks (exponential
    # gaps, cumulative sum, one vectorized envelope evaluation and one
    # uniform draw per chunk), which is ~100x faster than an
    # arrival-at-a-time loop for day-length traces.  When burst
    # modulation is on, the two-state chain's flip times are drawn
    # *first* (the chain is independent of the candidate process), and
    # each candidate looks up its state with a searchsorted — the same
    # distribution as interleaved simulation, in vectorizable form.

    def _burst_flips(
        self, rng: np.random.Generator, until_s: float
    ) -> np.ndarray:
        """State-flip times of the burst chain covering ``[0, until_s]``.

        The chain starts in the base state; flip ``i`` toggles it, so a
        time ``t`` is in the burst state iff ``searchsorted(flips, t,
        'right')`` is odd.
        """
        flips: list = []
        clock = 0.0
        while clock <= until_s:
            # One base dwell, one burst dwell per iteration pair; drawn
            # in chunks to bound Python-level loop iterations.
            chunk = 256
            base = rng.exponential(self.mean_base_dwell_s, size=chunk)
            burst = rng.exponential(self.mean_burst_dwell_s, size=chunk)
            dwells = np.empty(2 * chunk)
            dwells[0::2] = base
            dwells[1::2] = burst
            segment = clock + np.cumsum(dwells)
            flips.append(segment)
            clock = float(segment[-1])
        return np.concatenate(flips)

    def _candidate_chunk(
        self,
        rng: np.random.Generator,
        start: float,
        ceiling: float,
        flips: np.ndarray | None,
        chunk: int,
    ) -> Tuple[np.ndarray, float]:
        """One thinned chunk: accepted arrivals after ``start``, new clock."""
        gaps = rng.exponential(1.0 / ceiling, size=chunk)
        times = start + np.cumsum(gaps)
        rates = self.envelope_qps(times)
        if flips is not None:
            in_burst = (
                np.searchsorted(flips, times, side="right") % 2
            ) == 1
            rates = np.where(in_burst, rates * self.burst_multiplier, rates)
        accepted = rng.random(chunk) < rates / ceiling
        return times[accepted], float(times[-1])

    def arrival_times(
        self, num_queries: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Return ``num_queries`` sorted arrival timestamps from t=0."""
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        if num_queries == 0:
            return np.empty(0, dtype=np.float64)
        span = self.period_s
        for crowd in self.flash_crowds:
            span = max(span, crowd.end_s)
        ceiling = self.peak_envelope_qps(span) * self.burst_multiplier
        mean_rate = self.mean_envelope_qps(span)
        flips: np.ndarray | None = None
        covered = 0.0
        if self.burst_multiplier > 1.0:
            covered = 2.0 * num_queries / mean_rate + 100.0
            flips = self._burst_flips(rng, covered)
        pieces = []
        produced = 0
        clock = 0.0
        while produced < num_queries:
            chunk = max(
                1024,
                int(1.2 * ceiling * (num_queries - produced) / mean_rate),
            )
            if flips is not None and clock + chunk / ceiling > covered:
                covered = clock + 2.0 * chunk / ceiling + 100.0
                flips = self._burst_flips(rng, covered)
            accepted, clock = self._candidate_chunk(
                rng, clock, ceiling, flips, chunk
            )
            pieces.append(accepted)
            produced += accepted.size
        return np.concatenate(pieces)[:num_queries]

    def realize_trace(
        self, horizon_s: float, rng: np.random.Generator
    ) -> np.ndarray:
        """All arrivals in ``[0, horizon_s)`` as a plain timestamp array.

        The result feeds :func:`~repro.workload.trace.save_trace`
        directly and round-trips through
        :class:`~repro.workload.trace.TraceArrivals`, so one generated
        trace can drive the native engine and the DES identically.
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        ceiling = self.peak_envelope_qps(horizon_s) * self.burst_multiplier
        flips = (
            self._burst_flips(rng, horizon_s)
            if self.burst_multiplier > 1.0
            else None
        )
        pieces = []
        clock = 0.0
        while clock < horizon_s:
            chunk = max(1024, int(1.2 * ceiling * (horizon_s - clock)))
            chunk = min(chunk, 1_000_000)
            accepted, clock = self._candidate_chunk(
                rng, clock, ceiling, flips, chunk
            )
            pieces.append(accepted)
        times = np.concatenate(pieces)
        return times[times < horizon_s]
