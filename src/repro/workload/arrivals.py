"""Query arrival processes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np


class ArrivalProcess(Protocol):
    """Open-loop arrival process: generates absolute arrival times."""

    def arrival_times(
        self, num_queries: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Return ``num_queries`` sorted arrival timestamps from t=0."""
        ...


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals at ``rate`` queries per second."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    def arrival_times(
        self, num_queries: int, rng: np.random.Generator
    ) -> np.ndarray:
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        gaps = rng.exponential(1.0 / self.rate, size=num_queries)
        return np.cumsum(gaps)


@dataclass(frozen=True)
class DeterministicArrivals:
    """Perfectly paced arrivals (isolates service-time variability)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    def arrival_times(
        self, num_queries: int, rng: np.random.Generator
    ) -> np.ndarray:
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        interval = 1.0 / self.rate
        return interval * np.arange(1, num_queries + 1, dtype=np.float64)


@dataclass(frozen=True)
class MMPPArrivals:
    """Two-state Markov-modulated Poisson process (bursty traffic).

    The process alternates between a ``base_rate`` state and a
    ``burst_rate`` state with exponentially distributed dwell times —
    the standard model for diurnal-plus-spike search traffic.
    """

    base_rate: float
    burst_rate: float
    mean_base_dwell: float = 10.0
    mean_burst_dwell: float = 2.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0 or self.burst_rate <= 0:
            raise ValueError("rates must be positive")
        if self.mean_base_dwell <= 0 or self.mean_burst_dwell <= 0:
            raise ValueError("dwell times must be positive")

    def arrival_times(
        self, num_queries: int, rng: np.random.Generator
    ) -> np.ndarray:
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        times = np.empty(num_queries, dtype=np.float64)
        clock = 0.0
        in_burst = False
        state_ends = rng.exponential(self.mean_base_dwell)
        produced = 0
        while produced < num_queries:
            rate = self.burst_rate if in_burst else self.base_rate
            gap = rng.exponential(1.0 / rate)
            if clock + gap >= state_ends:
                # State flips before the next arrival would land.
                clock = state_ends
                in_burst = not in_burst
                dwell = (
                    self.mean_burst_dwell if in_burst else self.mean_base_dwell
                )
                state_ends = clock + rng.exponential(dwell)
                continue
            clock += gap
            times[produced] = clock
            produced += 1
        return times


@dataclass(frozen=True)
class ClosedLoopSpec:
    """Faban-style closed-loop driver parameters.

    ``num_clients`` emulated users each cycle through: think for an
    exponentially distributed time with mean ``mean_think_time``, issue
    one query, and block until the response returns.  Offered load is
    therefore self-limiting — the semantics of the benchmark's shipped
    driver.  (This is a parameter record, not an ``ArrivalProcess``:
    closed-loop arrivals depend on completions, so the cluster simulator
    drives them directly.)
    """

    num_clients: int
    mean_think_time: float = 0.5

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if self.mean_think_time < 0:
            raise ValueError("mean_think_time must be non-negative")
