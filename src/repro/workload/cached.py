"""Demand model with a simulated result cache in front.

Models the front-end result cache for the discrete-event studies: the
query stream is drawn from the log's Zipfian popularity model, an LRU
over query identities decides hit/miss, and a hit costs only
``hit_cost_seconds`` (a cache probe plus response copy) instead of the
full index-traversal demand.  This is the standard way to study the
interaction of caching with tail latency: hits thin out the *body* of
the demand distribution while the tail — the long, less-popular
queries that keep missing — remains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.lru import LRUCache
from repro.workload.servicetime import IndexDerivedDemand


@dataclass
class CachedDemand:
    """Wraps :class:`IndexDerivedDemand` with an LRU over query ids.

    Attributes
    ----------
    base:
        The uncached per-query demand model (carries the query log and
        each query's index-derived cost).
    cache_capacity:
        Entries in the simulated result cache.
    hit_cost_seconds:
        Demand charged for a cache hit.
    """

    base: IndexDerivedDemand
    cache_capacity: int
    hit_cost_seconds: float = 5e-5

    def __post_init__(self) -> None:
        if self.cache_capacity <= 0:
            raise ValueError("cache_capacity must be positive")
        if self.hit_cost_seconds < 0:
            raise ValueError("hit_cost_seconds must be non-negative")

    def demands(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        """Sample a stream and price each query through the cache."""
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        stream = self.base.query_log.sample_stream(num_queries, rng)
        cache: LRUCache[int, bool] = LRUCache(self.cache_capacity)
        demands = np.empty(num_queries, dtype=np.float64)
        for position, query in enumerate(stream):
            if cache.get(query.query_id) is not None:
                demands[position] = self.hit_cost_seconds
            else:
                demands[position] = self.base.demand_of(query)
                cache.put(query.query_id, True)
        return demands

    def mean_demand(self) -> float:
        """Steady-state expected demand under the cache.

        Estimated by simulating a long stream (the LRU hit rate under
        Zipf popularity has no clean closed form); deterministic given
        the fixed internal seed.
        """
        rng = np.random.default_rng(123456789)
        warm = self.demands(max(20_000, self.cache_capacity * 20), rng)
        # Skip the cold-start prefix where the cache is still filling.
        return float(warm[len(warm) // 4 :].mean())

    def measured_hit_rate(self, num_queries: int = 20_000, seed: int = 0) -> float:
        """Steady-state hit rate over a sampled stream."""
        rng = np.random.default_rng(seed)
        stream = self.base.query_log.sample_stream(num_queries, rng)
        cache: LRUCache[int, bool] = LRUCache(self.cache_capacity)
        hits = 0
        start_counting = num_queries // 4
        counted = 0
        for position, query in enumerate(stream):
            hit = cache.get(query.query_id) is not None
            if not hit:
                cache.put(query.query_id, True)
            if position >= start_counting:
                counted += 1
                hits += int(hit)
        return hits / counted if counted else 0.0
