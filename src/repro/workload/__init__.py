"""Workload models: arrival processes and per-query service demands.

The benchmark's Faban driver is a closed-loop generator (fixed client
population, exponential think times); most follow-on tail-latency work
loads index serving nodes open-loop (Poisson).  Both are provided here,
along with a bursty Markov-modulated process for the traffic-spike
sensitivity study, and the service-demand models that map each query to
reference-core work.
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    ClosedLoopSpec,
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.workload.servicetime import (
    EmpiricalDemand,
    ExponentialDemand,
    IndexDerivedDemand,
    LognormalDemand,
    ServiceDemandModel,
)
from repro.workload.cached import CachedDemand
from repro.workload.diurnal import DiurnalArrivals, FlashCrowd
from repro.workload.scenario import WorkloadScenario
from repro.workload.trace import TraceArrivals, save_trace

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "MMPPArrivals",
    "DiurnalArrivals",
    "FlashCrowd",
    "ClosedLoopSpec",
    "ServiceDemandModel",
    "EmpiricalDemand",
    "ExponentialDemand",
    "LognormalDemand",
    "IndexDerivedDemand",
    "CachedDemand",
    "WorkloadScenario",
    "TraceArrivals",
    "save_trace",
]
