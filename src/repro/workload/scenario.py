"""A complete workload scenario: arrivals plus service demands."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.workload.arrivals import ArrivalProcess
from repro.workload.servicetime import ServiceDemandModel


@dataclass(frozen=True)
class WorkloadScenario:
    """Binds an arrival process to a demand model for one experiment.

    The scenario pre-generates both series from independent RNG streams
    so that, e.g., sweeping the partition count replays the *identical*
    arrival sequence and query costs — common random numbers, the
    variance-reduction discipline all the paper-style sweeps rely on.
    """

    arrivals: ArrivalProcess
    demands: ServiceDemandModel
    num_queries: int

    def __post_init__(self) -> None:
        if self.num_queries <= 0:
            raise ValueError("num_queries must be positive")

    def realize(
        self,
        arrival_rng: np.random.Generator,
        demand_rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Materialize ``(arrival_times, demands)`` for one run."""
        times = self.arrivals.arrival_times(self.num_queries, arrival_rng)
        demands = self.demands.demands(self.num_queries, demand_rng)
        return times, demands

    def offered_load(self) -> Optional[float]:
        """Offered work in reference-core-seconds per second, if known.

        Returns ``rate × mean_demand`` when the arrival process exposes
        a ``rate`` attribute (open-loop processes); None otherwise.
        """
        rate = getattr(self.arrivals, "rate", None)
        if rate is None:
            return None
        return float(rate) * self.demands.mean_demand()
