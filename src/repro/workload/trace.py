"""Trace-driven arrivals: replay recorded timestamps.

Production traffic studies replay captured arrival traces rather than
parametric processes.  ``TraceArrivals`` adapts a timestamp sequence
(in memory or from a one-timestamp-per-line file) to the
:class:`~repro.workload.arrivals.ArrivalProcess` interface, with
optional rate rescaling and looping so one trace can drive experiments
of any length and intensity.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence, Union

import numpy as np

PathLike = Union[str, Path]


class TraceArrivals:
    """Replays a recorded arrival-time trace.

    Parameters
    ----------
    timestamps:
        Non-decreasing arrival times, seconds from trace start.
    rate_scale:
        Compresses (``> 1``) or stretches (``< 1``) the trace in time:
        a scale of 2 doubles the arrival rate.
    loop:
        When the requested query count exceeds the trace length,
        re-play the trace shifted by its span (True) or raise (False).
    """

    def __init__(
        self,
        timestamps: Sequence[float],
        rate_scale: float = 1.0,
        loop: bool = True,
    ):
        times = np.asarray(timestamps, dtype=np.float64)
        if times.size == 0:
            raise ValueError("trace must contain at least one timestamp")
        if np.any(np.diff(times) < 0):
            raise ValueError("trace timestamps must be non-decreasing")
        if np.any(times < 0):
            raise ValueError("trace timestamps must be non-negative")
        if rate_scale <= 0:
            raise ValueError("rate_scale must be positive")
        self._times = times / rate_scale
        self.loop = loop

    @classmethod
    def from_file(
        cls, path: PathLike, rate_scale: float = 1.0, loop: bool = True
    ) -> "TraceArrivals":
        """Load a one-timestamp-per-line text trace."""
        timestamps = []
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    timestamps.append(float(line))
                except ValueError:
                    raise ValueError(
                        f"{path}:{line_number}: not a timestamp: {line!r}"
                    ) from None
        return cls(timestamps, rate_scale=rate_scale, loop=loop)

    @property
    def trace_length(self) -> int:
        """Number of arrivals in one pass of the trace."""
        return int(self._times.size)

    @property
    def mean_rate(self) -> float:
        """Average arrival rate over the (rescaled) trace."""
        span = float(self._times[-1] - self._times[0])
        if span == 0:
            return float("inf")
        return (self._times.size - 1) / span

    def arrival_times(
        self, num_queries: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Return ``num_queries`` arrival times (RNG unused: a replay).

        Looping appends shifted copies of the trace; the shift includes
        one mean inter-arrival gap so the seam does not create a burst.
        """
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        if num_queries <= self._times.size:
            return self._times[:num_queries].copy()
        if not self.loop:
            raise ValueError(
                f"trace has {self._times.size} arrivals; "
                f"{num_queries} requested and looping is disabled"
            )
        gap = (
            (self._times[-1] - self._times[0]) / max(1, self._times.size - 1)
        )
        period = float(self._times[-1]) + float(gap)
        repeats = -(-num_queries // self._times.size)  # ceil
        pieces = [
            self._times + repeat * period for repeat in range(repeats)
        ]
        return np.concatenate(pieces)[:num_queries]


def save_trace(timestamps: Sequence[float], path: PathLike) -> int:
    """Write timestamps one per line; returns the count written."""
    times = np.asarray(timestamps, dtype=np.float64)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# repro arrival trace, seconds from start\n")
        for value in times:
            handle.write(f"{value:.9f}\n")
    return int(times.size)
