"""Per-query service demand models.

A query's *service demand* is the CPU work it requires, expressed in
seconds on the reference core (the big server's core).  The simulator
divides demands by a server's ``core_speed`` to get wall-clock service
time.  Three models are provided:

- :class:`EmpiricalDemand` — resample measured native-engine service
  times (the highest-fidelity option, used after calibration);
- :class:`LognormalDemand` — the parametric fit of those measurements;
- :class:`IndexDerivedDemand` — derive each query's demand from index
  statistics (``base + per_posting × matched postings volume``), which
  preserves the query-identity ↔ cost correlation for popularity-aware
  studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Protocol, Sequence

import numpy as np

from repro.corpus.querylog import Query, QueryLog
from repro.index.inverted import InvertedIndex
from repro.search.query import QueryParser


class ServiceDemandModel(Protocol):
    """Generates per-query reference-core service demands (seconds)."""

    def demands(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``num_queries`` demand samples."""
        ...

    def mean_demand(self) -> float:
        """Expected demand per query (used for load planning)."""
        ...


@dataclass(frozen=True)
class EmpiricalDemand:
    """Bootstrap-resamples a measured service-time sample set."""

    samples: np.ndarray

    def __post_init__(self) -> None:
        data = np.asarray(self.samples, dtype=np.float64)
        if data.size == 0:
            raise ValueError("need at least one measured sample")
        if np.any(data < 0):
            raise ValueError("service demands must be non-negative")
        object.__setattr__(self, "samples", data)

    def demands(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        indexes = rng.integers(0, self.samples.size, size=num_queries)
        return self.samples[indexes]

    def mean_demand(self) -> float:
        return float(self.samples.mean())


@dataclass(frozen=True)
class ExponentialDemand:
    """Memoryless demand — the M/M/c validation workload.

    Not a realistic search service-time model (search times are
    log-normal-ish); it exists because exponential service times admit
    closed-form queueing results (:mod:`repro.analysis.queueing`)
    against which the simulator is validated.
    """

    mean: float

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError("mean must be positive")

    def demands(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        return rng.exponential(self.mean, size=num_queries)

    def mean_demand(self) -> float:
        return self.mean


@dataclass(frozen=True)
class LognormalDemand:
    """Log-normal demand with given log-space parameters."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    @classmethod
    def from_mean_and_p99(cls, mean: float, p99: float) -> "LognormalDemand":
        """Solve (mu, sigma) so the distribution has the given mean and p99.

        Uses the closed forms mean = exp(mu + sigma²/2) and
        p99 = exp(mu + 2.326 sigma); a heavy tail needs p99 > mean.

        The quadratic ``z99·sigma − sigma²/2 = ln(p99/mean)`` has two
        roots for any feasible gap; this constructor deliberately takes
        the **smaller** one.  Both reproduce the requested (mean, p99)
        pair exactly, but the larger root has ``sigma > z99`` — a
        degenerate shape whose p99 sits *below* the mean-driving bulk
        (a spike near zero plus an enormous >p99 tail), which no
        measured service-time sample looks like.  The smaller root is
        the one where the p99 is an upper tail quantile in the usual
        sense.  The feasibility cap this implies:
        ``ln(p99/mean) ≤ z99²/2`` (≈ p99/mean ≤ 14.9), checked below.
        """
        if mean <= 0 or p99 <= mean:
            raise ValueError("require 0 < mean < p99")
        z99 = 2.3263478740408408
        # ln p99 - ln mean = z99*sigma - sigma^2/2  -> solve the quadratic.
        gap = np.log(p99) - np.log(mean)
        discriminant = z99**2 - 2.0 * gap
        if discriminant < 0:
            raise ValueError(
                f"p99/mean ratio {p99 / mean:.1f} too extreme for a "
                f"log-normal (max ≈ {float(np.exp(z99**2 / 2.0)):.1f})"
            )
        sigma = z99 - np.sqrt(discriminant)
        mu = np.log(mean) - sigma**2 / 2.0
        model = cls(mu=float(mu), sigma=float(sigma))
        assert model.sigma <= z99, "smaller root must satisfy sigma <= z99"
        return model

    def p99(self) -> float:
        """The distribution's 99th percentile (closed form)."""
        return float(np.exp(self.mu + 2.3263478740408408 * self.sigma))

    def demands(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        return rng.lognormal(self.mu, self.sigma, size=num_queries)

    def mean_demand(self) -> float:
        return float(np.exp(self.mu + self.sigma**2 / 2.0))


@dataclass
class IndexDerivedDemand:
    """Demands derived from each query's matched postings volume.

    ``demand(q) = base + per_posting × volume(q)``, with the query
    stream drawn from the log's Zipfian popularity model.  This keeps
    the popular-query/expensive-query correlation that purely parametric
    models erase.
    """

    index: InvertedIndex
    query_log: QueryLog
    base_seconds: float
    per_posting_seconds: float
    _volumes: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.base_seconds < 0 or self.per_posting_seconds < 0:
            raise ValueError("calibration coefficients must be non-negative")
        parser = QueryParser(self.index.analyzer)
        volumes = np.empty(len(self.query_log), dtype=np.float64)
        for query in self.query_log:
            parsed = parser.parse(query.text)
            volumes[query.query_id] = self.index.matched_postings_volume(
                list(parsed.terms)
            )
        self._volumes = volumes

    def demand_of(self, query: Query) -> float:
        """Demand of one specific query from the log."""
        return float(
            self.base_seconds
            + self.per_posting_seconds * self._volumes[query.query_id]
        )

    def demands(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        stream = self.query_log.sample_stream(num_queries, rng)
        return np.array([self.demand_of(query) for query in stream])

    def mean_demand(self) -> float:
        weights = np.array(
            [
                self.query_log.popularity(query_id)
                for query_id in range(len(self.query_log))
            ]
        )
        expected_volume = float((weights * self._volumes).sum())
        return self.base_seconds + self.per_posting_seconds * expected_volume
