"""repro — reproduction of "Characterization and analysis of a web
search benchmark" (Hadjilambrou, Kleanthous, Sazeides; ISPASS 2015).

The library builds, from scratch, the full system the paper studies —
a web-search benchmark (synthetic crawl corpus, inverted index, BM25
query execution, partitioned index serving node, Faban-style driver) —
plus a calibrated discrete-event simulator used for the paper's load,
partitioning, and low-power server studies.

Quickstart — the supported surface is :mod:`repro.api`::

    from repro.api import SearchEngine

    engine = SearchEngine(num_partitions=4)
    outcome = engine.search("example query terms")
    for hit in outcome.hits:
        print(hit.score, engine.document(hit.doc_id).title)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
per-figure reproduction results.
"""

from repro import api
from repro.api import (
    ClusterConfig,
    ClusterModel,
    EngineConfig,
    HedgingPolicy,
    QueryOutcome,
    SearchEngine,
)
from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.querylog import QueryLog, QueryLogConfig, QueryLogGenerator
from repro.corpus.vocabulary import VocabularyConfig
from repro.engine.isn import IndexServingNode
from repro.engine.service import SearchService, SearchServiceConfig
from repro.index.builder import IndexBuilder
from repro.index.inverted import InvertedIndex
from repro.index.partitioner import PartitionStrategy, partition_index
from repro.obs import MetricsRegistry, Tracer, trace_span
from repro.search.executor import Searcher
from repro.search.query import QueryMode
from repro.servers.catalog import BIG_SERVER, SMALL_SERVER

__version__ = "1.1.0"

__all__ = [
    "api",
    "SearchEngine",
    "ClusterModel",
    "HedgingPolicy",
    "EngineConfig",
    "ClusterConfig",
    "QueryOutcome",
    "SearchService",
    "SearchServiceConfig",
    "IndexServingNode",
    "CorpusConfig",
    "CorpusGenerator",
    "VocabularyConfig",
    "QueryLog",
    "QueryLogConfig",
    "QueryLogGenerator",
    "IndexBuilder",
    "InvertedIndex",
    "PartitionStrategy",
    "partition_index",
    "Searcher",
    "QueryMode",
    "Tracer",
    "MetricsRegistry",
    "trace_span",
    "BIG_SERVER",
    "SMALL_SERVER",
    "__version__",
]
