"""Parametric server specification."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServerSpec:
    """A server model for the simulated index serving node.

    Attributes
    ----------
    name:
        Human-readable identifier.
    num_cores:
        Hardware contexts available to partition tasks.
    core_speed:
        Per-core speed relative to the reference core service demands
        are calibrated on (the big server's core is the reference, 1.0).
    idle_power_watts:
        Wall power at zero utilization.
    peak_power_watts:
        Wall power at full utilization.
    """

    name: str
    num_cores: int
    core_speed: float
    idle_power_watts: float
    peak_power_watts: float

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if self.core_speed <= 0:
            raise ValueError("core_speed must be positive")
        if self.idle_power_watts < 0:
            raise ValueError("idle power must be non-negative")
        if self.peak_power_watts < self.idle_power_watts:
            raise ValueError("peak power cannot be below idle power")

    @property
    def compute_capacity(self) -> float:
        """Total reference-core-seconds of work per second of wall time."""
        return self.num_cores * self.core_speed

    def scaled(self, frequency_factor: float, name: str | None = None) -> "ServerSpec":
        """A DVFS-scaled variant: core speed multiplied by ``frequency_factor``.

        Dynamic power scales roughly with f·V² ≈ f³ at the envelope; we
        apply the cubic rule to the dynamic (peak − idle) component,
        which is the standard first-order DVFS model.
        """
        if frequency_factor <= 0:
            raise ValueError("frequency_factor must be positive")
        dynamic = self.peak_power_watts - self.idle_power_watts
        return ServerSpec(
            name=name or f"{self.name}@{frequency_factor:.2f}x",
            num_cores=self.num_cores,
            core_speed=self.core_speed * frequency_factor,
            idle_power_watts=self.idle_power_watts,
            peak_power_watts=self.idle_power_watts
            + dynamic * frequency_factor**3,
        )
