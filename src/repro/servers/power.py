"""Utilization-based server power and energy accounting.

The standard linear server power model: wall power interpolates between
idle and peak with CPU utilization.  It is first-order accurate for
both server classes in the study and sufficient for the energy-per-query
comparison, which is dominated by the idle/peak *ratio* difference
between the two machines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.servers.spec import ServerSpec


@dataclass(frozen=True)
class PowerModel:
    """Linear power model bound to one server spec."""

    spec: ServerSpec

    def power_at(self, utilization: float) -> float:
        """Wall power (watts) at the given CPU utilization in [0, 1]."""
        if not 0.0 <= utilization <= 1.0 + 1e-9:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        utilization = min(utilization, 1.0)
        return self.spec.idle_power_watts + utilization * (
            self.spec.peak_power_watts - self.spec.idle_power_watts
        )

    def energy_joules(self, utilization: float, duration_seconds: float) -> float:
        """Energy consumed over ``duration_seconds`` at a fixed utilization."""
        if duration_seconds < 0:
            raise ValueError("duration must be non-negative")
        return self.power_at(utilization) * duration_seconds

    def energy_per_query(self, utilization: float, throughput_qps: float) -> float:
        """Average joules per query at the given operating point."""
        if throughput_qps <= 0:
            raise ValueError("throughput must be positive")
        return self.power_at(utilization) / throughput_qps
