"""Server models: core counts, speeds, and power.

The paper's low-power study compares a conventional high-performance
server against a low-power microserver.  ``ServerSpec`` captures the
three properties that matter for the studied effects — core count,
per-core speed relative to the reference core, and the idle/peak power
envelope — and :mod:`catalog` provides specs calibrated to 2015-era
published numbers for the two server classes.
"""

from repro.servers.catalog import (
    BIG_SERVER,
    MID_SERVER,
    SERVER_CATALOG,
    SMALL_SERVER,
    get_server,
)
from repro.servers.power import PowerModel
from repro.servers.spec import ServerSpec

__all__ = [
    "ServerSpec",
    "PowerModel",
    "BIG_SERVER",
    "MID_SERVER",
    "SMALL_SERVER",
    "SERVER_CATALOG",
    "get_server",
]
