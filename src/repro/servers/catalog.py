"""Calibrated server specs for the low-power study.

Numbers follow 2015-era published figures for the two server classes
the paper contrasts:

- **Big server** — a dual-socket-class Xeon E5 v2 box as used in search
  deployments of the period: 8 fast cores (the reference core), ~95 W
  idle / ~250 W peak wall power.
- **Small server** — an Atom C2750 (Avoton) microserver: 8 cores, each
  roughly 3× slower than a Xeon core on search workloads (per-core
  SPECint-rate ratios of the era), ~18 W idle / ~45 W peak wall power.

The study's conclusions depend on the *ratios* (per-core speed ≈ 0.35,
power ≈ 1/6), not the absolute values.
"""

from __future__ import annotations

from typing import Dict

from repro.servers.spec import ServerSpec

#: Conventional high-performance search server (reference core speed).
BIG_SERVER = ServerSpec(
    name="xeon-e5",
    num_cores=8,
    core_speed=1.0,
    idle_power_watts=95.0,
    peak_power_watts=250.0,
)

#: Low-power microserver.
SMALL_SERVER = ServerSpec(
    name="atom-c2750",
    num_cores=8,
    core_speed=0.35,
    idle_power_watts=18.0,
    peak_power_watts=45.0,
)

#: A mid-range single-socket server, for sensitivity sweeps.
MID_SERVER = ServerSpec(
    name="xeon-e3",
    num_cores=4,
    core_speed=0.9,
    idle_power_watts=40.0,
    peak_power_watts=110.0,
)

SERVER_CATALOG: Dict[str, ServerSpec] = {
    spec.name: spec for spec in (BIG_SERVER, SMALL_SERVER, MID_SERVER)
}


def get_server(name: str) -> ServerSpec:
    """Look up a catalog server by name; raises KeyError with choices."""
    try:
        return SERVER_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown server {name!r}; available: {sorted(SERVER_CATALOG)}"
        ) from None
