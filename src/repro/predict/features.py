"""Admission-time query features from the resident dictionary.

Everything here must be computable *before* any postings traversal:
the scheduler consults these features at admission to decide routing
and early-termination depth, so they may touch only the dictionary
(term → document frequency), never the postings arrays.  On a tiered
index the dictionary is resident by construction, so feature
extraction never pages a block in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from repro.search.query import ParsedQuery

__all__ = ["QueryFeatures", "extract_features"]


@dataclass(frozen=True)
class QueryFeatures:
    """Per-query predictor inputs, all known at admission.

    ``total_postings`` is the summed posting-list length of the query's
    terms — identical to the index's ``matched_postings_volume``, the
    paper's per-query work proxy — and ``max_postings`` the longest
    single list (the lower bound on any single-cursor traversal).
    """

    term_count: int
    total_postings: int
    max_postings: int

    def __post_init__(self) -> None:
        if self.term_count < 0:
            raise ValueError("term_count must be non-negative")
        if self.total_postings < 0 or self.max_postings < 0:
            raise ValueError("posting counts must be non-negative")
        if self.max_postings > self.total_postings:
            raise ValueError("max_postings cannot exceed total_postings")


def _term_frequencies(index, terms: Sequence[str]) -> list:
    """Per-term collection document frequencies from the dictionary.

    ``index`` is duck-typed: anything with ``document_frequency``
    (a single :class:`~repro.index.inverted.InvertedIndex`, including
    tiered indexes whose dictionary is resident) or an iterable of
    shards with ``.index`` (a ``PartitionedIndex``), in which case the
    per-shard frequencies are summed — document partitioning splits
    each term's postings across shards, so the sum is the collection
    frequency.
    """
    document_frequency = getattr(index, "document_frequency", None)
    if document_frequency is not None:
        return [int(document_frequency(term)) for term in terms]
    totals = [0] * len(terms)
    for shard in index:
        shard_df = shard.index.document_frequency
        for position, term in enumerate(terms):
            totals[position] += int(shard_df(term))
    return totals


def extract_features(
    index, query: Union[ParsedQuery, Iterable[str]]
) -> QueryFeatures:
    """Extract admission-time features for ``query`` against ``index``.

    ``query`` is a :class:`~repro.search.query.ParsedQuery` or a plain
    term sequence (already analyzed).  Unknown terms contribute zero
    postings but still count toward ``term_count`` — the parse cost is
    paid whether or not the dictionary knows the term.
    """
    if isinstance(query, ParsedQuery):
        terms: Sequence[str] = query.terms
    else:
        terms = tuple(query)
    frequencies = _term_frequencies(index, terms)
    return QueryFeatures(
        term_count=len(terms),
        total_postings=sum(frequencies),
        max_postings=max(frequencies, default=0),
    )
