"""The calibrated linear/quantile service-time model.

The characterization's affine work model — ``time ≈ base +
per_posting × volume`` — already explains most service-time variance
(fig2); the predictor refits that model on admission-time features
(term count, summed posting-list lengths) and adds a *log-space
residual error model* so callers can ask for conservative quantiles:
measured/predicted ratios are close to log-normal, so
``predict × exp(z_q · σ)`` is the q-quantile prediction.

Fitting is a deterministic constrained least squares: coefficients are
clamped non-negative (more terms or more postings never make a query
cheaper), which is also what makes the prediction provably monotone in
``total_postings``.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import NormalDist
from typing import List, Sequence

import numpy as np

from repro.predict.features import QueryFeatures

__all__ = ["ServiceTimePredictor"]

#: Floor for predictions and relative-error denominators: a query
#: always pays the parse/setup cost, never literally zero seconds.
_MIN_PREDICTION_S = 1e-9

_NORMAL = NormalDist()


@dataclass(frozen=True)
class ServiceTimePredictor:
    """``predicted = base + per_term·terms + per_posting·postings``.

    ``residual_log_sigma`` is the standard deviation of
    ``ln(measured / predicted)`` on the training set — the multiplicative
    error model used for quantile predictions, and the noise model the
    DES applies when simulating a *predicted*-demand router (the
    simulator knows each query's true demand; the predictor's realism
    is exactly this error distribution).
    """

    base_seconds: float
    per_term_seconds: float
    per_posting_seconds: float
    residual_log_sigma: float = 0.0
    num_observations: int = 0

    def __post_init__(self) -> None:
        for name in ("base_seconds", "per_term_seconds", "per_posting_seconds"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.residual_log_sigma < 0:
            raise ValueError("residual_log_sigma must be non-negative")

    @classmethod
    def fit(
        cls,
        features: Sequence[QueryFeatures],
        measured_seconds: Sequence[float],
    ) -> "ServiceTimePredictor":
        """Relative least-squares fit with non-negative coefficients.

        Deterministic: ``lstsq`` on the ``[1, terms, postings]`` design
        with each row weighted by ``1/measured`` — minimizing the
        *relative* residual ``(predicted − measured)/measured`` rather
        than the absolute one.  Unweighted least squares lets the many
        expensive queries set the intercept, which over-predicts the
        cheap majority by integer factors (terrible MAPE exactly where
        routing decisions are most frequent); the relative objective
        matches the multiplicative error model the quantile API
        assumes.  Any negative coefficient is pinned to zero and the
        remaining columns refitted (repeat until all are physical).
        """
        if len(features) != len(measured_seconds):
            raise ValueError("features and measurements must align")
        if len(features) < 3:
            raise ValueError("fitting needs at least three measurements")
        times = np.asarray(measured_seconds, dtype=np.float64)
        if np.any(times < 0):
            raise ValueError("service times must be non-negative")
        design = np.column_stack(
            [
                np.ones(len(features)),
                np.array([f.term_count for f in features], dtype=np.float64),
                np.array(
                    [f.total_postings for f in features], dtype=np.float64
                ),
            ]
        )
        weights = 1.0 / np.maximum(times, _MIN_PREDICTION_S)
        weighted_design = design * weights[:, np.newaxis]
        weighted_times = times * weights  # all ones, kept for clarity
        active: List[int] = [0, 1, 2]
        coefficients = np.zeros(3)
        while active:
            solution, *_ = np.linalg.lstsq(
                weighted_design[:, active], weighted_times, rcond=None
            )
            worst = int(np.argmin(solution))
            if solution[worst] >= 0:
                coefficients[:] = 0.0
                coefficients[active] = solution
                break
            active.pop(worst)
        predicted = np.maximum(design @ coefficients, _MIN_PREDICTION_S)
        log_residuals = np.log(np.maximum(times, _MIN_PREDICTION_S) / predicted)
        return cls(
            base_seconds=float(coefficients[0]),
            per_term_seconds=float(coefficients[1]),
            per_posting_seconds=float(coefficients[2]),
            residual_log_sigma=float(np.std(log_residuals)),
            num_observations=len(features),
        )

    def predict(self, features: QueryFeatures) -> float:
        """Point (median-flavoured) service-time prediction in seconds."""
        raw = (
            self.base_seconds
            + self.per_term_seconds * features.term_count
            + self.per_posting_seconds * features.total_postings
        )
        return max(raw, _MIN_PREDICTION_S)

    def predict_quantile(self, features: QueryFeatures, q: float) -> float:
        """The q-quantile prediction under the log-normal error model."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        z = _NORMAL.inv_cdf(q)
        return self.predict(features) * float(
            np.exp(z * self.residual_log_sigma)
        )

    def mape(
        self,
        features: Sequence[QueryFeatures],
        measured_seconds: Sequence[float],
    ) -> float:
        """Mean absolute percentage error against measurements."""
        if len(features) != len(measured_seconds):
            raise ValueError("features and measurements must align")
        if not features:
            raise ValueError("mape needs at least one measurement")
        errors = [
            abs(self.predict(f) - t) / max(t, _MIN_PREDICTION_S)
            for f, t in zip(features, measured_seconds)
        ]
        return float(np.mean(errors))
