"""Service-time prediction and deadline-aware scheduling.

The paper's characterization shows per-query service time is driven by
the matched postings volume — a quantity fully determined by statistics
the resident dictionary already holds at *admission* (term count,
per-term posting-list lengths).  This package turns that observation
into a serving-path feature, following the Hurry-up direction
(Nishtala et al., PAPERS.md):

- :class:`~repro.predict.features.QueryFeatures` /
  :func:`~repro.predict.features.extract_features` — admission-time
  features from the dictionary alone (no postings traversal);
- :class:`~repro.predict.predictor.ServiceTimePredictor` — a calibrated
  linear model with a log-space residual error model, fitted against
  measured native service times
  (:func:`~repro.predict.calibrate.calibrate_predictor`);
- :class:`~repro.predict.scheduler.DeadlineScheduler` — a declarative
  policy object, interpreted identically by the native engine
  (longest-predicted-first batch dispatch, deadline budget → Block-Max
  WAND early-termination depth) and the DES mixed-fleet broker
  (``core_speed``-aware routing on *predicted* demand) — the same
  dual-interpretation contract :class:`~repro.engine.hedging.
  HedgingPolicy` follows.

``scheduler=None`` everywhere keeps the seed's behaviour bit for bit.

Submodules are imported lazily so low-level layers (the ISN, the DES
broker) can import individual submodules without triggering package
initialization cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "QueryFeatures",
    "extract_features",
    "ServiceTimePredictor",
    "DeadlineScheduler",
    "DeadlineCappedDemand",
    "PredictorCalibration",
    "calibrate_predictor",
]

_LAZY = {
    "QueryFeatures": "repro.predict.features",
    "extract_features": "repro.predict.features",
    "ServiceTimePredictor": "repro.predict.predictor",
    "DeadlineScheduler": "repro.predict.scheduler",
    "DeadlineCappedDemand": "repro.predict.scheduler",
    "PredictorCalibration": "repro.predict.calibrate",
    "calibrate_predictor": "repro.predict.calibrate",
}

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.predict.calibrate import (  # noqa: F401
        PredictorCalibration,
        calibrate_predictor,
    )
    from repro.predict.features import (  # noqa: F401
        QueryFeatures,
        extract_features,
    )
    from repro.predict.predictor import ServiceTimePredictor  # noqa: F401
    from repro.predict.scheduler import (  # noqa: F401
        DeadlineCappedDemand,
        DeadlineScheduler,
    )


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(__all__))
