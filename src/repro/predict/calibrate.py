"""Fit a :class:`ServiceTimePredictor` against the native engine.

Mirrors :func:`repro.core.calibration.calibrate_isn`: a popularity-
weighted query sample is replayed serially (serial service time *is*
the query's demand), but the measurements are split into train and
held-out sets **by unique query text** — duplicate queries in the
popularity-weighted stream must not leak a held-out query into
training — so the reported holdout MAPE is an honest generalization
number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.corpus.querylog import QueryLog
from repro.engine.driver import replay_serial
from repro.engine.isn import IndexServingNode
from repro.predict.features import QueryFeatures, extract_features
from repro.predict.predictor import ServiceTimePredictor

__all__ = ["PredictorCalibration", "calibrate_predictor"]


@dataclass(frozen=True)
class PredictorCalibration:
    """A fitted predictor plus its train/holdout accuracy."""

    predictor: ServiceTimePredictor
    train_mape: float
    holdout_mape: float
    num_train: int
    num_holdout: int
    holdout_features: Tuple[QueryFeatures, ...]
    holdout_seconds: Tuple[float, ...]


def calibrate_predictor(
    isn: IndexServingNode,
    query_log: QueryLog,
    num_queries: int = 200,
    repeats: int = 3,
    seed: int = 0,
    holdout_fraction: float = 0.25,
) -> PredictorCalibration:
    """Measure, featurize, split, fit, and score the predictor.

    Deterministic for a fixed ``seed``: the query sample, the
    train/holdout split, and the (median-of-repeats) measurements all
    derive from it.
    """
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    if not 0.0 < holdout_fraction < 1.0:
        raise ValueError("holdout_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    sampled = query_log.sample_stream(num_queries, rng)
    unique = []
    seen = set()
    for query in sampled:
        if query.text not in seen:
            seen.add(query.text)
            unique.append(query)
    if len(unique) < 8:
        raise ValueError(
            f"only {len(unique)} unique queries sampled; "
            "calibration needs at least 8"
        )
    measurements = replay_serial(isn, unique, repeats=repeats)

    features: Dict[str, QueryFeatures] = {}
    times: Dict[str, float] = {}
    for query, measurement in zip(unique, measurements):
        parsed = isn.parser.parse(query.text)
        features[query.text] = extract_features(isn.partitioned, parsed)
        times[query.text] = measurement.service_seconds

    order = rng.permutation(len(unique))
    num_holdout = max(1, int(round(len(unique) * holdout_fraction)))
    holdout_texts = [unique[i].text for i in order[:num_holdout]]
    train_texts = [unique[i].text for i in order[num_holdout:]]

    def gather(texts: List[str]):
        return (
            [features[text] for text in texts],
            [times[text] for text in texts],
        )

    train_features, train_times = gather(train_texts)
    holdout_features, holdout_times = gather(holdout_texts)
    predictor = ServiceTimePredictor.fit(train_features, train_times)
    return PredictorCalibration(
        predictor=predictor,
        train_mape=predictor.mape(train_features, train_times),
        holdout_mape=predictor.mape(holdout_features, holdout_times),
        num_train=len(train_texts),
        num_holdout=len(holdout_texts),
        holdout_features=tuple(holdout_features),
        holdout_seconds=tuple(holdout_times),
    )
