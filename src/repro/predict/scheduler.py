"""The deadline-aware scheduling policy both execution paths interpret.

:class:`DeadlineScheduler` is declarative, like
:class:`~repro.engine.hedging.HedgingPolicy`: it states *what* the
scheduler wants (a predictor, a deadline budget, a long-query
threshold) and each execution path interprets it with its own clock
and mechanisms:

- **Native engine** (:class:`~repro.engine.isn.IndexServingNode`):
  queries are featurized at admission (dictionary only); batch
  dispatch orders work longest-predicted-first; with
  ``depth_from_budget`` and a Block-Max WAND traversal, the remaining
  wall-clock deadline budget is converted — through the predictor's
  own cost model — into a per-query ``max_docs_scored`` early-
  termination depth.
- **DES broker** (:func:`~repro.cluster.hetero.
  run_heterogeneous_open_loop`): each query's *predicted* demand is
  its true demand times a draw from the predictor's log-normal
  residual error model; routing picks the most energy-efficient server
  whose ``core_speed``-scaled completion estimate meets the deadline
  (falling back to the fastest server when none does).
  :class:`DeadlineCappedDemand` models the BMW depth cap for the
  single-server crossover studies: demands predicted to blow the
  budget are truncated to the affordable work, tracking the served
  fraction so quality loss stays measured.

``scheduler=None`` (the default everywhere) keeps both paths
bit-identical to the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.predict.features import QueryFeatures
from repro.predict.predictor import ServiceTimePredictor
from repro.workload.servicetime import ServiceDemandModel

__all__ = ["DeadlineScheduler", "DeadlineCappedDemand"]


@dataclass(frozen=True, kw_only=True)
class DeadlineScheduler:
    """Prediction-driven routing and early-termination policy.

    Attributes
    ----------
    predictor:
        The calibrated :class:`~repro.predict.predictor.
        ServiceTimePredictor`.
    deadline_s:
        Per-query completion budget in seconds.  Drives the DES's
        deadline-aware routing and, with ``depth_from_budget``, the
        native BMW depth cap.  ``None`` disables both.
    long_query_threshold_s:
        Predicted service time above which a query is "long".  Used
        for metrics/routing when no deadline is set (threshold-style
        big/little routing, the noisy version of the fig22 oracle).
    route_quantile:
        Which quantile of the predictor's error model routing
        decisions use; 0.5 is the point prediction, higher values are
        more conservative (long queries classified long more often).
    budget_headroom:
        Fraction of the deadline budget available for scoring work —
        the rest is slack for queueing, merge, and prediction error.
    min_depth_fraction:
        Early termination never truncates a query below this fraction
        of its work: a floor on result quality.
    depth_from_budget:
        Enable the native deadline → BMW ``max_docs_scored`` mapping
        (and the DES demand-cap mirror).  Off by default so a purely
        routing scheduler never changes results.
    """

    predictor: ServiceTimePredictor
    deadline_s: Optional[float] = None
    long_query_threshold_s: Optional[float] = None
    route_quantile: float = 0.5
    budget_headroom: float = 0.8
    min_depth_fraction: float = 0.1
    depth_from_budget: bool = False

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if (
            self.long_query_threshold_s is not None
            and self.long_query_threshold_s <= 0
        ):
            raise ValueError("long_query_threshold_s must be positive")
        if not 0.0 < self.route_quantile < 1.0:
            raise ValueError("route_quantile must be in (0, 1)")
        if not 0.0 < self.budget_headroom <= 1.0:
            raise ValueError("budget_headroom must be in (0, 1]")
        if not 0.0 < self.min_depth_fraction <= 1.0:
            raise ValueError("min_depth_fraction must be in (0, 1]")
        if self.depth_from_budget and self.deadline_s is None:
            raise ValueError("depth_from_budget needs a deadline_s")

    @property
    def routes(self) -> bool:
        """True when the policy makes routing decisions (DES broker)."""
        return (
            self.deadline_s is not None
            or self.long_query_threshold_s is not None
        )

    def predicted_seconds(self, features: QueryFeatures) -> float:
        """The routing-flavoured prediction (at ``route_quantile``)."""
        if self.route_quantile == 0.5:
            return self.predictor.predict(features)
        return self.predictor.predict_quantile(features, self.route_quantile)

    def is_long(self, features: QueryFeatures) -> bool:
        """Classify a query as long at admission.

        Against ``long_query_threshold_s`` when set, otherwise against
        the scoring budget the deadline affords; False when the policy
        has no reference point.
        """
        predicted = self.predicted_seconds(features)
        if self.long_query_threshold_s is not None:
            return predicted > self.long_query_threshold_s
        if self.deadline_s is not None:
            return predicted > self.deadline_s * self.budget_headroom
        return False

    def max_docs_for(
        self,
        features: QueryFeatures,
        remaining_s: float,
        num_shards: int = 1,
        floor: int = 10,
    ) -> Optional[int]:
        """Map the remaining deadline budget to a per-shard BMW depth.

        Inverts the predictor's own cost model: the budget's scoring
        share buys ``(budget·headroom − base − per_term·terms) /
        per_posting`` postings; the affordable fraction of the query's
        ``total_postings`` (floored at ``min_depth_fraction``) bounds
        the documents each shard may fully score — every scored
        document consumes at least one posting, so the posting budget
        is an upper bound on scored documents.  Returns ``None`` when
        no cap applies (budget ample, feature-free query, or the
        predictor has no per-posting cost to invert).
        """
        if not self.depth_from_budget:
            return None
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if features.total_postings == 0:
            return None
        per_posting = self.predictor.per_posting_seconds
        if per_posting <= 0:
            return None
        scoring_budget = (
            max(remaining_s, 0.0) * self.budget_headroom
            - self.predictor.base_seconds
            - self.predictor.per_term_seconds * features.term_count
        )
        affordable = max(scoring_budget, 0.0) / per_posting
        fraction = affordable / features.total_postings
        if fraction >= 1.0:
            return None
        fraction = max(fraction, self.min_depth_fraction)
        per_shard = math.ceil(fraction * features.total_postings / num_shards)
        return max(per_shard, max(floor, 1))

    def capped_demand(
        self,
        demand: float,
        predicted: float,
        core_speed: float,
        parallelism: int = 1,
    ) -> float:
        """The DES mirror of the BMW depth cap, in demand units.

        A query *predicted* to exceed the affordable work —
        ``deadline · headroom · core_speed · parallelism`` reference-
        core seconds — is truncated to that affordable demand (never
        below ``min_depth_fraction`` of its true demand).  Queries
        predicted to fit run in full, so prediction error leaks some
        long queries through untruncated — exactly the native
        behaviour, where the cap is computed from the (fallible)
        prediction, not the true cost.
        """
        if self.deadline_s is None:
            return demand
        if core_speed <= 0 or parallelism <= 0:
            raise ValueError("core_speed and parallelism must be positive")
        affordable = (
            self.deadline_s * self.budget_headroom * core_speed * parallelism
        )
        if predicted <= affordable:
            return demand
        return min(demand, max(affordable, self.min_depth_fraction * demand))


@dataclass
class DeadlineCappedDemand:
    """A demand model truncated by a :class:`DeadlineScheduler`.

    Wraps any :class:`~repro.workload.servicetime.ServiceDemandModel`.
    Each realization draws the base demands first (bit-identical to the
    unwrapped model under the same RNG), then a prediction-noise vector
    from the *same* stream, then applies
    :meth:`DeadlineScheduler.capped_demand` element-wise.  The served
    work fraction of the latest realization is kept on
    ``last_served_fraction`` so studies can report quality loss next
    to the latency win.
    """

    base: ServiceDemandModel
    scheduler: DeadlineScheduler
    core_speed: float
    parallelism: int = 1
    last_served_fraction: float = field(default=1.0, init=False)

    def __post_init__(self) -> None:
        if self.core_speed <= 0:
            raise ValueError("core_speed must be positive")
        if self.parallelism <= 0:
            raise ValueError("parallelism must be positive")
        if self.scheduler.deadline_s is None:
            raise ValueError("DeadlineCappedDemand needs a deadline_s")

    def demands(
        self, num_queries: int, rng: np.random.Generator
    ) -> np.ndarray:
        raw = np.asarray(self.base.demands(num_queries, rng), dtype=np.float64)
        sigma = self.scheduler.predictor.residual_log_sigma
        noise = np.exp(sigma * rng.standard_normal(raw.size))
        predicted = raw * noise
        scheduler = self.scheduler
        affordable = (
            scheduler.deadline_s
            * scheduler.budget_headroom
            * self.core_speed
            * self.parallelism
        )
        capped = np.where(
            predicted <= affordable,
            raw,
            np.minimum(
                raw,
                np.maximum(affordable, scheduler.min_depth_fraction * raw),
            ),
        )
        total = float(raw.sum())
        self.last_served_fraction = (
            float(capped.sum()) / total if total > 0 else 1.0
        )
        return capped

    def mean_demand(self) -> float:
        """Upper bound: the unwrapped mean (truncation only reduces it)."""
        return self.base.mean_demand()
