"""Latency, throughput, and distribution metrics.

Everything the paper reports is a statistic over per-query latencies or
completion timestamps; this package provides exact percentile
computation (:mod:`latency`), windowed throughput (:mod:`throughput`),
log-binned histograms/CDFs (:mod:`histogram`), and the summary record
used across studies and benchmarks (:mod:`summary`).
"""

from repro.metrics.export import (
    export_measurements_csv,
    export_registry_csv,
    export_simulation_csv,
)
from repro.metrics.histogram import Histogram, cdf_points
from repro.metrics.latency import LatencyRecorder
from repro.metrics.summary import LatencySummary, summarize
from repro.metrics.throughput import ThroughputTracker

__all__ = [
    "Histogram",
    "cdf_points",
    "LatencyRecorder",
    "LatencySummary",
    "summarize",
    "ThroughputTracker",
    "export_simulation_csv",
    "export_measurements_csv",
    "export_registry_csv",
]
