"""Log-binned histograms and empirical CDFs for latency distributions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Histogram:
    """A log-spaced histogram of positive samples.

    Attributes
    ----------
    bin_edges:
        Monotonic bin boundaries, length ``len(counts) + 1``.
    counts:
        Samples per bin.
    """

    bin_edges: np.ndarray
    counts: np.ndarray

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], num_bins: int = 40
    ) -> "Histogram":
        """Build a log-spaced histogram covering the sample range."""
        if num_bins <= 0:
            raise ValueError("num_bins must be positive")
        data = np.asarray(samples, dtype=np.float64)
        if data.size == 0:
            raise ValueError("cannot histogram zero samples")
        if np.any(data <= 0):
            raise ValueError("log-binned histogram requires positive samples")
        low, high = float(data.min()), float(data.max())
        if low == high:
            high = low * 1.001 + 1e-12
        edges = np.logspace(np.log10(low), np.log10(high), num_bins + 1)
        edges[0] = low  # guard against float rounding excluding the min
        edges[-1] = high
        counts, _ = np.histogram(data, bins=edges)
        return cls(bin_edges=edges, counts=counts)

    @property
    def total(self) -> int:
        """Total number of samples."""
        return int(self.counts.sum())

    def densities(self) -> np.ndarray:
        """Counts normalized to a probability mass per bin."""
        total = self.total
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / total

    def mode_bin(self) -> Tuple[float, float]:
        """The (low, high) edges of the most populated bin."""
        index = int(np.argmax(self.counts))
        return float(self.bin_edges[index]), float(self.bin_edges[index + 1])


def cdf_points(
    samples: Sequence[float], num_points: int = 100
) -> List[Tuple[float, float]]:
    """Return ``(value, cumulative_fraction)`` pairs of the empirical CDF.

    Evenly spaced in probability, so tails get the same resolution as
    the body when plotted.
    """
    data = np.sort(np.asarray(samples, dtype=np.float64))
    if data.size == 0:
        raise ValueError("cannot compute a CDF of zero samples")
    if num_points <= 1:
        raise ValueError("num_points must be at least 2")
    fractions = np.linspace(0.0, 1.0, num_points)
    positions = np.minimum(
        (fractions * (data.size - 1)).round().astype(int), data.size - 1
    )
    return [
        (float(data[position]), float(fraction))
        for position, fraction in zip(positions, fractions)
    ]
