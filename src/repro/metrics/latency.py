"""Exact latency percentile recording.

Tail latency is the paper's central metric, and tails are exactly where
approximate quantile sketches are least trustworthy — so the recorder
keeps every sample (a few MB even for millions of queries) and computes
exact order statistics on demand.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np


class LatencyRecorder:
    """Accumulates latency samples and answers exact quantile queries."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted_cache: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, latency: float) -> None:
        """Record one latency sample (seconds); must be non-negative."""
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self._samples.append(float(latency))
        self._sorted_cache = None

    def record_many(self, latencies: Iterable[float]) -> None:
        """Record a batch of samples."""
        for latency in latencies:
            self.record(latency)

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one."""
        self._samples.extend(other._samples)
        self._sorted_cache = None

    @property
    def samples(self) -> np.ndarray:
        """All samples, in recording order."""
        return np.asarray(self._samples, dtype=np.float64)

    def _sorted(self) -> np.ndarray:
        if self._sorted_cache is None:
            self._sorted_cache = np.sort(
                np.asarray(self._samples, dtype=np.float64)
            )
        return self._sorted_cache

    def percentile(self, quantile: float) -> float:
        """Exact percentile, e.g. ``percentile(99.0)`` for p99.

        Uses the "lower" interpolation convention so the returned value
        is always an observed sample (what a latency SLA refers to).
        """
        if not 0.0 <= quantile <= 100.0:
            raise ValueError(f"quantile must be in [0, 100], got {quantile}")
        if not self._samples:
            raise ValueError("no samples recorded")
        return float(np.percentile(self._sorted(), quantile, method="lower"))

    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        if not self._samples:
            raise ValueError("no samples recorded")
        return float(np.mean(self._samples))

    def max(self) -> float:
        """Largest recorded sample."""
        if not self._samples:
            raise ValueError("no samples recorded")
        return float(self._sorted()[-1])

    def min(self) -> float:
        """Smallest recorded sample."""
        if not self._samples:
            raise ValueError("no samples recorded")
        return float(self._sorted()[0])

    def tail_ratio(self, quantile: float = 99.0) -> float:
        """Ratio of the given percentile to the median.

        The paper's headline "partitioning reduces tail latency" claim is
        visible as this ratio shrinking with the partition count.
        """
        median = self.percentile(50.0)
        if median == 0:
            return float("inf")
        return self.percentile(quantile) / median
