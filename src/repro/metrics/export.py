"""Exporting measurement records to CSV.

Simulation runs and native replay measurements are the raw data behind
every figure; exporting them lets external tooling (spreadsheets,
pandas, R) re-analyze a run without re-simulating.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING, Sequence, Union

if TYPE_CHECKING:  # imported lazily at runtime: cluster depends on metrics
    from repro.cluster.results import SimulationResult
    from repro.engine.driver import QueryMeasurement
    from repro.obs.registry import MetricsRegistry

PathLike = Union[str, Path]

#: Mirrors repro.cluster.results.BREAKDOWN_COMPONENTS (kept literal here
#: to avoid a metrics -> cluster import cycle; test_io_export verifies
#: the two stay in sync).
_BREAKDOWN_COMPONENTS = (
    "queue_wait",
    "parallel_service",
    "straggler_skew",
    "merge_wait",
    "merge_service",
    "network_time",
)

SIMULATION_COLUMNS = (
    "query_id",
    "client_send",
    "demand",
    "latency",
) + _BREAKDOWN_COMPONENTS

MEASUREMENT_COLUMNS = (
    "query_id",
    "text",
    "num_raw_terms",
    "service_seconds",
    "matched_volume",
    "num_hits",
)

REGISTRY_COLUMNS = ("metric", "type", "field", "value")


def export_simulation_csv(result: "SimulationResult", path: PathLike) -> int:
    """Write one row per simulated query; returns rows written."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(SIMULATION_COLUMNS)
        for record in result.records:
            writer.writerow(
                [
                    record.query_id,
                    f"{record.client_send:.9f}",
                    f"{record.demand:.9f}",
                    f"{record.latency:.9f}",
                ]
                + [
                    f"{getattr(record, component):.9f}"
                    for component in _BREAKDOWN_COMPONENTS
                ]
            )
    return len(result.records)


def export_registry_csv(registry: "MetricsRegistry", path: PathLike) -> int:
    """Write a metrics-registry snapshot as CSV; returns rows written.

    Counters and gauges emit one ``value`` row; histograms emit
    ``count``, ``sum``, and cumulative ``le_<edge>`` bucket rows (see
    :meth:`repro.obs.registry.MetricsRegistry.as_rows`).
    """
    rows = registry.as_rows()
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(REGISTRY_COLUMNS)
        for metric, kind, field, value in rows:
            writer.writerow([metric, kind, field, value])
    return len(rows)


def export_measurements_csv(
    measurements: Sequence["QueryMeasurement"], path: PathLike
) -> int:
    """Write one row per native replay measurement; returns rows written."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(MEASUREMENT_COLUMNS)
        for measurement in measurements:
            writer.writerow(
                [
                    measurement.query_id,
                    measurement.text,
                    measurement.num_raw_terms,
                    f"{measurement.service_seconds:.9f}",
                    measurement.matched_volume,
                    measurement.num_hits,
                ]
            )
    return len(measurements)
