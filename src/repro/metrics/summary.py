"""The latency summary record reported by every study and benchmark."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Order statistics of one latency distribution (seconds)."""

    count: int
    mean: float
    p50: float
    p90: float
    p95: float
    p99: float
    p999: float
    max: float

    @property
    def tail_ratio(self) -> float:
        """p99 / p50 — the skew measure used in the tail-latency study."""
        if self.p50 == 0:
            return float("inf")
        return self.p99 / self.p50

    def as_dict(self) -> Dict[str, float]:
        """Flat dict for table rendering."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.max,
        }

    def scaled(self, factor: float) -> "LatencySummary":
        """Return a copy with every statistic multiplied by ``factor``
        (e.g. seconds → milliseconds with ``factor=1000``)."""
        return LatencySummary(
            count=self.count,
            mean=self.mean * factor,
            p50=self.p50 * factor,
            p90=self.p90 * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            p999=self.p999 * factor,
            max=self.max * factor,
        )


#: The summary of zero samples: count 0, every statistic NaN.  NaN (not
#: zero) so that an all-shed run plotted next to healthy runs produces a
#: gap, never a fake zero-latency point.
EMPTY_SUMMARY = LatencySummary(
    count=0,
    mean=float("nan"),
    p50=float("nan"),
    p90=float("nan"),
    p95=float("nan"),
    p99=float("nan"),
    p999=float("nan"),
    max=float("nan"),
)


def summarize(
    samples: Sequence[float], empty: str = "raise"
) -> LatencySummary:
    """Compute a :class:`LatencySummary` over ``samples``.

    ``empty`` picks the zero-sample behaviour: ``"raise"`` (default)
    raises ``ValueError``, ``"nan"`` returns :data:`EMPTY_SUMMARY`.
    Callers whose sample list can legitimately drain — e.g. a run where
    admission control shed every query — pass ``empty="nan"``.
    """
    if empty not in ("raise", "nan"):
        raise ValueError(f"empty must be 'raise' or 'nan', got {empty!r}")
    data = np.asarray(samples, dtype=np.float64)
    if data.size == 0:
        if empty == "nan":
            return EMPTY_SUMMARY
        raise ValueError("cannot summarize zero samples")
    data = np.sort(data)

    def pct(quantile: float) -> float:
        return float(np.percentile(data, quantile, method="lower"))

    return LatencySummary(
        count=int(data.size),
        mean=float(data.mean()),
        p50=pct(50),
        p90=pct(90),
        p95=pct(95),
        p99=pct(99),
        p999=pct(99.9),
        max=float(data[-1]),
    )
