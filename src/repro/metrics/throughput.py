"""Throughput measurement from completion timestamps."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np


class ThroughputTracker:
    """Derives sustained throughput from query completion times."""

    def __init__(self) -> None:
        self._completions: List[float] = []

    def __len__(self) -> int:
        return len(self._completions)

    def record(self, completion_time: float) -> None:
        """Record one query completion timestamp (seconds)."""
        if completion_time < 0:
            raise ValueError("completion_time must be non-negative")
        self._completions.append(float(completion_time))

    def record_many(self, completion_times: Iterable[float]) -> None:
        """Record a batch of completion timestamps."""
        for completion_time in completion_times:
            self.record(completion_time)

    def overall_qps(self) -> float:
        """Completions divided by the observed time span.

        Requires at least two completions (a single completion has no
        span to divide by).
        """
        if len(self._completions) < 2:
            raise ValueError("need at least two completions")
        times = np.sort(np.asarray(self._completions))
        span = float(times[-1] - times[0])
        if span == 0:
            return float("inf")
        # N completions over the span between first and last: (N-1)/span
        # is the unbiased rate estimate.
        return (len(times) - 1) / span

    def windowed_qps(self, window_seconds: float) -> np.ndarray:
        """Per-window throughput across the run (for burst inspection)."""
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if not self._completions:
            return np.empty(0)
        times = np.asarray(self._completions)
        end = times.max()
        edges = np.arange(0.0, end + window_seconds, window_seconds)
        counts, _ = np.histogram(times, bins=edges)
        return counts / window_seconds
