#!/usr/bin/env python3
"""The paper's low-power study: can microservers serve web search?

Compares a Xeon-class server against an Atom-class microserver across
the partition sweep at equal offered load, then finds each machine's
best QoS-compliant operating point and compares energy per query.

Expected shape (the paper's finding): the low-power server needs
several partitions to match the big server's unpartitioned response
time — and does; at matched QoS it serves each query with a fraction
of the energy.

Run:  python examples/lowpower_study.py
"""

from repro.core.lowpower import (
    compare_servers_vs_partitions,
    matched_qos_energy,
)
from repro.core.reporting import format_series, format_table
from repro.cluster.server import PartitionModelConfig
from repro.servers.catalog import BIG_SERVER, SMALL_SERVER
from repro.workload.servicetime import LognormalDemand

PARTITIONS = [1, 2, 4, 8, 16]

# A measured-shape demand model (mean ~8 ms, heavy tail), standing in
# for a full native calibration to keep the example fast; see
# examples/partitioning_study.py for the calibrated pipeline.
DEMAND = LognormalDemand(mu=-5.0, sigma=0.8)
COST_MODEL = PartitionModelConfig(
    partition_overhead=0.0004, merge_base=0.0001, merge_per_partition=5e-5
)


def main() -> None:
    small_capacity = SMALL_SERVER.compute_capacity / COST_MODEL.total_work(
        DEMAND.mean_demand()
    )
    rate = 0.3 * small_capacity
    print(f"Comparing servers at {rate:.0f} qps ...\n")

    points = compare_servers_vs_partitions(
        [BIG_SERVER, SMALL_SERVER],
        DEMAND,
        PARTITIONS,
        rate,
        cost_model=COST_MODEL,
        num_queries=8_000,
        seed=0,
    )
    series = {}
    for point in points:
        series.setdefault(point.server_name, {})[point.num_partitions] = (
            point.summary.p99 * 1000
        )
    print(
        format_series(
            "p99 response time (ms) vs partitions",
            "partitions",
            PARTITIONS,
            [
                (name, [series[name][p] for p in PARTITIONS])
                for name in (BIG_SERVER.name, SMALL_SERVER.name)
            ],
        )
    )

    big_p1 = series[BIG_SERVER.name][1]
    best_small = min(series[SMALL_SERVER.name].items(), key=lambda kv: kv[1])
    print(
        f"\nbig server P=1 p99: {big_p1:.1f} ms | low-power best: "
        f"{best_small[1]:.1f} ms at P={best_small[0]}"
    )

    qos = 4.0 * DEMAND.mean_demand()
    print(f"\nMatched-QoS energy (p99 <= {qos * 1000:.1f} ms) ...\n")
    rows = matched_qos_energy(
        [BIG_SERVER, SMALL_SERVER],
        DEMAND,
        qos,
        PARTITIONS,
        cost_model=COST_MODEL,
        num_queries=4_000,
    )
    print(
        format_table(
            ["server", "P", "qps", "p99_ms", "power_W", "J/query"],
            [
                [
                    row.server_name,
                    row.num_partitions,
                    row.qps,
                    row.p99_seconds * 1000,
                    row.power_watts,
                    row.energy_per_query_joules,
                ]
                for row in rows
            ],
        )
    )


if __name__ == "__main__":
    main()
