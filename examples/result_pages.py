#!/usr/bin/env python3
"""The full result page: snippets, phrase queries, and the query cache.

Demonstrates the benchmark's client-facing functionality beyond raw
ranked doc ids: highlighted snippets per hit, exact-phrase matching
over the positional index, and the front-end result cache absorbing
repeat queries.

Run:  python examples/result_pages.py
"""

from repro import CorpusConfig, QueryLogConfig, SearchService, VocabularyConfig
from repro.cache.querycache import QueryResultCache
from repro.engine.isn import IndexServingNode


def main() -> None:
    service = SearchService.build(
        corpus=CorpusConfig(
            num_documents=1_200,
            vocabulary=VocabularyConfig(size=6_000),
            mean_length=120,
            seed=13,
        ),
        query_log=QueryLogConfig(num_unique_queries=100, seed=4),
        num_partitions=2,
    )
    with service:
        query = next(
            q for q in service.query_log if len(q.raw_terms) >= 2
        )
        print(f"query: {query.text!r}\n")
        for rank, entry in enumerate(service.search_page(query.text, k=3), 1):
            print(f"{rank}. {entry.title}   [{entry.hit.score:.3f}]")
            print(f"   {entry.url}")
            print(f"   {entry.snippet.text}\n")

        # Exact-phrase search: take an adjacent pair from a real page.
        document = service.collection[7]
        terms = service.analyzer.analyze(document.body)
        phrase = f"{terms[0]} {terms[1]}"
        hits = service.search_phrase(phrase, k=5)
        print(f'phrase "{phrase}": {len(hits)} exact matches')
        for hit in hits:
            print(f"   {service.document(hit.doc_id).url}")

        # The result cache in front of the ISN.
        cache = QueryResultCache(capacity=128)
        with IndexServingNode(service.partitioned, cache=cache) as cached_isn:
            for _ in range(3):
                cached_isn.execute(query.text)
            stats = cache.stats
            print(
                f"\nresult cache: {stats.hits} hits / {stats.lookups} lookups "
                f"(hit rate {stats.hit_rate:.0%})"
            )


if __name__ == "__main__":
    main()
