#!/usr/bin/env python3
"""The paper's central study: intra-server partitioning vs. tail latency.

Full pipeline in one script:

1. build the native benchmark and **calibrate** the simulator's
   service-demand and partitioning cost models from real serial
   measurements;
2. sweep the partition count on a simulated big server at fixed load;
3. report p50/p90/p99 per partition count.

Expected shape (the paper's finding): p99 falls steeply from P=1 to
P=4–8, then flattens or rises as per-partition overhead dominates.

Run:  python examples/partitioning_study.py
"""

from repro import CorpusConfig, QueryLogConfig, SearchService, VocabularyConfig
from repro.core.calibration import (
    calibrate_isn,
    cost_model_from_calibration,
    demand_model_from_calibration,
)
from repro.core.partitioning import run_partitioning_sweep
from repro.core.reporting import format_series
from repro.servers.catalog import BIG_SERVER

PARTITIONS = [1, 2, 4, 8, 16]


def main() -> None:
    print("Building the native benchmark and calibrating ...")
    service = SearchService.build(
        corpus=CorpusConfig(
            num_documents=3_000,
            vocabulary=VocabularyConfig(size=15_000),
            mean_length=200,
            seed=11,
        ),
        query_log=QueryLogConfig(num_unique_queries=400, seed=3),
        num_partitions=1,
    )
    with service:
        calibration = calibrate_isn(
            service.isn, service.query_log, num_queries=100, repeats=2
        )
        demand_model = demand_model_from_calibration(
            calibration, service.partitioned[0].index, service.query_log
        )
    cost_model = cost_model_from_calibration(calibration)
    print(
        f"  calibrated: base={calibration.base_seconds * 1000:.3f} ms, "
        f"{calibration.per_posting_seconds * 1e9:.1f} ns/posting, "
        f"R^2={calibration.r_squared:.3f}"
    )

    capacity = BIG_SERVER.compute_capacity / cost_model.total_work(
        demand_model.mean_demand()
    )
    rate = 0.35 * capacity
    print(f"  simulating at {rate:.0f} qps (35% of P=1 capacity)\n")

    points = run_partitioning_sweep(
        BIG_SERVER,
        demand_model,
        PARTITIONS,
        rate,
        cost_model=cost_model,
        num_queries=8_000,
        seed=0,
    )
    print(
        format_series(
            "Latency vs intra-server partitions (big server)",
            "partitions",
            PARTITIONS,
            [
                ("p50_ms", [p.summary.p50 * 1000 for p in points]),
                ("p90_ms", [p.summary.p90 * 1000 for p in points]),
                ("p99_ms", [p.summary.p99 * 1000 for p in points]),
                ("utilization", [p.utilization for p in points]),
            ],
        )
    )
    best = min(points, key=lambda p: p.summary.p99)
    baseline = points[0]
    print(
        f"\np99 reduction at P={best.num_partitions}: "
        f"{baseline.summary.p99 / best.summary.p99:.2f}x vs P=1"
    )


if __name__ == "__main__":
    main()
