#!/usr/bin/env python3
"""Quickstart: build the web-search benchmark and run queries.

Builds a small synthetic corpus, indexes it into 4 intra-server
partitions, and answers a few queries through the index serving node's
parallel fan-out path — the full architecture of the benchmark in a
dozen lines, entirely through the supported ``repro.api`` surface.

Run:  python examples/quickstart.py
"""

from repro.api import (
    CorpusConfig,
    EngineConfig,
    QueryLogConfig,
    SearchEngine,
    VocabularyConfig,
)


def main() -> None:
    engine = SearchEngine(
        EngineConfig(
            corpus=CorpusConfig(
                num_documents=2_000,
                vocabulary=VocabularyConfig(size=10_000),
                mean_length=150,
                seed=42,
            ),
            query_log=QueryLogConfig(num_unique_queries=200, seed=7),
            num_partitions=4,
        )
    )
    with engine:
        service = engine.service
        print(
            f"Indexed {len(service.collection)} documents into "
            f"{engine.num_partitions} partitions "
            f"({service.partitioned[0].index.num_terms} terms in shard 0)\n"
        )
        for query in list(engine.query_log)[:5]:
            response = engine.search(query.text, k=3)
            timings = response.timings
            print(f"query: {query.text!r}")
            print(
                f"  {len(response.hits)} hits in "
                f"{response.latency_s * 1000:.2f} ms "
                f"(slowest shard {timings.slowest_shard_seconds * 1000:.2f} ms, "
                f"merge {timings.merge_seconds * 1000:.3f} ms, "
                f"coverage {response.coverage:.0%})"
            )
            for hit in response.hits:
                document = engine.document(hit.doc_id)
                print(f"    {hit.score:6.3f}  {document.url}  {document.title}")
            print()


if __name__ == "__main__":
    main()
