#!/usr/bin/env python3
"""A multi-node deployment: frontend over several index serving nodes.

The benchmark's full architecture has a frontend broadcasting each
query to index serving nodes that each hold a slice of the collection
(inter-server sharding), every node further split into intra-server
partitions.  This example builds that two-level topology natively and
checks the merged pages against a single monolithic index.

Run:  python examples/cluster_search.py
"""

import numpy as np

from repro import CorpusConfig, QueryLogConfig, VocabularyConfig
from repro.corpus.documents import Document, DocumentCollection
from repro.corpus.generator import CorpusGenerator
from repro.corpus.querylog import QueryLogGenerator
from repro.engine.frontend import Frontend
from repro.engine.isn import IndexServingNode
from repro.index.builder import IndexBuilder
from repro.index.partitioner import partition_index
from repro.search.executor import Searcher

NUM_ISNS = 3
PARTITIONS_PER_ISN = 2


def shard_collection(collection, num_shards):
    """Round-robin the collection across ISNs with local dense ids.

    Returns ``(shards, id_maps)``; ``id_maps[i][local]`` is the
    cluster-global id of ISN ``i``'s document ``local``.
    """
    shards = [DocumentCollection() for _ in range(num_shards)]
    id_maps = [[] for _ in range(num_shards)]
    for document in collection:
        target = document.doc_id % num_shards
        id_maps[target].append(document.doc_id)
        shards[target].add(
            Document(
                doc_id=len(shards[target]),
                url=document.url,
                title=document.title,
                body=document.body,
            )
        )
    return shards, id_maps


def main() -> None:
    generator = CorpusGenerator(
        CorpusConfig(
            num_documents=1_800,
            vocabulary=VocabularyConfig(size=8_000),
            mean_length=120,
            seed=5,
        )
    )
    collection = generator.generate()
    query_log = QueryLogGenerator(
        generator.vocabulary, QueryLogConfig(num_unique_queries=100, seed=9)
    ).generate()

    print(
        f"Deploying {len(collection)} documents across {NUM_ISNS} ISNs x "
        f"{PARTITIONS_PER_ISN} intra-server partitions ...\n"
    )
    shards, id_maps = shard_collection(collection, NUM_ISNS)
    isns = [
        IndexServingNode(partition_index(shard, PARTITIONS_PER_ISN))
        for shard in shards
    ]
    frontend = Frontend(isns, global_id_maps=id_maps)

    # Reference: one monolithic index over the whole collection.
    monolith = Searcher(IndexBuilder().build(collection))

    rng = np.random.default_rng(0)
    stream = query_log.sample_stream(15, rng)
    page_overlap = 0.0
    for query in stream:
        response = frontend.execute(query.text, k=5)
        reference = monolith.search(query.text, k=5)
        overlap = len(
            set(response.doc_ids()) & set(reference.doc_ids())
        ) / max(1, len(reference.hits))
        page_overlap += overlap
        top = (
            collection[response.hits[0].doc_id].title
            if response.hits
            else "(no hits)"
        )
        print(
            f"  {query.text!r:42s} {len(response.hits)} hits, "
            f"{response.total_seconds * 1000:6.2f} ms, "
            f"top: {top}"
        )

    print(
        f"\nmean top-5 overlap with the monolithic index: "
        f"{page_overlap / len(stream):.0%}"
        "\n(per-ISN statistics perturb rankings slightly, as in the "
        "real benchmark)"
    )
    frontend.close()


if __name__ == "__main__":
    main()
