#!/usr/bin/env python3
"""The tail-latency story, composed end to end.

Walks the chain of tail sources and remedies this reproduction builds:

1. the *intrinsic* tail — some queries touch far more postings —
   which intra-server partitioning parallelizes away (the paper's
   headline);
2. the *pause* tail — JVM GC freezes all partitions at once — which
   partitioning cannot touch;
3. the pause tail yields to *replication + hedging*: a second replica
   is almost never paused at the same moment.

Run:  python examples/tail_mitigation.py
"""

from repro.cluster.replication import (
    HedgeConfig,
    ReplicaSelection,
    ReplicatedClusterConfig,
    run_replicated_open_loop,
)
from repro.cluster.server import PartitionModelConfig
from repro.cluster.simulation import ClusterConfig, run_open_loop
from repro.core.reporting import format_table
from repro.servers.catalog import BIG_SERVER
from repro.sim.hiccups import HiccupConfig
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import LognormalDemand

DEMAND = LognormalDemand(mu=-4.6, sigma=0.8)  # mean ~14 ms, heavy tail
COSTS = PartitionModelConfig(
    partition_overhead=0.0004, merge_base=0.0002, merge_per_partition=0.0001
)
PAUSES = HiccupConfig(mean_interval=1.0, pause_duration=0.03)
RATE = 120.0
QUERIES = 8_000


def single_server(num_partitions, hiccups):
    config = ClusterConfig(
        spec=BIG_SERVER,
        partitioning=PartitionModelConfig(
            num_partitions=num_partitions,
            partition_overhead=COSTS.partition_overhead,
            merge_base=COSTS.merge_base,
            merge_per_partition=COSTS.merge_per_partition,
        ),
        hiccups=hiccups,
    )
    scenario = WorkloadScenario(
        arrivals=PoissonArrivals(RATE), demands=DEMAND, num_queries=QUERIES
    )
    return run_open_loop(config, scenario, seed=0).summary(0.1)


def replicated(hedge):
    config = ReplicatedClusterConfig(
        num_shards=1,
        replicas=2,
        spec=BIG_SERVER,
        partitioning=PartitionModelConfig(
            num_partitions=8,
            partition_overhead=COSTS.partition_overhead,
            merge_base=COSTS.merge_base,
            merge_per_partition=COSTS.merge_per_partition,
        ),
        selection=ReplicaSelection.LEAST_OUTSTANDING,
        hedge=hedge,
        hiccups=PAUSES,
    )
    scenario = WorkloadScenario(
        arrivals=PoissonArrivals(RATE), demands=DEMAND, num_queries=QUERIES
    )
    return run_replicated_open_loop(config, scenario, seed=0).summary(0.1)


def main() -> None:
    rows = []
    steps = [
        ("baseline: P=1, clean", lambda: single_server(1, None)),
        ("+ partitioning (P=8)", lambda: single_server(8, None)),
        ("+ GC pauses (30ms/1s)", lambda: single_server(8, PAUSES)),
        ("+ 2nd replica (JSQ)", lambda: replicated(None)),
        ("+ hedging @ 8ms", lambda: replicated(HedgeConfig(delay=0.008))),
    ]
    for label, runner in steps:
        print(f"running: {label} ...")
        summary = runner()
        rows.append(
            [label, summary.p50 * 1000, summary.p99 * 1000,
             summary.p999 * 1000]
        )
    print()
    print(
        format_table(
            ["configuration", "p50_ms", "p99_ms", "p999_ms"],
            rows,
            title=f"Tail mitigation, step by step ({RATE:.0f} qps)",
        )
    )


if __name__ == "__main__":
    main()
