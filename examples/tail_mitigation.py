#!/usr/bin/env python3
"""The tail-latency story, composed end to end.

Walks the chain of tail sources and remedies this reproduction builds,
entirely through the supported ``repro.api`` surface:

1. the *intrinsic* tail — some queries touch far more postings —
   which intra-server partitioning parallelizes away (the paper's
   headline);
2. the *pause* tail — JVM GC freezes all partitions at once — which
   partitioning cannot touch;
3. the pause tail yields to *replication + hedging*: a second replica
   is almost never paused at the same moment;
4. a *deadline* converts whatever tail remains into a small, explicit
   coverage loss (partial results) instead of latency.

Run:  python examples/tail_mitigation.py
"""

from repro.api import (
    BIG_SERVER,
    ClusterConfig,
    ClusterModel,
    HedgingPolicy,
    HiccupConfig,
    LognormalDemand,
    PartitionModelConfig,
    format_table,
)

DEMAND = LognormalDemand(mu=-4.6, sigma=0.8)  # mean ~14 ms, heavy tail
PAUSES = HiccupConfig(mean_interval=1.0, pause_duration=0.03)
RATE = 120.0
QUERIES = 8_000


def costs(num_partitions: int) -> PartitionModelConfig:
    return PartitionModelConfig(
        num_partitions=num_partitions,
        partition_overhead=0.0004,
        merge_base=0.0002,
        merge_per_partition=0.0001,
    )


def run(**overrides):
    model = ClusterModel(
        ClusterConfig(num_servers=1, spec=BIG_SERVER, **overrides)
    )
    return model.run(
        rate_qps=RATE, num_queries=QUERIES, demand=DEMAND, seed=0
    )


def main() -> None:
    steps = [
        ("baseline: P=1, clean", dict(partitioning=costs(1))),
        ("+ partitioning (P=8)", dict(partitioning=costs(8))),
        (
            "+ GC pauses (30ms/1s)",
            dict(partitioning=costs(8), hiccups=PAUSES),
        ),
        (
            "+ 2nd replica",
            dict(
                partitioning=costs(8), hiccups=PAUSES, replicas_per_shard=2
            ),
        ),
        (
            "+ hedging @ 8ms",
            dict(
                partitioning=costs(8),
                hiccups=PAUSES,
                replicas_per_shard=2,
                hedging=HedgingPolicy(hedge_delay_s=0.008),
            ),
        ),
        (
            "+ deadline @ 60ms",
            dict(
                partitioning=costs(8),
                hiccups=PAUSES,
                replicas_per_shard=2,
                hedging=HedgingPolicy(hedge_delay_s=0.008, deadline_s=0.06),
            ),
        ),
    ]
    rows = []
    for label, overrides in steps:
        print(f"running: {label} ...")
        result = run(**overrides)
        summary = result.summary(0.1)
        rows.append(
            [
                label,
                summary.p50 * 1000,
                summary.p99 * 1000,
                summary.p999 * 1000,
                result.mean_coverage(0.1),
            ]
        )
    print()
    print(
        format_table(
            ["configuration", "p50_ms", "p99_ms", "p999_ms", "coverage"],
            rows,
            title=f"Tail mitigation, step by step ({RATE:.0f} qps)",
        )
    )


if __name__ == "__main__":
    main()
