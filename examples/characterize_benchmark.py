#!/usr/bin/env python3
"""Characterize the benchmark's service times (the paper's F1/F2).

Replays a popularity-weighted query stream serially against a native
index serving node and reports:

- the service-time distribution (percentiles, tail ratio, and whether
  a log-normal or an exponential fits it better);
- what drives service time (query term count, matched postings volume).

Run:  python examples/characterize_benchmark.py
"""

from repro import CorpusConfig, QueryLogConfig, SearchService, VocabularyConfig
from repro.core.characterization import (
    characterize_service_times,
    service_time_by_term_count,
    service_time_by_volume,
)
from repro.core.reporting import format_table


def main() -> None:
    service = SearchService.build(
        corpus=CorpusConfig(
            num_documents=3_000,
            vocabulary=VocabularyConfig(size=15_000),
            mean_length=200,
            seed=1,
        ),
        query_log=QueryLogConfig(num_unique_queries=500, seed=2),
        num_partitions=1,
    )
    with service:
        characterization = characterize_service_times(
            service.isn, service.query_log, num_queries=300, seed=0
        )

    summary = characterization.summary.scaled(1000.0)
    print(
        format_table(
            ["statistic", "value"],
            [
                ["queries", summary.count],
                ["mean (ms)", summary.mean],
                ["p50 (ms)", summary.p50],
                ["p90 (ms)", summary.p90],
                ["p99 (ms)", summary.p99],
                ["p99/p50 tail ratio", characterization.tail_ratio],
                [
                    "log-normal KS distance",
                    characterization.lognormal.ks_distance,
                ],
                [
                    "exponential KS distance",
                    characterization.exponential.ks_distance,
                ],
            ],
            title="Service-time distribution (single partition)",
        )
    )
    better = (
        "log-normal"
        if characterization.lognormal_fits_better
        else "exponential"
    )
    print(f"\nBetter parametric fit: {better}\n")

    print(
        format_table(
            ["terms", "queries", "mean_ms", "mean_volume"],
            [
                [row.term_count, row.num_queries,
                 row.mean_seconds * 1000, row.mean_volume]
                for row in service_time_by_term_count(
                    characterization.measurements
                )
            ],
            title="Service time by query term count",
        )
    )
    print()
    print(
        format_table(
            ["volume range", "queries", "mean_ms"],
            [
                [f"[{row.low_volume}, {row.high_volume}]",
                 row.num_queries, row.mean_seconds * 1000]
                for row in service_time_by_volume(
                    characterization.measurements, num_buckets=4
                )
            ],
            title="Service time by matched-postings-volume quartile",
        )
    )


if __name__ == "__main__":
    main()
