"""F3 — Response time vs. offered load (simulated, calibrated demands).

Regenerates the hockey-stick curve: mean and p99 response time as the
open-loop Poisson rate sweeps from a trickle to near saturation of an
unpartitioned big server.  Paper shape: the curve is flat below the
knee, the p99 diverges well before the mean.
"""

from repro.cluster.simulation import ClusterConfig
from repro.core.loadsweep import run_load_sweep
from repro.core.reporting import format_series
from repro.servers.catalog import BIG_SERVER


def test_fig3_latency_vs_load(benchmark, demand_model, cost_model, emit):
    capacity_qps = BIG_SERVER.compute_capacity / cost_model.total_work(
        demand_model.mean_demand()
    )
    fractions = [0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95]
    rates = [fraction * capacity_qps for fraction in fractions]
    config = ClusterConfig(spec=BIG_SERVER, partitioning=cost_model)

    points = benchmark.pedantic(
        run_load_sweep,
        args=(config, demand_model, rates),
        kwargs={"num_queries": 8_000, "seed": 0},
        rounds=1,
        iterations=1,
    )

    emit(
        "fig3_latency_vs_load",
        format_series(
            "F3: response time vs offered load (big server, P=1)",
            "load_fraction",
            fractions,
            [
                ("offered_qps", [p.offered_qps for p in points]),
                ("util", [p.utilization for p in points]),
                ("mean_ms", [p.summary.mean * 1000 for p in points]),
                ("p99_ms", [p.summary.p99 * 1000 for p in points]),
            ],
        ),
    )

    # Paper-shape assertions: the hockey stick — a flat body, then the
    # tail blows up approaching saturation, and the absolute p99-p50
    # spread widens far faster than the body moves.
    assert points[-1].summary.p99 > 2 * points[0].summary.p99
    assert points[2].summary.p99 < 1.5 * points[0].summary.p99  # flat body
    spread_low = points[0].summary.p99 - points[0].summary.p50
    spread_high = points[-1].summary.p99 - points[-1].summary.p50
    assert spread_high > 2 * spread_low
