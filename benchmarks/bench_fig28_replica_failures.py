"""F28 — SLO attainment under replica failures: naive vs N+k sizing.

The provisioning studies so far size replica fleets for *load*; this
figure asks what happens when replicas also *die*.  A steady Poisson
stream plays against a fleet whose replicas crash and recover under a
seeded MTTF/MTTR alternating-renewal process
(:class:`repro.sim.failures.MttfMttrFailures`): a crash fails every
query in flight on the replica (typed, counted as SLO misses), removes
it from the dispatchable set, and the replacement rejoins only after
the warm-up — exactly the failure semantics the DES autoscaler serves.

Two static sizings run over the identical arrival/demand/failure
trace (common random numbers):

- **naive** — ``replicas_for_slo(qps, slo)``: enough replicas for the
  load, assuming they never fail;
- **n_plus_k** — ``replicas_for_slo(qps, slo, mttf_s=…, mttr_s=…)``:
  the availability-aware sizing, which finds the smallest fleet whose
  *expected* attainment — binomial over up-replicas at steady-state
  availability MTTF/(MTTF+MTTR), degraded-capacity attainment per
  survivor count, first-order in-flight crash loss — meets the target.

Acceptance contract (mirrors ISSUE criteria):

- with failures on, the naive sizing measurably violates the SLO
  (attainment < 0.985) while the N+k sizing keeps attainment >= 0.99;
- with failures off, the naive sizing meets the SLO (the violation is
  caused by failures, not by under-provisioning for load);
- the whole study is deterministic under a fixed seed.

Run standalone (CI smoke):
``python benchmarks/bench_fig28_replica_failures.py --quick``
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.api import (
    CapacityModel,
    LognormalDemand,
    ServerSpec,
    ServiceTimeProfile,
    format_table,
)
from repro.sim.autoscale import (
    AutoscaleConfig,
    StaticPolicy,
    run_autoscaled_cluster,
)
from repro.sim.failures import MttfMttrFailures, steady_state_availability
from repro.sim.random import RandomStreams

DEMAND = LognormalDemand(mu=-4.6, sigma=0.8)  # mean ~14 ms, heavy tail

#: Same deliberately small node as F27: ~69 qps per replica at this
#: demand, so replica counts (not raw QPS) carry the dynamics.
SPEC = ServerSpec(
    name="failures-node",
    num_cores=2,
    core_speed=0.5,
    idle_power_watts=30.0,
    peak_power_watts=90.0,
)

SLO_S = 0.180
RATE_QPS = 120.0
SEED = 20_27

#: Aggressive but plausible compressed fault regime: availability 0.75
#: per replica, so a load-only sizing spends a quarter of the run
#: degraded or worse.
MTTF_S = 150.0
MTTR_S = 50.0
ATTAINMENT_TARGET = 0.99

FULL = dict(horizon_s=900.0)
QUICK = dict(horizon_s=450.0)

WARMUP_S = 20.0


def _capacity_model() -> CapacityModel:
    profile = ServiceTimeProfile.from_demand_model(DEMAND)
    return CapacityModel(profile=profile, spec=SPEC)


def _sizings(model: CapacityModel):
    """(naive, n_plus_k) replica counts for the study's load point."""
    naive = model.replicas_for_slo(RATE_QPS, SLO_S)
    planned = model.replicas_for_slo(
        RATE_QPS,
        SLO_S,
        mttf_s=MTTF_S,
        mttr_s=MTTR_S,
        attainment_target=ATTAINMENT_TARGET,
    )
    return naive, planned


def _realize(horizon_s: float, seed: int = SEED):
    """One common arrival/demand trace every sizing replays."""
    streams = RandomStreams(seed)
    rng = streams.stream("arrivals")
    gaps = rng.exponential(
        1.0 / RATE_QPS, size=int(RATE_QPS * horizon_s * 1.3) + 16
    )
    times = np.cumsum(gaps)
    times = times[times < horizon_s]
    demands = DEMAND.demands(times.size, streams.stream("demands"))
    return times, demands


def _autoscale_config(replicas: int, failures) -> AutoscaleConfig:
    return AutoscaleConfig(
        spec=SPEC,
        shards=1,
        initial_replicas=replicas,
        min_replicas=replicas,
        max_replicas=replicas,
        warmup_s=WARMUP_S,
        failures=failures,
    )


def _run_sizings(params, seed: int = SEED):
    model = _capacity_model()
    naive_n, planned_n = _sizings(model)
    horizon = params["horizon_s"]
    times, demands = _realize(horizon, seed)
    failure_model = MttfMttrFailures(mttf_s=MTTF_S, mttr_s=MTTR_S)
    suite = [
        ("naive-no-failures", naive_n, None),
        ("naive", naive_n, failure_model),
        ("n_plus_k", planned_n, failure_model),
    ]
    rows = []
    for label, replicas, failures in suite:
        result = run_autoscaled_cluster(
            _autoscale_config(replicas, failures),
            StaticPolicy(replicas),
            times,
            demands,
            horizon_s=horizon,
            seed=seed,
        )
        latencies = result.latencies()
        rows.append(
            {
                "sizing": label,
                "replicas": replicas,
                "attainment": result.slo_attainment(SLO_S),
                "p50": float(np.quantile(latencies, 0.50)),
                "p99": float(np.quantile(latencies, 0.99)),
                "crashes": result.replica_crashes,
                "recoveries": result.replica_recoveries,
                "failed": result.failed_count,
                "shed": result.shed_count,
                "queries": len(result.records),
            }
        )
    expected = {
        "naive": model.expected_slo_attainment(
            RATE_QPS, SLO_S, 1, naive_n, MTTF_S, MTTR_S
        ),
        "n_plus_k": model.expected_slo_attainment(
            RATE_QPS, SLO_S, 1, planned_n, MTTF_S, MTTR_S
        ),
    }
    return naive_n, planned_n, rows, expected


def _format_rows(naive_n, planned_n, rows, params):
    availability = steady_state_availability(MTTF_S, MTTR_S)
    return format_table(
        [
            "sizing",
            "replicas",
            "slo_attain",
            "p50_ms",
            "p99_ms",
            "crashes",
            "recoveries",
            "failed",
            "queries",
        ],
        [
            [
                row["sizing"],
                row["replicas"],
                row["attainment"],
                row["p50"] * 1000,
                row["p99"] * 1000,
                row["crashes"],
                row["recoveries"],
                row["failed"],
                row["queries"],
            ]
            for row in rows
        ],
        title=(
            f"F28: SLO attainment under replica failures "
            f"({params['horizon_s']:.0f}s at {RATE_QPS:.0f} qps, "
            f"MTTF {MTTF_S:.0f}s / MTTR {MTTR_S:.0f}s, "
            f"availability {availability:.2f}, "
            f"SLO p99 <= {SLO_S * 1000:.0f} ms)"
        ),
    )


def _structured_data(naive_n, planned_n, rows, expected, params):
    return {
        "figure": "fig28",
        "slo_ms": SLO_S * 1000,
        "rate_qps": RATE_QPS,
        "horizon_s": params["horizon_s"],
        "mttf_s": MTTF_S,
        "mttr_s": MTTR_S,
        "availability": steady_state_availability(MTTF_S, MTTR_S),
        "naive_replicas": naive_n,
        "n_plus_k_replicas": planned_n,
        "expected_attainment": expected,
        "sizings": rows,
        "seed": SEED,
    }


def _check(naive_n, planned_n, rows) -> None:
    """The acceptance assertions, shared by pytest and --quick modes."""
    assert planned_n > naive_n, (
        f"availability-aware planning must add spares: "
        f"{planned_n} vs naive {naive_n}"
    )
    by_sizing = {row["sizing"]: row for row in rows}
    no_failures = by_sizing["naive-no-failures"]
    naive = by_sizing["naive"]
    planned = by_sizing["n_plus_k"]
    assert no_failures["attainment"] >= ATTAINMENT_TARGET, (
        f"naive sizing must meet the SLO without failures "
        f"(attainment {no_failures['attainment']:.4f}) — otherwise the "
        "violation below would be mis-attributed to load"
    )
    assert naive["attainment"] < 0.985, (
        f"naive sizing must measurably violate the SLO under failures "
        f"(attainment {naive['attainment']:.4f})"
    )
    assert planned["attainment"] >= ATTAINMENT_TARGET, (
        f"N+k sizing must keep the SLO under failures "
        f"(attainment {planned['attainment']:.4f})"
    )


def _check_deterministic(params) -> None:
    """Same seed → bit-identical failures, latencies, and counts."""
    first = _run_sizings(params)
    second = _run_sizings(params)
    assert first == second, "replica-failure study must be deterministic"


def test_fig28_replica_failures(benchmark, emit):
    naive_n, planned_n, rows, expected = benchmark.pedantic(
        lambda: _run_sizings(FULL), rounds=1, iterations=1
    )
    emit(
        "fig28_replica_failures",
        _format_rows(naive_n, planned_n, rows, FULL),
        data=_structured_data(naive_n, planned_n, rows, expected, FULL),
    )
    _check(naive_n, planned_n, rows)


def test_fig28_deterministic():
    _check_deterministic(QUICK)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: compressed horizon",
    )
    args = parser.parse_args(argv)
    params = QUICK if args.quick else FULL
    naive_n, planned_n, rows, expected = _run_sizings(params)
    print(_format_rows(naive_n, planned_n, rows, params))
    print(
        f"expected attainment: naive {expected['naive']:.4f}, "
        f"n_plus_k {expected['n_plus_k']:.4f}"
    )
    _check(naive_n, planned_n, rows)
    _check_deterministic(QUICK)

    from _structured import write_bench_json

    write_bench_json(
        "fig28",
        _structured_data(naive_n, planned_n, rows, expected, params),
    )
    print("fig28 acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
