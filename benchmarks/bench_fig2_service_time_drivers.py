"""F2 — What drives service time: term count and postings volume.

Regenerates the two characterization breakdowns: (a) service time by
query term count, (b) service time by matched-postings-volume quartile.
The paper-shape claim: service time is governed by the postings volume
the query touches, with term count acting only through volume.
"""

import numpy as np

from repro.analysis.stats import linear_fit
from repro.core.characterization import (
    characterize_service_times,
    service_time_by_term_count,
    service_time_by_volume,
)
from repro.core.reporting import format_table


def test_fig2_service_time_drivers(benchmark, service, emit):
    characterization = benchmark.pedantic(
        characterize_service_times,
        args=(service.isn, service.query_log),
        kwargs={"num_queries": 400, "repeats": 1, "seed": 1},
        rounds=1,
        iterations=1,
    )
    measurements = characterization.measurements

    term_rows = [
        [row.term_count, row.num_queries,
         row.mean_seconds * 1000, row.p99_seconds * 1000, row.mean_volume]
        for row in service_time_by_term_count(measurements)
    ]
    volume_rows = [
        [f"[{row.low_volume}, {row.high_volume}]", row.num_queries,
         row.mean_seconds * 1000]
        for row in service_time_by_volume(measurements, num_buckets=4)
    ]
    volumes = [m.matched_volume for m in measurements]
    times = [m.service_seconds for m in measurements]
    _, slope, r_squared = linear_fit(volumes, times)

    emit(
        "fig2_service_time_drivers",
        format_table(
            ["terms", "queries", "mean_ms", "p99_ms", "mean_volume"],
            term_rows,
            title="F2a: service time by query term count",
        )
        + "\n\n"
        + format_table(
            ["volume range", "queries", "mean_ms"],
            volume_rows,
            title="F2b: service time by matched-postings-volume quartile",
        )
        + f"\n\nvolume->time linear fit: slope={slope:.3e} s/posting, "
        f"R^2={r_squared:.3f}",
    )

    # Paper-shape assertions: volume drives time.
    assert r_squared > 0.5
    quartiles = service_time_by_volume(measurements, num_buckets=4)
    assert quartiles[-1].mean_seconds > 2 * quartiles[0].mean_seconds
